"""Quickstart: fit a skill model and estimate item difficulty in ~60 lines.

Generates the paper's synthetic dataset at toy scale, trains the
multi-faceted progression model, and walks the three core outputs:

1. per-user skill trajectories (monotone, 1..S),
2. item difficulty estimates on the same 1..S scale,
3. an "upskilling pick": for one user, items whose estimated difficulty is
   just above their current skill — the recommendation the paper's title
   points toward.

Run:  python examples/quickstart.py
"""

from repro.core import fit_skill_model, generation_difficulty
from repro.synth import SyntheticConfig, generate_synthetic


def main() -> None:
    # 1. Data: action sequences (t, u, i) plus an item catalog with
    #    multi-faceted features (categorical / count / positive-real).
    dataset = generate_synthetic(SyntheticConfig(num_users=150, num_items=1000, seed=7))
    log, catalog = dataset.log, dataset.catalog
    print(f"dataset: {log.num_users} users, {len(catalog)} items, {log.num_actions} actions")

    # 2. Fit the multi-faceted progression model (paper Section IV).
    model = fit_skill_model(
        log,
        catalog,
        dataset.feature_set,
        num_levels=5,
        init_min_actions=40,
        max_iterations=30,
    )
    print(
        f"trained in {model.trace.num_iterations} iterations "
        f"(converged={model.trace.converged}, logL={model.log_likelihood:.1f})"
    )

    # 3. Skill trajectories: monotone non-decreasing levels per action.
    #    Pick a user who has not maxed out yet, so there is room to upskill.
    user = next(
        u for u in log.users if model.skill_trajectory(u)[-1] <= 3
    )
    trajectory = model.skill_trajectory(user)
    print(f"\nskill trajectory of {user!r}: {trajectory.tolist()}")
    print(f"ground truth             : {dataset.true_skills[user].tolist()}")

    # 4. Item difficulty on the same scale (paper Section V): the
    #    generation-based estimator with the empirical skill prior was the
    #    paper's best performer.
    difficulty = generation_difficulty(model, prior="empirical")
    some_items = list(catalog.ids)[:5]
    print("\nitem difficulties (estimated vs ground truth):")
    for item_id in some_items:
        print(
            f"  item {item_id}: {difficulty[item_id]:.2f} "
            f"(true {dataset.true_difficulty[item_id]:.0f})"
        )

    # 5. Toward upskilling: items moderately above the user's current level
    #    (e.g. d ≈ s + 0.5), never selected by them before.
    current = int(trajectory[-1])
    seen = set(log.sequence(user).items)
    challengers = sorted(
        (
            (item_id, d)
            for item_id, d in difficulty.items()
            if item_id not in seen and current < d <= current + 1.0
        ),
        key=lambda pair: pair[1],
    )[:5]
    print(f"\nupskilling picks for {user!r} (skill {current}):")
    for item_id, d in challengers:
        print(f"  item {item_id}: difficulty {d:.2f}")


if __name__ == "__main__":
    main()
