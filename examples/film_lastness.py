"""Film domain: the lastness confounder and its preprocessing fix.

Reproduces the paper's Table IV → Table V contrast (Section VI-C): on raw
movie-watching data a progression model mistakes release-date drift for
skill, because people preferentially watch recently released movies; after
dropping every movie released after the dataset's earliest action the
confound disappears and the top level surfaces old classics instead.

Run:  python examples/film_lastness.py
"""

from repro.analysis import remove_lastness, top_items_summary
from repro.core import fit_skill_model
from repro.synth import FilmConfig, generate_film


def _report(model, catalog, header):
    print(header)
    print(f"{'level':>5} {'mean release year':>18} {'mean true difficulty':>21}")
    for level in range(1, model.num_levels + 1):
        summary = top_items_summary(
            model, level, 10, catalog=catalog, metadata_keys=("year", "difficulty")
        )
        print(
            f"{level:>5} {summary.mean_metadata['year']:>18.1f} "
            f"{summary.mean_metadata['difficulty']:>21.2f}"
        )


def main() -> None:
    dataset = generate_film(
        FilmConfig(num_users=300, num_items=600, mean_sequence_length=50, seed=21)
    )
    print(
        f"film dataset: {dataset.log.num_users} viewers, {len(dataset.catalog)} movies, "
        f"{dataset.log.num_actions} views"
    )

    # --- raw fit: the confound ------------------------------------------
    raw_model = fit_skill_model(
        dataset.log,
        dataset.catalog,
        dataset.feature_set,
        num_levels=5,
        init_min_actions=20,
        max_iterations=30,
    )
    _report(
        raw_model,
        dataset.catalog,
        "\nTOP-10 MOVIES PER LEVEL — RAW DATA (paper Table IV):",
    )
    print("→ release year drifts upward with 'skill': the model learned recency, not taste.")

    # --- preprocessing + refit: the fix ----------------------------------
    clean_log, clean_catalog, stats = remove_lastness(dataset.log, dataset.catalog)
    print(
        f"\npreprocessing: dropped movies released after t={stats.cutoff_time:.1f} "
        f"({stats.items_before} → {stats.items_after} movies, "
        f"{stats.actions_before} → {stats.actions_after} actions)"
    )
    clean_model = fit_skill_model(
        clean_log,
        clean_catalog,
        dataset.feature_set,
        num_levels=5,
        init_min_actions=20,
        max_iterations=30,
    )
    _report(
        clean_model,
        clean_catalog,
        "\nTOP-10 MOVIES PER LEVEL — AFTER PREPROCESSING (paper Table V):",
    )
    print(
        "→ the year drift collapses and true difficulty now rises with level: "
        "the top level prefers classics, the bottom level light blockbusters."
    )


if __name__ == "__main__":
    main()
