"""Cooking domain: skill interpretation and upskilling recommendations.

Reproduces the paper's cooking-domain analysis (Section VI-C, Figure 5) on
simulated Rakuten-Recipe-style data and turns it into a recommendation:

- fits the multi-faceted model (recipe category, time/cost class,
  ingredient and step counts + recipe id),
- shows how recipe complexity grows with the learned skill level — and how
  the *lowest* level overreaches (novices picking too-hard recipes),
- recommends, for a mid-skill cook, recipes one notch above their level.

Run:  python examples/cooking_upskill.py
"""

from repro.analysis import feature_trend
from repro.core import fit_skill_model, generation_difficulty
from repro.synth import CookingConfig, generate_cooking


def main() -> None:
    dataset = generate_cooking(CookingConfig(num_users=400, num_items=1500, seed=3))
    print(
        f"cooking dataset: {dataset.log.num_users} cooks, {len(dataset.catalog)} recipes, "
        f"{dataset.log.num_actions} cook reports"
    )

    model = fit_skill_model(
        dataset.log,
        dataset.catalog,
        dataset.feature_set,
        num_levels=5,
        init_min_actions=15,
        max_iterations=30,
    )

    # --- Figure 5 shape: complexity per learned level -------------------
    steps = feature_trend(model, "num_steps")
    ingredients = feature_trend(model, "num_ingredients")
    print("\nmean recipe complexity by learned skill level:")
    print(f"{'level':>5} {'steps':>7} {'ingredients':>12}")
    for level in range(1, 6):
        print(
            f"{level:>5} {steps.means[level - 1]:>7.2f} "
            f"{ingredients.means[level - 1]:>12.2f}"
        )
    print(
        "note the paper's novice-overreach anomaly: level 1 looks like a medium "
        "level because beginners misjudge recipe difficulty."
    )

    # --- upskilling recommendation --------------------------------------
    # The assembled recommender (paper Figure 1): interest × challenge fit.
    from repro.recsys import UpskillConfig, UpskillRecommender

    difficulty = generation_difficulty(model, prior="empirical")
    recommender = UpskillRecommender(
        model, difficulty, UpskillConfig(window_low=0.0, window_high=1.0)
    )
    # find a cook currently at level 3
    cook = next(
        user
        for user in dataset.log.users
        if model.skill_trajectory(user)[-1] == 3
    )
    print(f"\nupskilling menu for {cook!r} (level 3) — one notch up:")
    for rec in recommender.recommend(cook, k=5, log=dataset.log):
        recipe = dataset.catalog[rec.item]
        print(
            f"  {rec.item}: difficulty {rec.difficulty:.2f} "
            f"(challenge fit {rec.challenge_fit:.2f}, interest {rec.interest:.4f}), "
            f"{recipe.features['num_steps']} steps, {recipe.features['time_class']}"
        )


if __name__ == "__main__":
    main()
