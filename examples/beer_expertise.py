"""Beer domain: acquired tastes, difficulty, and rating prediction.

Reproduces the paper's beer-domain pipeline end to end on simulated
RateBeer-style data:

1. fit the skill model and show the Figure 6 drift (mean ABV climbs with
   skill) and the Table III style dominance (lagers → imperial styles),
2. estimate per-beer difficulty,
3. run the Table XII rating-prediction comparison: a plain U+I
   factorization baseline vs FFMs enriched with skill and difficulty.

Run:  python examples/beer_expertise.py
"""

from repro.analysis import feature_trend, top_dominated
from repro.core import fit_skill_model, generation_difficulty
from repro.recsys import run_rating_task
from repro.recsys.ffm import FFMConfig
from repro.synth import BeerConfig, generate_beer


def main() -> None:
    dataset = generate_beer(
        BeerConfig(num_users=150, num_items=600, mean_sequence_length=80, seed=9)
    )
    print(
        f"beer dataset: {dataset.log.num_users} reviewers, {len(dataset.catalog)} beers, "
        f"{dataset.log.num_actions} reviews"
    )

    model = fit_skill_model(
        dataset.log,
        dataset.catalog,
        dataset.feature_set,
        num_levels=5,
        init_min_actions=30,
        max_iterations=30,
    )

    # --- Figure 6: ABV per level ----------------------------------------
    abv = feature_trend(model, "abv")
    print("\nmean ABV by learned skill level (paper: 5.85% → 7.46%):")
    for level, mean in enumerate(abv.means, start=1):
        print(f"  level {level}: {mean:.2f}%")

    # --- Table III: style dominance --------------------------------------
    unskilled, skilled = top_dominated(model, "style", k=5)
    print("\nnovice-dominated styles:    expert-dominated styles:")
    for row in range(5):
        left = f"{unskilled[row].value} ({unskilled[row].score:+.3f})" if row < len(unskilled) else ""
        right = f"{skilled[row].value} ({skilled[row].score:+.3f})" if row < len(skilled) else ""
        print(f"  {left:<32} {right}")

    # --- difficulty --------------------------------------------------------
    difficulty = generation_difficulty(model, prior="empirical")
    hardest = sorted(difficulty.items(), key=lambda kv: -kv[1])[:3]
    print("\nhardest-to-appreciate beers:")
    for beer_id, d in hardest:
        print(f"  {beer_id} ({dataset.catalog[beer_id].features['style']}): {d:.2f}")

    # --- Table XII: rating prediction ------------------------------------
    print("\nrating prediction RMSE (lower is better):")
    result = run_rating_task(
        dataset.log,
        dataset.catalog,
        dataset.feature_set,
        num_levels=5,
        holdout="last",
        seed=0,
        ffm_config=FFMConfig(epochs=10, num_factors=6),
        init_min_actions=30,
        max_iterations=20,
    )
    for variant, rmse in result.rmse.items():
        print(f"  {variant:<8} {rmse:.4f}")
    print("adding skill (S) and difficulty (D) features should help the baseline.")


if __name__ == "__main__":
    main()
