"""Forgetting curves: tracking skill that decays over breaks.

The paper's discussion (Section VII) names its monotonicity assumption as
the first limitation — "users lose some skills if they have not taken
actions for a while" — and points at Ebbinghaus's forgetting curve.  This
example runs the implemented extension end to end:

1. generate synthetic practice data where long idle gaps erode skill,
2. fit the base monotone model and the forgetting-aware model,
3. compare both against the ground-truth trajectory of one user who took
   a long break — only the extension can follow them back down.

Run:  python examples/forgetting_curve.py
"""

import numpy as np

from repro.core import ForgettingConfig, fit_forgetting_model, fit_skill_model
from repro.synth import ForgettingDataConfig, generate_forgetting
from repro.synth.generator import SyntheticConfig


def main() -> None:
    dataset = generate_forgetting(
        ForgettingDataConfig(
            base=SyntheticConfig(num_users=200, num_items=1000, seed=13, level_up_prob=0.15)
        )
    )
    drops = sum(
        int(np.sum(np.diff(dataset.true_skills[seq.user]) < 0)) for seq in dataset.log
    )
    print(
        f"practice log: {dataset.log.num_users} users, {dataset.log.num_actions} actions, "
        f"{drops} true skill drops planted"
    )

    base = fit_skill_model(
        dataset.log, dataset.catalog, dataset.feature_set, 5,
        init_min_actions=30, max_iterations=25,
    )
    decay = fit_forgetting_model(
        dataset.log,
        dataset.catalog,
        dataset.feature_set,
        ForgettingConfig(num_levels=5, half_life=20.0, init_min_actions=30, max_iterations=25),
    )

    truth = dataset.true_skill_array()
    r_base = np.corrcoef(truth, np.concatenate([base.skill_trajectory(s.user) for s in dataset.log]))[0, 1]
    r_decay = np.corrcoef(truth, np.concatenate([decay.skill_trajectory(s.user) for s in dataset.log]))[0, 1]
    print(f"\nskill-tracking accuracy (Pearson r): base {r_base:.3f} vs forgetting-aware {r_decay:.3f}")

    # Show the shortest sequence whose true skill actually dropped.
    droppers = [
        seq for seq in dataset.log if np.any(np.diff(dataset.true_skills[seq.user]) < 0)
    ]
    user = min(droppers, key=len).user
    print(f"\nuser {user!r} (took breaks; skill decayed):")
    print(f"  truth      : {dataset.true_skills[user].tolist()}")
    print(f"  base       : {base.skill_trajectory(user).tolist()}  (monotone — cannot drop)")
    print(f"  forgetting : {decay.skill_trajectory(user).tolist()}")


if __name__ == "__main__":
    main()
