"""Cold-start difficulty: scoring items nobody has selected yet.

The paper's main argument for generation-based difficulty estimation
(Section V-B) is that assignment-based estimates simply do not exist for
new products.  This example demonstrates the full cold-start path:

1. train a skill model on cooking data using *shared* features only (no
   item-id feature — a new item has no id parameter),
2. invent brand-new recipes,
3. estimate their difficulty from features alone, and sanity-check the
   estimates against the complexity knobs we built them with.

Run:  python examples/new_item_difficulty.py
"""

from repro.core import FeatureKind, fit_skill_model
from repro.core.difficulty import generation_difficulty
from repro.core.features import ID_FEATURE
from repro.data import Item, ItemCatalog
from repro.synth import CookingConfig, generate_cooking


def main() -> None:
    dataset = generate_cooking(CookingConfig(num_users=400, num_items=1500, seed=5))

    # Shared features only: a model meant to score unseen items must not
    # depend on the item-id categorical.
    shared = dataset.feature_set.subset(
        [name for name in dataset.feature_set.names if name != ID_FEATURE]
    )
    model = fit_skill_model(
        dataset.log,
        dataset.catalog,
        shared,
        num_levels=5,
        init_min_actions=15,
        max_iterations=30,
    )
    print(f"model trained on {dataset.log.num_actions} cook reports, shared features only")

    # Three recipes that have never appeared in any action sequence.
    new_recipes = ItemCatalog(
        [
            Item(
                id="weeknight-omelette",
                features={
                    "category": "rice",
                    "time_class": "~15min",
                    "cost_class": "~300yen",
                    "main_ingredient": "egg",
                    "num_ingredients": 3,
                    "num_steps": 3,
                },
            ),
            Item(
                id="sunday-ramen",
                features={
                    "category": "noodles",
                    "time_class": "~60min",
                    "cost_class": "~1000yen",
                    "main_ingredient": "pork",
                    "num_ingredients": 9,
                    "num_steps": 8,
                },
            ),
            Item(
                id="festival-banquet",
                features={
                    "category": "hotpot",
                    "time_class": "60min+",
                    "cost_class": "1000yen+",
                    "main_ingredient": "salmon",
                    "num_ingredients": 14,
                    "num_steps": 13,
                },
            ),
        ]
    )
    encoded = shared.encode(new_recipes)
    difficulty = generation_difficulty(model, prior="empirical", encoded=encoded)

    print("\ncold-start difficulty estimates (scale 1..5):")
    for recipe_id in new_recipes.ids:
        print(f"  {recipe_id:<20} {difficulty[recipe_id]:.2f}")
    print(
        "\nthe banquet should comfortably out-rank the omelette — difficulty "
        "follows the complexity features, no selection history needed."
    )


if __name__ == "__main__":
    main()
