"""Skill analytics: the reporting layer around a fitted model.

Beyond point estimates, an operating upskilling system answers questions
like "how fast do users progress?", "how far does a typical cohort get?",
and "are our difficulty scores trustworthy?".  This example runs the
analysis toolkit end to end on the beer domain:

1. pre-flight validation of the training inputs,
2. dataset descriptives (sparsity, popularity concentration),
3. trajectory analytics (reach rates, dwell times, the population
   learning curve),
4. difficulty calibration — a ground-truth-free reliability check.

Run:  python examples/skill_analytics.py
"""

from repro.analysis import difficulty_calibration, summarize_trajectories
from repro.core import fit_skill_model, generation_difficulty
from repro.data import describe_log, validate_inputs
from repro.synth import BeerConfig, generate_beer


def main() -> None:
    dataset = generate_beer(
        BeerConfig(num_users=150, num_items=600, mean_sequence_length=80, seed=17)
    )

    # --- 1. pre-flight --------------------------------------------------
    report = validate_inputs(
        dataset.log, dataset.catalog, dataset.feature_set, expect_ratings=True
    )
    print("input validation:")
    print(report.to_text())
    assert report.ok, "inputs would not train cleanly"

    # --- 2. descriptives -------------------------------------------------
    stats = describe_log(dataset.log)
    print(
        f"\ndataset: {stats.num_users} users × {stats.num_items} items, "
        f"{stats.num_actions} actions"
    )
    print(
        f"  actions/user: mean {stats.actions_per_user_mean:.1f}, "
        f"median {stats.actions_per_user_median:.0f}, max {stats.actions_per_user_max}"
    )
    print(
        f"  popularity Gini {stats.popularity_gini:.2f} "
        f"({stats.rare_items} items selected ≤ 2 times)"
    )

    # --- 3. trajectories --------------------------------------------------
    model = fit_skill_model(
        dataset.log, dataset.catalog, dataset.feature_set, 5,
        init_min_actions=30, max_iterations=30,
    )
    summary = summarize_trajectories(model)
    print(f"\ntrajectories over {summary.num_users} users:")
    print(f"  mean final level: {summary.mean_final_level:.2f}")
    print("  reach rates:", " ".join(f"L{k + 1}={r:.2f}" for k, r in enumerate(summary.reach_rates)))
    print(
        "  mean dwell (actions):",
        " ".join(f"L{k + 1}={d:.1f}" for k, d in enumerate(summary.mean_dwell_per_level)),
    )
    curve = " → ".join(f"{level:.2f}" for level in summary.level_curve)
    print(f"  population learning curve: {curve}")

    # --- 4. calibration ----------------------------------------------------
    difficulty = generation_difficulty(model, prior="empirical")
    calibration = difficulty_calibration(model, dataset.log, difficulty, num_bins=5)
    print("\ndifficulty calibration (who selects each difficulty bin?):")
    print(f"{'difficulty bin':>16} {'mean selector skill':>20} {'#actions':>9}")
    for bin_ in calibration.bins:
        print(
            f"  [{bin_.difficulty_low:.1f}, {bin_.difficulty_high:.1f}) "
            f"{bin_.mean_selector_skill:>18.2f} {bin_.num_actions:>9}"
        )
    print(
        f"  monotone fraction {calibration.monotone_fraction:.2f}, "
        f"skill span {calibration.skill_span:.2f} — harder beers draw "
        "more-skilled reviewers, as the within-capacity assumption predicts."
    )


if __name__ == "__main__":
    main()
