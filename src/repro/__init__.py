"""repro — reproduction of "Toward Recommendation for Upskilling:
Modeling Skill Improvement and Item Difficulty in Action Sequences"
(Umemoto, Milo, Kitsuregawa; ICDE 2020).

Public entry points:

- :func:`repro.core.fit_skill_model` — train the multi-faceted progression
  model on an action log.
- :func:`repro.core.assignment_difficulty` /
  :func:`repro.core.generation_difficulty` — estimate item difficulty from
  a fitted model.
- :mod:`repro.synth` — the paper's synthetic dataset plus simulators for
  its four real domains (language, cooking, beer, film).
- :mod:`repro.recsys` — item-prediction and FFM rating-prediction tasks.
- :mod:`repro.experiments` — one runner per paper table/figure.
- :mod:`repro.obs` — structured logging, metrics, and training telemetry.
- :mod:`repro.serve` — online HTTP serving of saved models with
  micro-batching and hot-reload (imported on demand, not eagerly).
"""

from repro import core, data, obs
from repro.core import (
    FeatureKind,
    FeatureSet,
    FeatureSpec,
    ParallelConfig,
    SkillModel,
    Trainer,
    TrainerConfig,
    assignment_difficulty,
    fit_id_baseline,
    fit_skill_model,
    fit_uniform_baseline,
    generation_difficulty,
    select_skill_count,
)
from repro.data import Action, ActionLog, ActionSequence, Item, ItemCatalog, filter_log

__version__ = "1.0.0"

__all__ = [
    "core",
    "data",
    "obs",
    "FeatureKind",
    "FeatureSet",
    "FeatureSpec",
    "ParallelConfig",
    "SkillModel",
    "Trainer",
    "TrainerConfig",
    "assignment_difficulty",
    "fit_id_baseline",
    "fit_skill_model",
    "fit_uniform_baseline",
    "generation_difficulty",
    "select_skill_count",
    "Action",
    "ActionLog",
    "ActionSequence",
    "Item",
    "ItemCatalog",
    "filter_log",
    "__version__",
]
