"""Command-line interface: experiments, simulation, training, scoring.

Experiment reproduction::

    python -m repro list
    python -m repro run table6 --scale small
    python -m repro run all --scale small
    python -m repro datasets
    python -m repro report                 # regenerate EXPERIMENTS.md

End-to-end tool usage on files (JSONL logs/catalogs, JSON+NPZ models)::

    python -m repro simulate cooking --out data/cooking --users 500
    python -m repro fit data/cooking --levels 5 --model models/cooking
    python -m repro score models/cooking --top 10

Out-of-core training on corpora that don't fit in RAM (columnar store
directories; see docs/architecture.md)::

    python -m repro simulate synthetic --out data/big --users 100000 --store
    python -m repro convert data/cooking.log.jsonl data/cooking.store
    python -m repro fit data/big --levels 5 --model models/big --workers 4
    python -m repro inspect data/big.store

Serving::


    python -m repro serve models/cooking --port 8080
    python -m repro serve models/cooking --ingest-wal wal/ --data data/cooking
    python -m repro recommend models/cooking --user u12 --data data/cooking
    python -m repro wal inspect wal/

Observability (``fit``, ``run``, and ``serve``): ``--log-level INFO`` /
``--log-json`` select structured logging, ``--metrics-out metrics.json``
dumps the run's counters, stage timings, and training telemetry, and
``--trace-out spans.jsonl`` enables span tracing (both schemas checked by
``tools/check_obs_output.py``; summarize spans with ``repro trace``).

Everything the CLI does is a thin veneer over the library; the same flows
are available programmatically (see README).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exceptions import ReproError
from repro.experiments import all_experiments, get_experiment
from repro.experiments.registry import SCALES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed separately for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-upskill",
        description=(
            "Reproduction of 'Toward Recommendation for Upskilling' (ICDE 2020): "
            "run any of the paper's tables and figures on simulated data."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")

    def add_obs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--log-level",
            default=None,
            metavar="LEVEL",
            help="logging level for repro.* loggers (DEBUG/INFO/WARNING/...; "
            "default: $REPRO_LOG_LEVEL or WARNING)",
        )
        p.add_argument(
            "--log-json",
            action="store_true",
            help="emit logs as JSON lines instead of human-readable text",
        )
        p.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write a JSON metrics snapshot (counters, stage timings, "
            "telemetry) to PATH when done",
        )
        p.add_argument(
            "--trace-out",
            default=None,
            metavar="PATH",
            help="enable span tracing and append repro-trace/1 JSONL spans "
            "to PATH (tracing is off without this flag; inspect with "
            "`repro trace PATH`)",
        )

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id (e.g. table6, fig3) or 'all'")
    run_parser.add_argument(
        "--scale",
        choices=SCALES,
        default="small",
        help="dataset scale preset (default: small)",
    )
    add_obs_flags(run_parser)

    sub.add_parser("datasets", help="show the simulated dataset statistics")

    report_parser = sub.add_parser(
        "report", help="run every experiment and write a paper-vs-measured report"
    )
    report_parser.add_argument("--scale", choices=SCALES, default="small")
    report_parser.add_argument(
        "--output", default="EXPERIMENTS.md", help="markdown file to write"
    )

    simulate_parser = sub.add_parser(
        "simulate", help="generate a simulated domain and write it as JSONL"
    )
    simulate_parser.add_argument(
        "domain", choices=("synthetic", "language", "cooking", "beer", "film")
    )
    simulate_parser.add_argument("--out", required=True, help="output path prefix")
    simulate_parser.add_argument("--users", type=int, default=None)
    simulate_parser.add_argument("--items", type=int, default=None)
    simulate_parser.add_argument("--seed", type=int, default=0)
    simulate_parser.add_argument(
        "--store",
        action="store_true",
        help="write the actions as an out-of-core columnar store "
        "(<out>.store/) instead of a JSONL log; synthetic domain only — "
        "generation then streams and never holds the corpus in RAM",
    )
    simulate_parser.add_argument(
        "--users-per-shard",
        type=int,
        default=4096,
        metavar="N",
        help="with --store: how many users each shard buckets (default: 4096)",
    )

    convert_parser = sub.add_parser(
        "convert",
        help="convert a JSONL action log into an out-of-core columnar store",
    )
    convert_parser.add_argument(
        "data", help="JSONL log file, or a path prefix written by `simulate`"
    )
    convert_parser.add_argument("store", help="store directory to create")
    convert_parser.add_argument(
        "--users-per-shard",
        type=int,
        default=4096,
        metavar="N",
        help="how many users each shard buckets (default: 4096)",
    )

    fit_parser = sub.add_parser(
        "fit", help="train a skill model from JSONL data (or a columnar "
        "store) and save it"
    )
    fit_parser.add_argument(
        "data",
        help="path prefix written by `simulate`, or a columnar store "
        "directory written by `convert`/`simulate --store` (a prefix with "
        "a sibling <data>.store also selects the store)",
    )
    fit_parser.add_argument("--levels", type=int, required=True)
    fit_parser.add_argument("--model", required=True, help="model output path prefix")
    fit_parser.add_argument("--max-iterations", type=int, default=50)
    fit_parser.add_argument("--init-min-actions", type=int, default=50)
    fit_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="write a training checkpoint to <model>.ckpt.json every N "
        "iterations (0 disables checkpointing)",
    )
    fit_parser.add_argument(
        "--resume",
        action="store_true",
        help="continue training from <model>.ckpt.json; the trainer "
        "configuration is taken from the checkpoint, so --levels and "
        "--max-iterations are ignored",
    )
    fit_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the E-step (N > 1 enables the "
        "user-parallel pool; parallelism changes wall-clock, never "
        "results)",
    )
    add_obs_flags(fit_parser)

    score_parser = sub.add_parser(
        "score", help="estimate item difficulties with a saved model"
    )
    score_parser.add_argument("model", help="model path prefix written by `fit`")
    score_parser.add_argument(
        "--prior", choices=("uniform", "empirical"), default="empirical"
    )
    score_parser.add_argument("--top", type=int, default=0, help="print only the N hardest")
    score_parser.add_argument("--output", default=None, help="optional JSONL output")

    recommend_parser = sub.add_parser(
        "recommend",
        help="difficulty-targeted next items from a saved model "
        "(the offline twin of POST /recommend; see docs/recommendation.md)",
    )
    recommend_parser.add_argument("model", help="model path prefix written by `fit`")
    recommend_parser.add_argument(
        "--user", default=None, help="recommend for this training user"
    )
    recommend_parser.add_argument(
        "--time",
        type=float,
        default=None,
        help="infer the user's level at this time (default: their latest)",
    )
    recommend_parser.add_argument("--k", type=int, default=10)
    recommend_parser.add_argument(
        "--data",
        default=None,
        metavar="PREFIX",
        help="data path prefix (written by `simulate`); enables "
        "exclude-seen so already-done items are skipped",
    )
    recommend_parser.add_argument(
        "--window",
        default="-0.25,0.75",
        metavar="LOW,HIGH",
        help="challenge window relative to the user's level "
        "(default: -0.25,0.75)",
    )
    recommend_parser.add_argument(
        "--interest-weight",
        type=float,
        default=0.5,
        metavar="W",
        help="interest/challenge blend (0 = challenge only, 1 = interest only)",
    )
    recommend_parser.add_argument(
        "--similar-harder",
        default=None,
        metavar="ITEM",
        help="instead of the upskill blend: items performance-similar to "
        "ITEM but strictly harder (Kappa-style progression)",
    )
    recommend_parser.add_argument(
        "--margin",
        type=float,
        default=0.0,
        help="with --similar-harder: require at least this much extra "
        "difficulty over the anchor",
    )
    recommend_parser.add_argument(
        "--max-jump",
        type=float,
        default=None,
        help="re-rank: drop items more than this far above the user's "
        "level (the skip-level extension)",
    )
    recommend_parser.add_argument(
        "--satisfaction",
        default=None,
        metavar="PATH",
        help="re-rank: JSONL of {item, satisfaction} weights in [0, 1] "
        "(the satisfaction extension)",
    )
    recommend_parser.add_argument(
        "--output", default=None, help="optional JSONL output path"
    )

    inspect_parser = sub.add_parser(
        "inspect",
        help="print a model card for a saved model, or a shard/checksum "
        "report for a columnar action store",
    )
    inspect_parser.add_argument(
        "model",
        help="model path prefix written by `fit`, or a store directory "
        "written by `convert`/`simulate --store`",
    )
    inspect_parser.add_argument(
        "--data",
        default=None,
        help="optional data path prefix (enables the calibration section)",
    )

    serve_parser = sub.add_parser(
        "serve", help="serve a saved model over HTTP (see docs/serving.md)"
    )
    serve_parser.add_argument("model", help="model path prefix written by `fit`")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8080)
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="largest coalesced batch per kernel call (1 = sequential dispatch)",
    )
    serve_parser.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="batching window: flush at most this long after the first "
        "queued request (0 = flush immediately)",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="bound on concurrently admitted requests; overflow gets HTTP 429",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-request deadline; expired requests get HTTP 503",
    )
    serve_parser.add_argument(
        "--poll-seconds",
        type=float,
        default=1.0,
        help="how often to check the artifact pair for a hot-reload",
    )
    serve_parser.add_argument(
        "--ingest-wal",
        default=None,
        metavar="DIR",
        help="enable POST /ingest, journaling events to a write-ahead log "
        "in DIR and folding them into the model in the background "
        "(requires --data for the base action log)",
    )
    serve_parser.add_argument(
        "--data",
        default=None,
        metavar="PREFIX",
        help="data path prefix the model was fitted on (written by "
        "`simulate`); required with --ingest-wal so fold-in extends the "
        "real training sequences",
    )
    serve_parser.add_argument(
        "--foldin-every",
        type=float,
        default=5.0,
        metavar="N",
        help="seconds between fold-in drains of the ingest WAL",
    )
    serve_parser.add_argument(
        "--decay-half-life",
        type=float,
        default=None,
        help="enable forgetting-curve decay for idle users during fold-in "
        "(Ebbinghaus half-life in event-time units; needs --decay-stale-after)",
    )
    serve_parser.add_argument(
        "--decay-stale-after",
        type=float,
        default=None,
        help="re-solve users idle longer than this many event-time units "
        "under the decay lattice (needs --decay-half-life)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="prefork mode: N worker processes share the listen address "
        "(SO_REUSEPORT) and one shared-memory copy of every model; "
        "omit for the classic single-process server",
    )
    serve_parser.add_argument(
        "--tenant",
        action="append",
        default=None,
        metavar="NAME=PREFIX",
        help="serve an additional named model at /t/NAME/... (repeatable); "
        "the positional model is the default tenant",
    )
    serve_parser.add_argument(
        "--residency-budget-mb",
        type=float,
        default=None,
        metavar="MB",
        help="LRU byte budget across resident tenant models (counted "
        "against the shared-memory segments in prefork mode)",
    )
    serve_parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="prefork coordination directory (worker registrations, "
        "generation manifests; default: a temporary directory)",
    )
    serve_parser.add_argument(
        "--recommend-window",
        default="-0.25,0.75",
        metavar="LOW,HIGH",
        help="challenge window for POST /recommend, relative to the "
        "user's level (default: -0.25,0.75 — the 'moderately "
        "challenging' zone; see docs/recommendation.md)",
    )
    serve_parser.add_argument(
        "--interest-weight",
        type=float,
        default=0.5,
        metavar="W",
        help="geometric blend between interest and challenge for "
        "POST /recommend (0 = challenge only, 1 = interest only; "
        "default: 0.5)",
    )
    serve_parser.add_argument(
        "--trace-sample",
        type=float,
        default=0.1,
        metavar="RATE",
        help="with --trace-out: fraction of requests recorded with full "
        "span detail (every request still gets an X-Trace-Id header and "
        "journaled trace id; default 0.1 keeps tracing inside the <5%% "
        "serve-overhead budget — set 1.0 to trace every request)",
    )
    add_obs_flags(serve_parser)

    wal_parser = sub.add_parser(
        "wal", help="operate on a serving ingest write-ahead log"
    )
    wal_sub = wal_parser.add_subparsers(dest="wal_command", required=True)
    wal_inspect = wal_sub.add_parser(
        "inspect",
        help="print segment/offset/checksum status of a WAL directory "
        "(read-only; safe against a live server)",
    )
    wal_inspect.add_argument("directory", help="WAL directory (--ingest-wal DIR)")
    wal_inspect.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    trace_parser = sub.add_parser(
        "trace",
        help="summarize a repro-trace/1 JSONL span file "
        "(per-stage breakdown, critical path, p95 outliers)",
    )
    trace_parser.add_argument("file", help="span file written via --trace-out")
    trace_parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    trace_parser.add_argument(
        "--outliers",
        type=int,
        default=5,
        metavar="N",
        help="how many slow root spans to list (default: 5)",
    )
    return parser


def _configure_obs(
    log_level: str | None,
    log_json: bool,
    trace_out: str | None = None,
    trace_sample: float = 1.0,
) -> None:
    """One-shot observability setup for commands that train or measure.

    ``trace_sample`` only matters for the serve loop (per-request span
    detail); batch commands trace every unit of work regardless.
    """
    from repro.obs.logging import configure_logging

    configure_logging(level=log_level, json_lines=True if log_json else None)
    if trace_out:
        from pathlib import Path

        from repro.obs.trace import configure_tracing

        Path(trace_out).parent.mkdir(parents=True, exist_ok=True)
        configure_tracing(enabled=True, out=trace_out, sample=trace_sample)


def _finish_tracing(trace_out: str | None) -> None:
    """Flush and close the span sink opened by ``--trace-out``."""
    if not trace_out:
        return
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    tracer.close()
    print(f"wrote trace spans to {trace_out}")


def _write_metrics(path: str, telemetry=None) -> None:
    """Dump the run's metrics snapshot (plus optional fit telemetry)."""
    import json
    from pathlib import Path

    from repro.obs.logging import current_run_id
    from repro.obs.metrics import get_registry

    payload = {
        "schema": "repro-metrics/1",
        "run": current_run_id(),
        **get_registry().snapshot(),
        "telemetry": telemetry.to_json() if telemetry is not None else None,
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, ensure_ascii=False, indent=2), encoding="utf-8")
    print(f"wrote metrics to {out}")


def _cmd_list() -> int:
    for exp in all_experiments():
        print(f"{exp.experiment_id:10s} {exp.title}  [{exp.paper_reference}]")
    return 0


def _cmd_run(
    experiment: str,
    scale: str,
    metrics_out: str | None = None,
) -> int:
    experiments = (
        all_experiments() if experiment == "all" else [get_experiment(experiment)]
    )
    any_failed = False
    for exp in experiments:
        start = time.perf_counter()
        result = exp.run(scale)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[{exp.experiment_id}: {elapsed:.1f}s]")
        print()
        if not result.all_checks_pass:
            any_failed = True
    if metrics_out:
        # Everything the experiments trained/assigned during this process
        # recorded stage timings into the registry (train.*, pool.*, exp13.*);
        # the snapshot turns e.g. `repro run table13` into measured numbers.
        _write_metrics(metrics_out)
    return 1 if any_failed else 0


def _cmd_datasets() -> int:
    from repro.experiments.registry import run_experiment

    print(run_experiment("table1", "small").to_text())
    return 0


def _cmd_report(scale: str, output: str) -> int:
    """Run the whole suite and write EXPERIMENTS.md-style markdown."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python -m repro report`. Every table and figure of the",
        "paper's evaluation (Section VI) is regenerated on simulated data at",
        f"scale `{scale}`; 'paper' rows quote the published numbers, 'measured'",
        "tables are this run's output. We reproduce *shape* (orderings, trends,",
        "crossovers) — absolute values belong to the authors' proprietary",
        "datasets and hardware. Each experiment carries machine-checked shape",
        "checks; their outcome is recorded per experiment below.",
        "",
    ]
    any_failed = False
    for exp in all_experiments():
        start = time.perf_counter()
        result = exp.run(scale)
        elapsed = time.perf_counter() - start
        status = "PASS" if result.all_checks_pass else "FAIL"
        if not result.all_checks_pass:
            any_failed = True
        lines.append(f"## {result.title}")
        lines.append("")
        lines.append(f"*Paper artifact:* {exp.paper_reference} — *runtime:* {elapsed:.1f}s — "
                     f"*shape checks:* {status}")
        lines.append("")
        if result.notes:
            lines.append(f"> {result.notes}")
            lines.append("")
        lines.append("```")
        from repro.experiments.tables import format_table

        lines.append(format_table(result.headers, result.rows))
        lines.append("```")
        lines.append("")
        lines.append(
            "Checks: "
            + ", ".join(
                f"`{name}` {'✓' if ok else '✗'}" for name, ok in result.checks.items()
            )
        )
        lines.append("")
        print(f"[{exp.experiment_id}: {status} in {elapsed:.1f}s]")
    with open(output, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    print(f"wrote {output}")
    return 1 if any_failed else 0


def _cmd_simulate(
    domain: str,
    out: str,
    users: int | None,
    items: int | None,
    seed: int,
    store: bool = False,
    users_per_shard: int = 4096,
) -> int:
    import dataclasses
    import json
    from pathlib import Path

    from repro.data.io import save_catalog, save_log
    from repro import synth

    generators = {
        "synthetic": (synth.generate_synthetic, synth.SyntheticConfig),
        "language": (synth.generate_language, synth.LanguageConfig),
        "cooking": (synth.generate_cooking, synth.CookingConfig),
        "beer": (synth.generate_beer, synth.BeerConfig),
        "film": (synth.generate_film, synth.FilmConfig),
    }
    generate, config_cls = generators[domain]
    overrides: dict = {"seed": seed}
    if users is not None:
        overrides["num_users"] = users
    if items is not None:
        if not any(f.name == "num_items" for f in dataclasses.fields(config_cls)):
            print("error: this domain has no --items knob", file=sys.stderr)
            return 2
        overrides["num_items"] = items

    if store:
        if domain != "synthetic":
            print(
                "error: --store is only supported for the synthetic domain "
                "(the sized-down real domains fit in RAM as JSONL)",
                file=sys.stderr,
            )
            return 2
        prefix = Path(out)
        prefix.parent.mkdir(parents=True, exist_ok=True)
        store_path = Path(str(prefix) + ".store")
        result = synth.generate_synthetic_store(
            config_cls(**overrides), store_path, users_per_shard=users_per_shard
        )
        save_catalog(result.catalog, Path(str(prefix) + ".catalog.jsonl"))
        Path(str(prefix) + ".schema.json").write_text(
            json.dumps(result.feature_set.to_json()), encoding="utf-8"
        )
        written = result.store
        print(
            f"wrote {written.num_users} users / {written.num_items} items / "
            f"{written.num_actions} actions to {store_path} "
            f"({written.num_shards} shards, {written.total_bytes} bytes) "
            "+ catalog/schema"
        )
        return 0

    dataset = generate(config_cls(**overrides))

    prefix = Path(out)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    save_log(dataset.log, Path(str(prefix) + ".log.jsonl"))
    save_catalog(dataset.catalog, Path(str(prefix) + ".catalog.jsonl"))
    Path(str(prefix) + ".schema.json").write_text(
        json.dumps(dataset.feature_set.to_json()), encoding="utf-8"
    )
    print(
        f"wrote {dataset.log.num_users} users / {len(dataset.catalog)} items / "
        f"{dataset.log.num_actions} actions to {prefix}.{{log,catalog}}.jsonl + schema"
    )
    return 0


def _cmd_convert(data: str, store: str, users_per_shard: int) -> int:
    from pathlib import Path

    from repro.data.store import convert_log_file

    log_path = Path(data)
    if not log_path.is_file():
        candidate = Path(str(log_path) + ".log.jsonl")
        if not candidate.is_file():
            print(
                f"error: no action log at {log_path} (also tried {candidate})",
                file=sys.stderr,
            )
            return 2
        log_path = candidate
    start = time.perf_counter()
    written = convert_log_file(log_path, store, users_per_shard=users_per_shard)
    elapsed = time.perf_counter() - start
    print(
        f"converted {written.num_users} users / {written.num_actions} actions "
        f"({written.num_items} items) into {written.num_shards} shard(s) at "
        f"{store} [{written.total_bytes} bytes, {elapsed:.1f}s]"
    )
    return 0


def _cmd_fit(
    data: str,
    levels: int,
    model_out: str,
    max_iterations: int,
    init_min_actions: int,
    checkpoint_every: int = 0,
    resume: bool = False,
    workers: int = 1,
    metrics_out: str | None = None,
) -> int:
    import json
    from pathlib import Path

    from repro.core.checkpoint import CheckpointConfig, read_checkpoint
    from repro.core.features import FeatureSet
    from repro.core.parallel import ParallelConfig
    from repro.core.serialize import save_model
    from repro.core.training import fit_skill_model, resume_fit
    from repro.data.io import load_catalog, load_log
    from repro.data.store import ActionStore, is_store

    prefix = Path(data)
    # A store directory (passed directly, or sitting beside the prefix)
    # selects the out-of-core sharded trainer; catalog and schema live
    # under the prefix either way.
    if is_store(prefix):
        store_dir = prefix
        base = (
            Path(str(prefix)[: -len(".store")])
            if str(prefix).endswith(".store")
            else prefix
        )
    elif is_store(Path(str(prefix) + ".store")):
        store_dir = Path(str(prefix) + ".store")
        base = prefix
    else:
        store_dir = None
        base = prefix
    if store_dir is not None:
        if resume or checkpoint_every:
            print(
                "error: --resume/--checkpoint-every are not supported for "
                "store-backed fits (the sharded trainer keeps no mid-run "
                "checkpoints); fit from the JSONL log to use them",
                file=sys.stderr,
            )
            return 2
        training_data = ActionStore(store_dir)
        print(
            f"training out-of-core from {store_dir} "
            f"({training_data.num_users} users / "
            f"{training_data.num_actions} actions in "
            f"{training_data.num_shards} shards, workers={workers})"
        )
    else:
        training_data = load_log(Path(str(base) + ".log.jsonl"))
    catalog = load_catalog(Path(str(base) + ".catalog.jsonl"))
    feature_set = FeatureSet.from_json(
        json.loads(Path(str(base) + ".schema.json").read_text(encoding="utf-8"))
    )
    parallel = ParallelConfig(users=True, workers=workers) if workers > 1 else None
    out = Path(model_out)
    # the directory must exist before training so checkpoints can land in it
    out.parent.mkdir(parents=True, exist_ok=True)
    ckpt_path = Path(str(out) + ".ckpt.json")
    checkpoint = (
        CheckpointConfig(path=ckpt_path, every=checkpoint_every)
        if checkpoint_every
        else None
    )
    if resume:
        if not ckpt_path.exists():
            print(
                f"error: --resume requested but no checkpoint at {ckpt_path}",
                file=sys.stderr,
            )
            return 2
        state = read_checkpoint(ckpt_path)
        print(f"resuming from {ckpt_path} (iteration {state.iteration})")
        model = resume_fit(
            ckpt_path,
            training_data,
            catalog,
            feature_set,
            parallel=parallel,
            checkpoint=checkpoint,
        )
    else:
        fit_kwargs = {"parallel": parallel} if parallel is not None else {}
        model = fit_skill_model(
            training_data,
            catalog,
            feature_set,
            levels,
            max_iterations=max_iterations,
            init_min_actions=init_min_actions,
            checkpoint=checkpoint,
            **fit_kwargs,
        )
    json_path, npz_path = save_model(model, out)
    print(
        f"fitted in {model.trace.num_iterations} iterations "
        f"(converged={model.trace.converged}, logL={model.log_likelihood:.1f}); "
        f"saved {json_path} + {npz_path}"
    )
    if metrics_out:
        _write_metrics(metrics_out, telemetry=model.telemetry)
    return 0


def _cmd_score(model_path: str, prior: str, top: int, output: str | None) -> int:
    import json
    from pathlib import Path

    from repro.core.difficulty import generation_difficulty
    from repro.core.serialize import load_model

    model = load_model(model_path)
    estimates = generation_difficulty(model, prior=prior)
    ranked = sorted(estimates.items(), key=lambda kv: -kv[1])
    if output:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for item_id, value in ranked:
                handle.write(json.dumps({"item": item_id, "difficulty": value}) + "\n")
        print(f"wrote {len(ranked)} difficulty estimates to {path}")
    shown = ranked[:top] if top else ranked
    for item_id, value in shown:
        print(f"{value:6.3f}  {item_id}")
    return 0


def _cmd_inspect_store(path: str) -> int:
    from repro.data.store import ActionStore

    store = ActionStore(path)
    report = store.verify(deep=True)
    status = "verified" if report["ok"] else "FAILED"
    print("## Action store")
    print()
    print(f"- path: {store.path}")
    print(f"- format: {store.manifest['format']}")
    print(
        f"- users: {store.num_users}  actions: {store.num_actions}  "
        f"items: {store.num_items}"
    )
    print(
        f"- shards: {store.num_shards} "
        f"(users_per_shard={store.manifest['users_per_shard']})"
    )
    print(f"- bytes: {store.total_bytes}")
    print(f"- checksums: {report['files_checked']} files deep-checked, {status}")
    for problem in report["problems"]:
        print(f"    ! {problem}")
    print()
    shards = store.manifest["shards"]
    shown = shards[:20]
    print(f"{'shard':12s} {'users':>8s} {'actions':>10s} {'bytes':>12s}")
    for entry in shown:
        shard_bytes = sum(int(f["bytes"]) for f in entry["files"].values())
        print(
            f"{entry['name']:12s} {entry['num_users']:8d} "
            f"{entry['num_actions']:10d} {shard_bytes:12d}"
        )
    if len(shards) > len(shown):
        print(f"... and {len(shards) - len(shown)} more shard(s)")
    return 0 if report["ok"] else 1


def _cmd_inspect(model_path: str, data: str | None) -> int:
    from pathlib import Path

    from repro.analysis.report import model_card
    from repro.core.serialize import artifact_metadata, load_model
    from repro.data.io import load_log
    from repro.data.store import is_store

    if is_store(Path(model_path)):
        return _cmd_inspect_store(model_path)
    meta = artifact_metadata(model_path)
    checksum = meta["npz_checksum"] or "-"
    verified = "verified" if meta["checksum_verified"] else "NOT VERIFIED"
    npz_bytes = meta["npz_bytes"] if meta["npz_bytes"] is not None else "missing"
    print("## Artifacts")
    print()
    print(f"- structure: {meta['json_path']} ({meta['json_bytes']} bytes)")
    print(f"- arrays:    {meta['npz_path']} ({npz_bytes} bytes)")
    print(f"- format version: {meta['format_version']}")
    print(f"- sha256: {checksum[:12]}… ({verified})")
    print(f"- telemetry run: {meta['telemetry_run_id'] or '-'}")
    print()
    model = load_model(model_path)
    log = load_log(Path(str(Path(data)) + ".log.jsonl")) if data else None
    print(model_card(model, log))
    return 0


def _parse_window(text: str) -> tuple[float, float] | None:
    """``LOW,HIGH`` → floats; returns None (having printed) when malformed."""
    low_text, sep, high_text = text.partition(",")
    try:
        if not sep:
            raise ValueError(text)
        return float(low_text), float(high_text)
    except ValueError:
        print(
            f"error: expected a LOW,HIGH window like -0.25,0.75, got {text!r}",
            file=sys.stderr,
        )
        return None


def _resolve_id(identifier: str, known) -> str | int:
    """CLI args arrive as strings; recover integer training ids the same
    way the serve layer and the JSONL reader do."""
    if identifier not in known:
        try:
            coerced = int(identifier)
        except ValueError:
            return identifier
        if coerced in known:
            return coerced
    return identifier


def _cmd_recommend(args) -> int:
    import json
    from pathlib import Path

    from repro.core.difficulty import generation_difficulty
    from repro.core.serialize import load_model
    from repro.recsys.ranking import rerank_recommendations
    from repro.recsys.similarity import build_similarity_index, similar_harder
    from repro.recsys.upskill import UpskillConfig, UpskillRecommender

    window = _parse_window(args.window)
    if window is None:
        return 2
    model = load_model(args.model)
    recommender = UpskillRecommender(
        model,
        generation_difficulty(model, prior="empirical"),
        UpskillConfig(
            window_low=window[0],
            window_high=window[1],
            interest_weight=args.interest_weight,
            exclude_seen=bool(args.data),
        ),
    )

    if args.similar_harder is not None:
        anchor = _resolve_id(args.similar_harder, model.encoded.index_of)
        similars = similar_harder(
            build_similarity_index(model),
            recommender.difficulty_vector,
            anchor,
            k=args.k,
            margin=args.margin,
        )
        rows = [
            {
                "item": one.item,
                "similarity": one.similarity,
                "difficulty": one.difficulty,
            }
            for one in similars
        ]
        print(f"{'similarity':>10s} {'difficulty':>10s}  item")
        for row in rows:
            print(
                f"{row['similarity']:10.4f} {row['difficulty']:10.3f}  {row['item']}"
            )
    else:
        if args.user is None:
            print(
                "error: recommend needs --user (or --similar-harder ITEM)",
                file=sys.stderr,
            )
            return 2
        user = _resolve_id(args.user, model.assignments)
        log = None
        if args.data:
            from repro.data.io import load_log

            log = load_log(Path(str(Path(args.data)) + ".log.jsonl"))
        recommendations = recommender.recommend(
            user, time=args.time, k=args.k, log=log
        )
        satisfaction = None
        if args.satisfaction:
            satisfaction = {}
            with open(args.satisfaction, encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        record = json.loads(line)
                        satisfaction[record["item"]] = float(record["satisfaction"])
        if args.max_jump is not None or satisfaction is not None:
            recommendations = rerank_recommendations(
                recommendations,
                level=(
                    recommender.level_of(user, args.time)
                    if args.max_jump is not None
                    else None
                ),
                max_jump=args.max_jump,
                satisfaction=satisfaction,
            )
        level = recommender.level_of(user, args.time)
        print(f"user {user!r} at level {level} (window {args.window}):")
        print(f"{'score':>8s} {'difficulty':>10s} {'interest':>9s}  item")
        rows = []
        for rec in recommendations:
            rows.append(
                {
                    "item": rec.item,
                    "score": rec.score,
                    "difficulty": rec.difficulty,
                    "challenge_fit": rec.challenge_fit,
                    "interest": rec.interest,
                }
            )
            print(
                f"{rec.score:8.4f} {rec.difficulty:10.3f} {rec.interest:9.4f}  "
                f"{rec.item}"
            )
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        with out.open("w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        print(f"wrote {len(rows)} rows to {out}")
    return 0


def _parse_tenants(args) -> dict[str, str] | None:
    """``--tenant NAME=PREFIX`` flags plus the positional default model;
    returns None (having printed an error) on a malformed flag."""
    tenants = {"default": args.model}
    for entry in args.tenant or ():
        name, sep, prefix = entry.partition("=")
        if not sep or not name or not prefix:
            print(f"error: --tenant expects NAME=PREFIX, got {entry!r}", file=sys.stderr)
            return None
        if "/" in name or name in tenants:
            print(f"error: invalid or duplicate tenant name {name!r}", file=sys.stderr)
            return None
        tenants[name] = prefix
    return tenants


def _serve_config(args):
    """One ServeConfig from the serve flags (shared by the single-process
    and prefork paths so /recommend behaves identically under both);
    returns None (having printed) on a malformed window."""
    from repro.serve import ServeConfig

    window = _parse_window(args.recommend_window)
    if window is None:
        return None
    return ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        timeout_seconds=args.timeout,
        poll_seconds=args.poll_seconds,
        recommend_window_low=window[0],
        recommend_window_high=window[1],
        interest_weight=args.interest_weight,
    )


def _cmd_serve_prefork(args, tenants: dict[str, str]) -> int:
    """``repro serve --workers N``: the prefork supervisor as pid 1."""
    import signal
    import tempfile
    from pathlib import Path

    from repro.serve import PreforkConfig, PreforkSupervisor

    if args.ingest_wal:
        print(
            "error: --workers is incompatible with --ingest-wal (ingest "
            "needs a single writer; run a dedicated single-process "
            "ingest server instead)",
            file=sys.stderr,
        )
        return 2
    run_dir = Path(args.run_dir or tempfile.mkdtemp(prefix="repro-prefork-"))
    budget = (
        int(args.residency_budget_mb * 1024 * 1024)
        if args.residency_budget_mb
        else None
    )
    serve_config = _serve_config(args)
    if serve_config is None:
        return 2
    supervisor = PreforkSupervisor(
        tenants,
        PreforkConfig(
            workers=args.workers,
            run_dir=run_dir,
            poll_seconds=args.poll_seconds,
            residency_budget_bytes=budget,
        ),
        serve_config,
    )
    host, port = supervisor.start()
    names = ", ".join(sorted(tenants))
    print(
        f"serving {args.model} on http://{host}:{port} "
        f"(workers={args.workers}, tenants=[{names}], run_dir={run_dir}); "
        "Ctrl-C to stop"
    )
    # SIGTERM and Ctrl-C both drain: workers finish in-flight requests,
    # then the parent unlinks every shm generation it owns.
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: supervisor.request_stop())
    try:
        supervisor.wait_ready()
        supervisor.serve_forever()
    finally:
        supervisor.stop()
    print("shutting down")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import gc
    from pathlib import Path

    from repro.serve import (
        FoldinConfig,
        FoldinWorker,
        SkillServer,
        WriteAheadLog,
    )
    from repro.serve.state import ModelState, TenantRegistry, TenantSpec

    tenants = _parse_tenants(args)
    if tenants is None:
        return 2
    if args.workers is not None:
        return _cmd_serve_prefork(args, tenants)

    config = _serve_config(args)
    if config is None:
        return 2
    budget = (
        int(args.residency_budget_mb * 1024 * 1024)
        if args.residency_budget_mb
        else None
    )
    registry = TenantRegistry(
        [
            TenantSpec(name, prefix=Path(prefix))
            for name, prefix in tenants.items()
        ],
        residency_budget_bytes=budget,
        poll_seconds=args.poll_seconds,
    )
    state = registry.state()

    wal = None
    foldin = None
    if args.ingest_wal:
        if not args.data:
            print(
                "error: --ingest-wal requires --data PREFIX (the log the "
                "model was fitted on, for fold-in)",
                file=sys.stderr,
            )
            return 2
        from repro.data.io import load_log

        base_log = load_log(Path(str(Path(args.data)) + ".log.jsonl"))
        wal = WriteAheadLog(args.ingest_wal)
        foldin = FoldinWorker(
            wal,
            args.model,
            base_log,
            config=FoldinConfig(
                interval_seconds=args.foldin_every,
                decay_half_life=args.decay_half_life,
                decay_stale_after=args.decay_stale_after,
            ),
        )
        foldin.bootstrap()

    async def _run() -> None:
        server = SkillServer(registry, config, wal=wal, foldin=foldin)
        host, port = await server.start()
        meta = state.current.metadata
        print(
            f"serving {args.model} on http://{host}:{port} "
            f"(users={meta['num_users']}, items={meta['num_items']}, "
            f"sha256={str(meta['npz_checksum'])[:12]}…); Ctrl-C to stop"
        )
        if wal is not None:
            print(
                f"ingest WAL at {args.ingest_wal} "
                f"(last_seq={wal.last_seq}, fold-in every {args.foldin_every}s)"
            )
        # Supervisors (systemd, k8s, CI scripts) stop services with SIGTERM,
        # and a `&`-backgrounded process in a non-interactive shell starts
        # with SIGINT *ignored* — so Ctrl-C semantics alone leave no clean
        # stop signal in exactly the environments that script this server.
        # Treat SIGTERM like Ctrl-C: drain, close the WAL, flush the span
        # sink, exit 0.
        import signal

        stopping = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stopping.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-POSIX event loop: SIGTERM keeps its default fate
        serve_task = asyncio.ensure_future(server.serve_forever())
        stop_task = asyncio.ensure_future(stopping.wait())
        try:
            done, pending = await asyncio.wait(
                {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
            )
            for task in pending:
                task.cancel()
            if stop_task in done:
                print("shutting down (SIGTERM)")
            elif serve_task in done:
                serve_task.result()  # surface a crashed accept loop
        finally:
            serve_task.cancel()
            await server.stop()

    # The serving loop allocates tens of short-lived objects per request
    # (parsed payloads, response dicts, trace tuples); at the default
    # gen-0 threshold of 700 that is a cyclic-GC pass every ~20 requests,
    # each scanning the long-lived server/model graph's young survivors.
    # Raising the thresholds trades a little collection latency for a lot
    # of per-request overhead — the standard tuning for long-lived
    # asyncio services.
    gc.set_threshold(20_000, 50, 50)
    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        if wal is not None:
            wal.close()
    return 0


def _cmd_wal_inspect(directory: str, as_json: bool) -> int:
    import json

    from repro.serve import inspect_wal

    report = inspect_wal(directory)
    if as_json:
        print(json.dumps(report, indent=2))
    else:
        print(f"WAL {report['directory']}: last_seq={report['last_seq']} "
              f"records={report['total_records']} segments={len(report['segments'])}")
        for segment in report["segments"]:
            if segment["status"] == "corrupt" and "error" in segment:
                print(f"  {segment['file']:20s} CORRUPT  {segment['error']}")
                continue
            seqs = (
                f"seq {segment['first_seq']}..{segment['last_seq']}"
                if segment["first_seq"] is not None
                else "no records"
            )
            torn = ""
            if segment["valid_bytes"] != segment["bytes"]:
                torn = (
                    f"  ({segment['bytes'] - segment['valid_bytes']} trailing "
                    "bytes fail checksum)"
                )
            print(
                f"  {segment['file']:20s} {segment['status']:9s} "
                f"{segment['records']:6d} records  {seqs}  "
                f"{segment['valid_bytes']}/{segment['bytes']} bytes{torn}"
            )
        watermark = report.get("watermark")
        if watermark is not None:
            print(f"  watermark (advisory): {watermark}")
        snapshot = report.get("snapshot")
        if snapshot is not None:
            print(f"  applied-events snapshot: {snapshot}")
    # Non-zero exit on real corruption so scripts can alert; a torn tail
    # is expected crash damage and exits 0.
    corrupt = any(s["status"] == "corrupt" for s in report["segments"])
    return 1 if corrupt else 0


def _cmd_trace(file: str, as_json: bool, outliers: int) -> int:
    import json

    from repro.obs.trace import load_trace_file, summarize_spans

    try:
        spans = load_trace_file(file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not spans:
        print(f"no spans in {file}")
        return 0
    summary = summarize_spans(spans, outliers=outliers)
    if as_json:
        print(json.dumps(summary, indent=2))
        return 0
    traces = summary["traces"]
    print(
        f"{summary['spans']} spans across {traces['count']} trace(s) "
        f"({traces['roots']} roots) in {file}"
    )
    print()
    print(f"{'stage':28s} {'count':>6s} {'total ms':>9s} {'mean ms':>8s} "
          f"{'p50 ms':>8s} {'p95 ms':>8s} {'max ms':>8s}")
    for name, digest in summary["stages"].items():
        print(
            f"{name:28s} {digest['count']:6d} {digest['total_ms']:9.1f} "
            f"{digest['mean_ms']:8.2f} {digest['p50_ms']:8.2f} "
            f"{digest['p95_ms']:8.2f} {digest['max_ms']:8.2f}"
        )
    if summary["critical_path"]:
        print()
        print("critical path (slowest root, most expensive child at each level):")
        for depth, node in enumerate(summary["critical_path"]):
            print(
                f"  {'  ' * depth}{node['name']}  {node['ms']:.2f}ms "
                f"(self {node['self_ms']:.2f}ms)  trace={node['trace']}"
            )
    if summary["outliers"]:
        print()
        print("p95 outliers (slowest roots):")
        for row in summary["outliers"]:
            print(f"  {row['ms']:8.2f}ms  {row['name']:24s} trace={row['trace']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            _configure_obs(args.log_level, args.log_json, args.trace_out)
            try:
                return _cmd_run(
                    args.experiment, args.scale, metrics_out=args.metrics_out
                )
            finally:
                _finish_tracing(args.trace_out)
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "report":
            return _cmd_report(args.scale, args.output)
        if args.command == "simulate":
            return _cmd_simulate(
                args.domain,
                args.out,
                args.users,
                args.items,
                args.seed,
                store=args.store,
                users_per_shard=args.users_per_shard,
            )
        if args.command == "convert":
            return _cmd_convert(args.data, args.store, args.users_per_shard)
        if args.command == "fit":
            _configure_obs(args.log_level, args.log_json, args.trace_out)
            try:
                return _cmd_fit(
                    args.data,
                    args.levels,
                    args.model,
                    args.max_iterations,
                    args.init_min_actions,
                    checkpoint_every=args.checkpoint_every,
                    resume=args.resume,
                    workers=args.workers,
                    metrics_out=args.metrics_out,
                )
            finally:
                _finish_tracing(args.trace_out)
        if args.command == "score":
            return _cmd_score(args.model, args.prior, args.top, args.output)
        if args.command == "recommend":
            return _cmd_recommend(args)
        if args.command == "inspect":
            return _cmd_inspect(args.model, args.data)
        if args.command == "serve":
            _configure_obs(
                args.log_level, args.log_json, args.trace_out, args.trace_sample
            )
            try:
                return _cmd_serve(args)
            finally:
                _finish_tracing(args.trace_out)
        if args.command == "wal":
            return _cmd_wal_inspect(args.directory, args.json)
        if args.command == "trace":
            return _cmd_trace(args.file, args.json, args.outliers)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
