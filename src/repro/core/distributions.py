"""Observation models for item features (paper Section IV-A/B).

Each (feature, skill-level) cell of the skill model holds one distribution
from this module:

- :class:`Categorical` — closed-form MLE with additive smoothing
  (Equation 6, pseudo-count ``λ = 0.01`` by default, after Shin et al.).
- :class:`Poisson` — closed-form MLE, the sample mean (Equation 7).
- :class:`Gamma` — no closed form; fitted by Newton refinement of the
  standard Minka/Choi–Wette initial estimate (the "numerical analysis
  approaches" the paper defers to).
- :class:`LogNormal` — closed-form MLE on log-values.

All distributions are immutable; ``fit`` is a classmethod so a trainer can
re-estimate a cell without mutating the old model.  Every ``fit`` accepts
optional non-negative ``weights`` so the soft-EM ablation can reuse the
same estimators with fractional responsibilities.

Every family also splits its estimator into the pair

- ``sufficient_stats(values, weights)`` — the (weighted) sufficient
  statistics of a sample: category counts for :class:`Categorical`,
  ``(n, total)`` for :class:`Poisson`, ``(n, mean, mean_log)`` for
  :class:`Gamma` (all the Choi–Wette + Newton refinement needs), and
  ``(n, mean_log, mean_sq_log)`` for :class:`LogNormal`;
- ``fit_from_stats(...)`` — the closed-form (or Newton) solve from those
  statistics alone.

``fit`` *delegates* to the pair, so
``fit_from_stats(sufficient_stats(values)) == fit(values)`` holds
bit-identically by construction (pinned in ``tests/test_core_stats.py``).
This is what lets :class:`repro.core.stats.SkillStats` maintain per-cell
statistics incrementally and refit cells without ever touching the raw
values again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln, polygamma, psi

from repro.exceptions import ConfigurationError, SchemaError

__all__ = ["Categorical", "Poisson", "Gamma", "LogNormal", "distribution_for_kind"]

#: Smallest rate / shape / scale we allow, to keep log-densities finite.
_EPS = 1e-12
#: Cap on the gamma shape so near-constant samples stay numerically sane.
_MAX_GAMMA_SHAPE = 1e6


def _check_weights(values: np.ndarray, weights: np.ndarray | None) -> np.ndarray:
    if weights is None:
        return np.ones(len(values), dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(values),):
        raise ConfigurationError(
            f"weights shape {weights.shape} does not match {len(values)} values"
        )
    if np.any(weights < 0):
        raise ConfigurationError("weights must be non-negative")
    return weights


@dataclass(frozen=True)
class Categorical:
    """Categorical distribution over ``C`` category codes ``0..C-1``."""

    probs: np.ndarray

    def __post_init__(self) -> None:
        probs = np.asarray(self.probs, dtype=np.float64)
        if probs.ndim != 1 or len(probs) == 0:
            raise ConfigurationError("categorical probs must be a non-empty 1-D array")
        if np.any(probs < 0) or not np.isclose(probs.sum(), 1.0, atol=1e-8):
            raise ConfigurationError("categorical probs must be non-negative and sum to 1")
        object.__setattr__(self, "probs", probs)
        # log_prob is called once per (level, feature) cell per training
        # iteration over the whole catalog; taking the log of the full
        # probability vector each time was measurable, so it is computed
        # once here.  Stored outside the dataclass fields: equality,
        # replace(), and serialization still see only ``probs``.
        with np.errstate(divide="ignore"):
            object.__setattr__(self, "_log_probs", np.log(probs))

    @property
    def num_categories(self) -> int:
        return len(self.probs)

    @classmethod
    def fit(
        cls,
        values: np.ndarray,
        *,
        num_categories: int,
        smoothing: float = 0.01,
        weights: np.ndarray | None = None,
    ) -> "Categorical":
        """Smoothed MLE (Equation 6): ``(λ + n_c) / (λC + n)``.

        Works for an empty sample too, where it degrades gracefully to the
        uniform distribution — this is how skill levels that received no
        assignments in an iteration stay well-defined.
        """
        if num_categories <= 0:
            raise ConfigurationError("num_categories must be positive")
        if smoothing < 0:
            raise ConfigurationError("smoothing must be non-negative")
        if smoothing == 0 and len(values) == 0:
            raise ConfigurationError("unsmoothed fit needs at least one observation")
        counts = cls.sufficient_stats(values, num_categories=num_categories, weights=weights)
        return cls.fit_from_stats(counts, smoothing=smoothing)

    @staticmethod
    def sufficient_stats(
        values: np.ndarray,
        *,
        num_categories: int,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-category (weighted) counts — the categorical sufficient
        statistic.  Counts from disjoint sub-samples add exactly, so they
        can be accumulated (and subtracted) incrementally."""
        if num_categories <= 0:
            raise ConfigurationError("num_categories must be positive")
        values = np.asarray(values, dtype=np.int64)
        if len(values) and (values.min() < 0 or values.max() >= num_categories):
            raise SchemaError("category code outside [0, num_categories)")
        weights = _check_weights(values, weights)
        return np.bincount(values, weights=weights, minlength=num_categories)

    @classmethod
    def fit_from_stats(cls, counts: np.ndarray, *, smoothing: float = 0.01) -> "Categorical":
        """Smoothed MLE from per-category counts (Equation 6)."""
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 1 or len(counts) == 0:
            raise ConfigurationError("counts must be a non-empty 1-D array")
        if np.any(counts < 0):
            raise ConfigurationError("counts must be non-negative")
        if smoothing < 0:
            raise ConfigurationError("smoothing must be non-negative")
        total = counts.sum()
        if smoothing == 0 and total == 0:
            raise ConfigurationError("unsmoothed fit needs at least one observation")
        probs = (smoothing + counts) / (smoothing * len(counts) + total)
        return cls(probs)

    def log_prob(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        if len(values) and (values.min() < 0 or values.max() >= self.num_categories):
            raise SchemaError("category code outside [0, num_categories)")
        return self._log_probs[values]

    @staticmethod
    def column_stats(values: np.ndarray) -> np.ndarray:
        """Validated codes, reusable across every level's ``log_prob``.

        Part of the shared column-stats protocol (see
        :class:`repro.core.model.ScoreTableCache`):
        ``log_prob_from_stats(column_stats(v))`` is bit-identical to
        ``log_prob(v)`` while hoisting the level-independent work out of
        the per-cell call.
        """
        return np.asarray(values, dtype=np.int64)

    def log_prob_from_stats(self, stats: np.ndarray) -> np.ndarray:
        values = stats
        if len(values) and (values.min() < 0 or values.max() >= self.num_categories):
            raise SchemaError("category code outside [0, num_categories)")
        return self._log_probs[values]

    def mean(self) -> float:
        """Expected category code (mostly useful for synthetic sanity checks)."""
        return float(np.dot(np.arange(self.num_categories), self.probs))


@dataclass(frozen=True)
class Poisson:
    """Poisson distribution over counts ``k >= 0``."""

    rate: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.rate) or self.rate <= 0:
            raise ConfigurationError(f"Poisson rate must be positive, got {self.rate}")

    @classmethod
    def fit(cls, values: np.ndarray, *, weights: np.ndarray | None = None) -> "Poisson":
        """MLE (Equation 7): the (weighted) sample mean, floored at a tiny
        positive value so all-zero samples stay valid."""
        return cls.fit_from_stats(*cls.sufficient_stats(values, weights=weights))

    @staticmethod
    def sufficient_stats(
        values: np.ndarray, weights: np.ndarray | None = None
    ) -> tuple[float, float]:
        """``(n, total)`` — (weighted) count and sum, additive across
        sub-samples."""
        values = np.asarray(values, dtype=np.float64)
        weights = _check_weights(values, weights)
        return float(weights.sum()), float(np.dot(weights, values))

    @classmethod
    def fit_from_stats(cls, n: float, total: float) -> "Poisson":
        """MLE from ``(n, total)``: the mean ``total / n``, floored."""
        if n <= 0:
            return cls(rate=1.0)
        mean = float(total) / n
        return cls(rate=max(mean, _EPS))

    def log_prob(self, values: np.ndarray) -> np.ndarray:
        k = np.asarray(values, dtype=np.float64)
        if np.any(k < 0):
            raise SchemaError("Poisson values must be >= 0")
        return k * np.log(self.rate) - self.rate - gammaln(k + 1.0)

    @staticmethod
    def column_stats(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(k, gammaln(k + 1))`` — the rate-independent terms.

        ``gammaln`` dominates ``log_prob``'s cost and is identical for
        every skill level scoring the same feature column; computing it
        once per column makes the score-table build ~S× cheaper for
        count features.
        """
        k = np.asarray(values, dtype=np.float64)
        if np.any(k < 0):
            raise SchemaError("Poisson values must be >= 0")
        return k, gammaln(k + 1.0)

    def log_prob_from_stats(self, stats: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        k, log_factorial = stats
        return k * np.log(self.rate) - self.rate - log_factorial

    def mean(self) -> float:
        return self.rate


@dataclass(frozen=True)
class Gamma:
    """Gamma distribution (shape ``k``, scale ``θ``) over positive reals."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.shape) or self.shape <= 0:
            raise ConfigurationError(f"gamma shape must be positive, got {self.shape}")
        if not np.isfinite(self.scale) or self.scale <= 0:
            raise ConfigurationError(f"gamma scale must be positive, got {self.scale}")

    @classmethod
    def fit(
        cls,
        values: np.ndarray,
        *,
        weights: np.ndarray | None = None,
        newton_steps: int = 25,
    ) -> "Gamma":
        """Approximate MLE via the closed-form Choi–Wette estimate refined
        with Newton steps on ``log k − ψ(k) = s``.

        Near-constant samples drive the shape towards infinity; it is capped
        so the density stays finite.  An empty sample returns a vague
        ``Gamma(1, 1)`` (exponential) placeholder.
        """
        return cls.fit_from_stats(
            *cls.sufficient_stats(values, weights=weights), newton_steps=newton_steps
        )

    @staticmethod
    def sufficient_stats(
        values: np.ndarray, weights: np.ndarray | None = None
    ) -> tuple[float, float, float]:
        """``(n, mean, mean_log)`` — everything the Choi–Wette + Newton
        refinement needs.  ``(n, n*mean, n*mean_log)`` are additive, so a
        caller accumulating across sub-samples keeps sums and divides at
        fit time (see :class:`repro.core.stats.SkillStats`)."""
        values = np.asarray(values, dtype=np.float64)
        if np.any(values <= 0):
            raise SchemaError("gamma values must be strictly positive")
        weights = _check_weights(values, weights)
        total_weight = weights.sum()
        if total_weight <= 0:
            return 0.0, 0.0, 0.0
        mean = float(np.dot(weights, values) / total_weight)
        mean_log = float(np.dot(weights, np.log(values)) / total_weight)
        return float(total_weight), mean, mean_log

    @classmethod
    def fit_from_stats(
        cls, n: float, mean: float, mean_log: float, *, newton_steps: int = 25
    ) -> "Gamma":
        """Choi–Wette + Newton solve from ``(n, mean, mean_log)`` alone."""
        if n <= 0:
            return cls(shape=1.0, scale=1.0)
        s = np.log(mean) - mean_log  # >= 0 by Jensen; == 0 iff constant sample
        if s < 1e-10:
            shape = _MAX_GAMMA_SHAPE
        else:
            shape = (3.0 - s + np.sqrt((s - 3.0) ** 2 + 24.0 * s)) / (12.0 * s)
            for _ in range(newton_steps):
                step = (np.log(shape) - psi(shape) - s) / (1.0 / shape - polygamma(1, shape))
                new_shape = shape - step
                if new_shape <= 0 or not np.isfinite(new_shape):
                    break
                if abs(new_shape - shape) < 1e-12 * shape:
                    shape = new_shape
                    break
                shape = new_shape
            shape = float(np.clip(shape, _EPS, _MAX_GAMMA_SHAPE))
        scale = max(mean / shape, _EPS)
        return cls(shape=float(shape), scale=float(scale))

    def log_prob(self, values: np.ndarray) -> np.ndarray:
        x = np.asarray(values, dtype=np.float64)
        if np.any(x <= 0):
            raise SchemaError("gamma values must be strictly positive")
        k, theta = self.shape, self.scale
        return (k - 1.0) * np.log(x) - x / theta - gammaln(k) - k * np.log(theta)

    @staticmethod
    def column_stats(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(x, log x)`` — the parameter-independent terms."""
        x = np.asarray(values, dtype=np.float64)
        if np.any(x <= 0):
            raise SchemaError("gamma values must be strictly positive")
        return x, np.log(x)

    def log_prob_from_stats(self, stats: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        x, log_x = stats
        k, theta = self.shape, self.scale
        return (k - 1.0) * log_x - x / theta - gammaln(k) - k * np.log(theta)

    def mean(self) -> float:
        return self.shape * self.scale


@dataclass(frozen=True)
class LogNormal:
    """Log-normal distribution over positive reals."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.mu):
            raise ConfigurationError(f"log-normal mu must be finite, got {self.mu}")
        if not np.isfinite(self.sigma) or self.sigma <= 0:
            raise ConfigurationError(f"log-normal sigma must be positive, got {self.sigma}")

    @classmethod
    def fit(cls, values: np.ndarray, *, weights: np.ndarray | None = None) -> "LogNormal":
        """Closed-form MLE on log-values, with a small variance floor so a
        constant (or empty) sample stays a proper density."""
        return cls.fit_from_stats(*cls.sufficient_stats(values, weights=weights))

    @staticmethod
    def sufficient_stats(
        values: np.ndarray, weights: np.ndarray | None = None
    ) -> tuple[float, float, float]:
        """``(n, mean_log, mean_sq_log)`` — the log-domain first and second
        moments (uncentered, so they stay additive across sub-samples)."""
        values = np.asarray(values, dtype=np.float64)
        if np.any(values <= 0):
            raise SchemaError("log-normal values must be strictly positive")
        weights = _check_weights(values, weights)
        total_weight = weights.sum()
        if total_weight <= 0:
            return 0.0, 0.0, 0.0
        logs = np.log(values)
        mean_log = float(np.dot(weights, logs) / total_weight)
        mean_sq_log = float(np.dot(weights, logs * logs) / total_weight)
        return float(total_weight), mean_log, mean_sq_log

    @classmethod
    def fit_from_stats(cls, n: float, mean_log: float, mean_sq_log: float) -> "LogNormal":
        """Closed-form MLE from the log-domain moments.  Variance uses the
        uncentered form ``E[y²] − E[y]²`` (clamped at zero) so the same
        statistics work both for one-shot and incremental fitting."""
        if n <= 0:
            return cls(mu=0.0, sigma=1.0)
        mu = float(mean_log)
        var = max(float(mean_sq_log) - mu * mu, 0.0)
        return cls(mu=mu, sigma=max(np.sqrt(var), 1e-6))

    def log_prob(self, values: np.ndarray) -> np.ndarray:
        x = np.asarray(values, dtype=np.float64)
        if np.any(x <= 0):
            raise SchemaError("log-normal values must be strictly positive")
        log_x = np.log(x)
        return (
            -log_x
            - np.log(self.sigma)
            - 0.5 * np.log(2.0 * np.pi)
            - 0.5 * ((log_x - self.mu) / self.sigma) ** 2
        )

    @staticmethod
    def column_stats(values: np.ndarray) -> np.ndarray:
        """``log x`` — the parameter-independent term."""
        x = np.asarray(values, dtype=np.float64)
        if np.any(x <= 0):
            raise SchemaError("log-normal values must be strictly positive")
        return np.log(x)

    def log_prob_from_stats(self, stats: np.ndarray) -> np.ndarray:
        log_x = stats
        return (
            -log_x
            - np.log(self.sigma)
            - 0.5 * np.log(2.0 * np.pi)
            - 0.5 * ((log_x - self.mu) / self.sigma) ** 2
        )

    def mean(self) -> float:
        return float(np.exp(self.mu + 0.5 * self.sigma**2))


def distribution_for_kind(kind) -> type:
    """The distribution class used to model a :class:`FeatureKind`."""
    from repro.core.features import FeatureKind

    mapping = {
        FeatureKind.CATEGORICAL: Categorical,
        FeatureKind.COUNT: Poisson,
        FeatureKind.POSITIVE: Gamma,
        FeatureKind.LOG_POSITIVE: LogNormal,
    }
    try:
        return mapping[kind]
    except KeyError:
        raise ConfigurationError(f"no distribution registered for kind {kind!r}") from None
