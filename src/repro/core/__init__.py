"""Core modeling layer: the paper's primary contribution.

Import order matters only in that :mod:`features` is the leaf the data
layer also reaches for; everything else layers on top of it.
"""

from repro.core.features import (
    ID_FEATURE,
    EncodedItems,
    FeatureKind,
    FeatureSet,
    FeatureSpec,
)
from repro.core.distributions import Categorical, Gamma, LogNormal, Poisson
from repro.core.dp import PathResult, best_monotone_path, path_log_likelihood
from repro.core.dp_batch import batch_assign, batch_viterbi
from repro.core.model import ScoreTableCache, SkillModel, SkillParameters, TrainingTrace
from repro.core.engine import ASSIGNMENT_STRATEGIES, AssignmentEngine
from repro.core.parallel import (
    ParallelConfig,
    PoolAssigner,
    RecoveringPool,
    WorkerPoolWarning,
    assign_paths,
    make_cell_fitter,
)
from repro.core.checkpoint import (
    CheckpointConfig,
    TrainingCheckpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.training import (
    Trainer,
    TrainerConfig,
    fit_skill_model,
    resume_fit,
    uniform_segment_levels,
)
from repro.core.shard import (
    SHARD_STAGES,
    ShardedFitResult,
    ShardedTrainer,
    ShardPool,
)
from repro.core.baselines import fit_id_baseline, fit_uniform_baseline, id_feature_set
from repro.core.difficulty import (
    PRIOR_EMPIRICAL,
    PRIOR_UNIFORM,
    assignment_difficulty,
    difficulty_array,
    generation_difficulty,
)
from repro.core.selection import SkillCountResult, held_out_log_likelihood, select_skill_count
from repro.core.soft_em import SoftEMConfig, fit_soft_em, forward_backward
from repro.core.forgetting import ForgettingConfig, best_decay_path, fit_forgetting_model
from repro.core.satisfaction import (
    SatisfactionConfig,
    fit_satisfaction_model,
    rating_satisfaction,
)
from repro.core.serialize import artifact_metadata, load_model, save_model
from repro.core.incremental import extend_model

__all__ = [
    "ID_FEATURE",
    "EncodedItems",
    "FeatureKind",
    "FeatureSet",
    "FeatureSpec",
    "Categorical",
    "Gamma",
    "LogNormal",
    "Poisson",
    "PathResult",
    "best_monotone_path",
    "path_log_likelihood",
    "batch_assign",
    "batch_viterbi",
    "ASSIGNMENT_STRATEGIES",
    "AssignmentEngine",
    "ScoreTableCache",
    "SkillModel",
    "SkillParameters",
    "TrainingTrace",
    "ParallelConfig",
    "PoolAssigner",
    "RecoveringPool",
    "WorkerPoolWarning",
    "assign_paths",
    "make_cell_fitter",
    "SHARD_STAGES",
    "ShardedFitResult",
    "ShardedTrainer",
    "ShardPool",
    "CheckpointConfig",
    "TrainingCheckpoint",
    "read_checkpoint",
    "write_checkpoint",
    "Trainer",
    "TrainerConfig",
    "fit_skill_model",
    "resume_fit",
    "uniform_segment_levels",
    "fit_id_baseline",
    "fit_uniform_baseline",
    "id_feature_set",
    "PRIOR_EMPIRICAL",
    "PRIOR_UNIFORM",
    "assignment_difficulty",
    "difficulty_array",
    "generation_difficulty",
    "SkillCountResult",
    "held_out_log_likelihood",
    "select_skill_count",
    "SoftEMConfig",
    "fit_soft_em",
    "forward_backward",
    "ForgettingConfig",
    "best_decay_path",
    "fit_forgetting_model",
    "SatisfactionConfig",
    "fit_satisfaction_model",
    "rating_satisfaction",
    "artifact_metadata",
    "load_model",
    "save_model",
    "extend_model",
]
