"""Data-driven selection of the number of skill levels (paper Section VI-B).

For domains with prior knowledge the paper fixes ``S`` (5 for Beer/Film
after McAuley & Leskovec and Yang et al.).  Elsewhere it sweeps candidate
values: hold out 10% of actions, train at each ``S``, score the held-out
actions using the skill level of the *chronologically closest training
action*, and keep the ``S`` with the highest held-out log-likelihood
(Figure 3).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureSet
from repro.core.model import SkillModel
from repro.core.training import Trainer, TrainerConfig
from repro.data.actions import ActionLog
from repro.data.items import ItemCatalog
from repro.data.splits import HeldOutAction, holdout_fraction
from repro.exceptions import ConfigurationError

__all__ = ["SkillCountResult", "held_out_log_likelihood", "select_skill_count"]


@dataclass(frozen=True)
class SkillCountResult:
    """Held-out log-likelihood per candidate ``S`` and the winner."""

    candidates: tuple[int, ...]
    log_likelihoods: tuple[float, ...]
    best: int

    def as_series(self) -> list[tuple[int, float]]:
        """(S, held-out log-likelihood) pairs — the Figure 3 curve."""
        return list(zip(self.candidates, self.log_likelihoods))


def held_out_log_likelihood(
    model: SkillModel, held: Sequence[HeldOutAction]
) -> float:
    """Score held-out actions at the nearest-training-action skill level.

    Held-out items missing from the model's catalog are impossible here by
    construction (the catalog covers the full domain); a missing *user*
    means the caller split incorrectly and raises.
    """
    table = model.item_score_table()
    total = 0.0
    for held_action in held:
        action = held_action.action
        level = model.skill_at(action.user, action.time)
        row = model.encoded.index_of[action.item]
        total += float(table[level - 1, row])
    return total


def select_skill_count(
    log: ActionLog,
    catalog: ItemCatalog,
    feature_set: FeatureSet,
    candidates: Sequence[int],
    *,
    test_fraction: float = 0.1,
    seed: int = 0,
    **trainer_kwargs,
) -> SkillCountResult:
    """Sweep candidate skill counts and pick the held-out-likelihood winner.

    ``trainer_kwargs`` (smoothing, init_min_actions, max_iterations, ...)
    are forwarded to every candidate's :class:`TrainerConfig` so the sweep
    compares like with like.
    """
    candidates = tuple(int(s) for s in candidates)
    if not candidates:
        raise ConfigurationError("need at least one candidate skill count")
    if any(s < 1 for s in candidates):
        raise ConfigurationError("candidate skill counts must be >= 1")
    rng = np.random.default_rng(seed)
    train_log, held = holdout_fraction(log, test_fraction, rng)

    log_likelihoods = []
    for num_levels in candidates:
        config = TrainerConfig(num_levels=num_levels, **trainer_kwargs)
        model = Trainer(config).fit(train_log, catalog, feature_set)
        log_likelihoods.append(held_out_log_likelihood(model, held))

    best = candidates[int(np.argmax(log_likelihoods))]
    return SkillCountResult(
        candidates=candidates,
        log_likelihoods=tuple(log_likelihoods),
        best=best,
    )
