"""Item-difficulty estimation (paper Section V).

Difficulty lives on the same scale as skill: a real number in ``[1, S]``.
Three estimators are provided, all driven by a fitted
:class:`~repro.core.model.SkillModel`:

- :func:`assignment_difficulty` (Section V-A, Equation 8): the mean
  assigned skill level of the users who selected the item.  Intuitive, but
  undefined for never-selected items and noisy for rare ones.
- :func:`generation_difficulty` with a **uniform** prior (Section V-B.1):
  the expected posterior skill level ``Σ_s s·P(s|i)`` with ``P(s) = 1/S``.
- :func:`generation_difficulty` with the **empirical** prior
  (Section V-B.2): same, with ``P(s)`` estimated from the training
  assignments — the paper's best-performing combination on sparse data.

Generation-based estimates only need item *features*, so they extend to
items with zero training actions (new products), which the paper motivates
as the practical reason to prefer them.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping

import numpy as np

from repro.core.features import EncodedItems
from repro.core.model import SkillModel
from repro.data.actions import ActionLog
from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "assignment_difficulty",
    "generation_difficulty",
    "difficulty_array",
    "PRIOR_UNIFORM",
    "PRIOR_EMPIRICAL",
]

PRIOR_UNIFORM = "uniform"
PRIOR_EMPIRICAL = "empirical"


def assignment_difficulty(
    model: SkillModel, log: ActionLog
) -> dict[Hashable, float]:
    """Equation 8: ``d_i`` = mean skill level over the actions selecting i.

    Only items that occur in ``log`` receive an estimate.  ``log`` must be
    the log the model was fitted on (or a subset of its users): each user's
    assigned-level array must align with their sequence.
    """
    encoded = model.encoded
    row_parts: list[np.ndarray] = []
    level_parts: list[np.ndarray] = []
    for seq in log:
        levels = model.skill_trajectory(seq.user)
        if len(levels) != len(seq):
            raise DataError(
                f"user {seq.user!r}: {len(seq)} actions but {len(levels)} assigned levels; "
                "pass the log the model was trained on"
            )
        row_parts.append(encoded.rows_for_sequence(seq))
        level_parts.append(np.asarray(levels, dtype=np.float64))
    rows = (
        np.concatenate(row_parts) if row_parts else np.empty(0, dtype=np.int64)
    )
    levels = (
        np.concatenate(level_parts) if level_parts else np.empty(0, dtype=np.float64)
    )
    # bincount accumulates weights sequentially in array order, so each
    # item's sum adds its occurrences in log order — the same partial sums
    # (to the last bit) as a per-action accumulation loop.
    sums = np.bincount(rows, weights=levels, minlength=encoded.num_items)
    counts = np.bincount(rows, minlength=encoded.num_items)
    item_ids = encoded.item_ids
    return {
        item_ids[i]: float(sums[i] / counts[i]) for i in np.flatnonzero(counts)
    }


def generation_difficulty(
    model: SkillModel,
    *,
    prior: str | np.ndarray = PRIOR_UNIFORM,
    encoded: EncodedItems | None = None,
) -> dict[Hashable, float]:
    """Equations 9-10: ``d_i = Σ_s s · P(s | i)``.

    ``prior`` selects ``P(s)``:

    - ``"uniform"`` — ``1/S`` (the query-likelihood simplification),
    - ``"empirical"`` — estimated from the model's training assignments,
    - an explicit probability vector of length ``S``.

    ``encoded`` defaults to the model's training catalog; pass a different
    :class:`~repro.core.features.EncodedItems` (same feature set) to score
    unseen items.
    """
    prior_vector = _resolve_prior(model, prior)
    posterior = model.posterior_skill_given_item(prior=prior_vector, encoded=encoded)
    levels = np.arange(1, model.num_levels + 1, dtype=np.float64)
    values = posterior @ levels
    item_ids = (encoded or model.encoded).item_ids
    return {item_id: float(value) for item_id, value in zip(item_ids, values)}


def _resolve_prior(model: SkillModel, prior) -> np.ndarray | None:
    if isinstance(prior, str):
        if prior == PRIOR_UNIFORM:
            return None  # SkillModel treats None as the uniform prior
        if prior == PRIOR_EMPIRICAL:
            return model.empirical_skill_prior()
        raise ConfigurationError(
            f"prior must be {PRIOR_UNIFORM!r}, {PRIOR_EMPIRICAL!r}, or a vector; got {prior!r}"
        )
    return np.asarray(prior, dtype=np.float64)


def difficulty_array(
    estimates: Mapping[Hashable, float], item_ids
) -> np.ndarray:
    """Estimates as an array aligned to ``item_ids``.

    Raises :class:`~repro.exceptions.DataError` for ids with no estimate
    (e.g. asking the assignment estimator about a never-selected item) —
    silently imputing would mask exactly the weakness the paper discusses.
    """
    item_ids = list(item_ids)
    pos_of = {item_id: pos for pos, item_id in enumerate(estimates)}
    indices = np.fromiter(
        (pos_of.get(item_id, -1) for item_id in item_ids),
        dtype=np.int64,
        count=len(item_ids),
    )
    missing = np.flatnonzero(indices < 0)
    if len(missing):
        raise DataError(
            f"no difficulty estimate for item {item_ids[int(missing[0])]!r}"
        )
    values = np.fromiter(
        estimates.values(), dtype=np.float64, count=len(estimates)
    )
    return values[indices]
