"""Sufficient-statistics engine for the update step (Equations 5-7).

The M-step refits every (level, feature) cell from the actions assigned to
that level.  Doing that from raw values rescans all actions ``S`` times per
iteration — even late in training, when ``train.unchanged_users`` telemetry
shows most paths stopped moving.  :class:`SkillStats` replaces the rescan
with *sufficient statistics* accumulated in one pass:

- one ``(S, num_items)`` integer matrix of per-level item counts (shared
  by every numeric feature — a level's weighted sums are dot products of
  its count row against cached per-feature value transforms), and
- one ``(S, C)`` integer matrix of per-level category counts for each
  categorical feature (``np.bincount`` on ``level * C + code``).

Because the matrices hold only **integers**, :meth:`add` / :meth:`subtract`
deltas are exact and order-independent: statistics updated incrementally
for the actions that changed level are bit-identical to statistics rebuilt
cold from the full assignment.  The trainer exploits this to refit only
*dirty* cells — the levels some action entered or left — so late-iteration
``cell_fit`` cost scales with churn, not corpus size.

:meth:`fit_cell` turns a cell's statistics into a fitted distribution via
the ``fit_from_stats`` classmethods (see :mod:`repro.core.distributions`),
and :meth:`repro.core.model.SkillParameters.fit_from_stats` assembles whole
parameter grids from here.
"""

from __future__ import annotations

import numpy as np

from repro.core.distributions import distribution_for_kind
from repro.core.features import EncodedItems, FeatureKind
from repro.exceptions import ConfigurationError

__all__ = ["SkillStats"]


class SkillStats:
    """Per-(level, feature) sufficient statistics of an assignment.

    Build one cold with :meth:`from_assignments`, then keep it in sync
    with :meth:`update` as actions move between levels.  Not thread-safe
    for mutation; concurrent :meth:`fit_cell` reads (the parallel cell
    fitter's threads) are fine.
    """

    def __init__(self, encoded: EncodedItems, num_levels: int):
        if num_levels <= 0:
            raise ConfigurationError("num_levels must be positive")
        self._encoded = encoded
        self._num_levels = int(num_levels)
        self._num_items = encoded.num_items
        feature_set = encoded.feature_set
        self._categorical = [
            spec.kind is FeatureKind.CATEGORICAL for spec in feature_set
        ]
        # Category counts per categorical feature; the item-count matrix is
        # only materialized when a numeric feature needs it (the ID-only
        # baseline is purely categorical and skips the S × |I| block).
        self._cat_counts: dict[int, np.ndarray] = {
            f: np.zeros((num_levels, len(encoded.vocabularies[f])), dtype=np.int64)
            for f, is_cat in enumerate(self._categorical)
            if is_cat
        }
        self._item_counts: np.ndarray | None = (
            None
            if all(self._categorical)
            else np.zeros((num_levels, self._num_items), dtype=np.int64)
        )
        self._level_counts = np.zeros(num_levels, dtype=np.int64)
        # Per-feature value transforms, shared by all levels: a level's
        # weighted sum over any transform is one dot product against its
        # float view of the item-count row.  Computed lazily per feature.
        self._transforms: dict[int, tuple[np.ndarray, ...]] = {}
        self._weights: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------- properties

    @property
    def encoded(self) -> EncodedItems:
        return self._encoded

    @property
    def feature_set(self):
        return self._encoded.feature_set

    @property
    def num_levels(self) -> int:
        return self._num_levels

    @property
    def level_counts(self) -> np.ndarray:
        """Actions currently assigned to each level (read-only view)."""
        return self._level_counts

    @property
    def item_counts(self) -> np.ndarray | None:
        """``(S, num_items)`` per-level item counts (``None`` when every
        feature is categorical)."""
        return self._item_counts

    def category_counts(self, feature: int) -> np.ndarray:
        """``(S, C)`` per-level category counts of a categorical feature."""
        try:
            return self._cat_counts[feature]
        except KeyError:
            raise ConfigurationError(
                f"feature index {feature} is not categorical"
            ) from None

    # ------------------------------------------------------------ cold build

    @classmethod
    def from_assignments(
        cls,
        encoded: EncodedItems,
        action_rows: np.ndarray,
        action_levels: np.ndarray,
        *,
        num_levels: int,
    ) -> "SkillStats":
        """Accumulate statistics for a full assignment in one pass."""
        action_rows, action_levels = _check_alignment(
            encoded, action_rows, action_levels, num_levels
        )
        stats = cls(encoded, num_levels)
        if len(action_rows):
            stats._level_counts += np.bincount(action_levels, minlength=num_levels)
            if stats._item_counts is not None:
                flat = np.bincount(
                    action_levels * stats._num_items + action_rows,
                    minlength=num_levels * stats._num_items,
                )
                stats._item_counts += flat.reshape(num_levels, stats._num_items)
            for f, counts in stats._cat_counts.items():
                codes = encoded.columns[f][action_rows]
                width = counts.shape[1]
                flat = np.bincount(
                    action_levels * width + codes, minlength=num_levels * width
                )
                counts += flat.reshape(num_levels, width)
        return stats

    # ------------------------------------------------------------ increments

    def add(self, action_rows: np.ndarray, action_levels: np.ndarray) -> np.ndarray:
        """Add actions to their levels; returns the touched level indices."""
        return self._apply(action_rows, action_levels, sign=1)

    def subtract(self, action_rows: np.ndarray, action_levels: np.ndarray) -> np.ndarray:
        """Remove actions from their levels; returns the touched level
        indices.  Subtracting actions that were never added raises."""
        return self._apply(action_rows, action_levels, sign=-1)

    def update(
        self,
        action_rows: np.ndarray,
        old_levels: np.ndarray,
        new_levels: np.ndarray,
    ) -> np.ndarray:
        """Move actions from ``old_levels`` to ``new_levels``; returns the
        union of touched (dirty) level indices, sorted."""
        removed = self.subtract(action_rows, old_levels)
        added = self.add(action_rows, new_levels)
        return np.union1d(removed, added)

    def merge(self, other: "SkillStats") -> "SkillStats":
        """Fold another partition's statistics into this one, in place.

        This is the map-reduce combiner (:mod:`repro.core.shard`): every
        matrix is integer counts, so merging shard deltas by addition is
        exact and order-independent — any user partition reduces to the
        statistics a cold single-pass build would produce.  Returns
        ``self`` so reduces can fold left.
        """
        if other._num_levels != self._num_levels:
            raise ConfigurationError(
                f"cannot merge statistics over {other._num_levels} levels "
                f"into {self._num_levels}"
            )
        if (
            other._num_items != self._num_items
            or other._categorical != self._categorical
        ):
            raise ConfigurationError(
                "cannot merge statistics built over different item encodings"
            )
        self._level_counts += other._level_counts
        if self._item_counts is not None:
            self._item_counts += other._item_counts
        for f, counts in self._cat_counts.items():
            counts += other._cat_counts[f]
        # Cached float views are stale after a bulk merge; rebuild lazily.
        self._weights.clear()
        return self

    def _apply(
        self, action_rows: np.ndarray, action_levels: np.ndarray, *, sign: int
    ) -> np.ndarray:
        action_rows, action_levels = _check_alignment(
            self._encoded, action_rows, action_levels, self._num_levels
        )
        if not len(action_rows):
            return np.empty(0, dtype=np.int64)
        delta = np.bincount(action_levels, minlength=self._num_levels)
        updates: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        item_index: np.ndarray | None = None
        if self._item_counts is not None:
            item_index, repeats = np.unique(
                action_levels * self._num_items + action_rows, return_counts=True
            )
            updates.append((self._item_counts.reshape(-1), item_index, repeats))
        for f, counts in self._cat_counts.items():
            codes = self._encoded.columns[f][action_rows]
            index, repeats = np.unique(
                action_levels * counts.shape[1] + codes, return_counts=True
            )
            updates.append((counts.reshape(-1), index, repeats))
        if sign < 0:
            # Validate everything before mutating anything so a bad delta
            # leaves the statistics untouched.
            if (self._level_counts - delta).min() < 0 or any(
                (flat[index] < repeats).any() for flat, index, repeats in updates
            ):
                raise ConfigurationError("cannot subtract actions that were never added")
            self._level_counts -= delta
            for flat, index, repeats in updates:
                flat[index] -= repeats
        else:
            self._level_counts += delta
            for flat, index, repeats in updates:
                flat[index] += repeats
        touched = np.unique(action_levels)
        if item_index is not None and self._weights:
            # Patch the cached float views of touched levels in place:
            # assigning the updated integer counts is exact, unlike a float
            # accumulation would be, and skips a full-row astype per level.
            levels_of = item_index // self._num_items
            rows_of = item_index - levels_of * self._num_items
            for level in touched:
                weights = self._weights.get(int(level))
                if weights is None:
                    continue
                rows_sel = rows_of[levels_of == level]
                weights[rows_sel] = self._item_counts[level, rows_sel]
        return touched

    # ------------------------------------------------------------- cell fits

    def fit_cell(self, level: int, feature: int, *, smoothing: float = 0.01):
        """Fit the (level, feature) cell from its current statistics."""
        if not 0 <= level < self._num_levels:
            raise ConfigurationError(f"level {level} outside [0, {self._num_levels})")
        spec = self.feature_set.specs[feature]
        dist_cls = distribution_for_kind(spec.kind)
        if spec.kind is FeatureKind.CATEGORICAL:
            counts = self._cat_counts[feature][level].astype(np.float64)
            return dist_cls.fit_from_stats(counts, smoothing=smoothing)
        n = int(self._level_counts[level])
        if n == 0:
            # Matches the value-based estimators' empty-sample fallbacks.
            if spec.kind is FeatureKind.COUNT:
                return dist_cls.fit_from_stats(0.0, 0.0)
            return dist_cls.fit_from_stats(0.0, 0.0, 0.0)
        weights = self._level_weights(level)
        transforms = self._feature_transforms(feature, spec.kind)
        if spec.kind is FeatureKind.COUNT:
            return dist_cls.fit_from_stats(float(n), float(np.dot(weights, transforms[0])))
        if spec.kind is FeatureKind.POSITIVE:
            mean = float(np.dot(weights, transforms[0])) / n
            mean_log = float(np.dot(weights, transforms[1])) / n
            return dist_cls.fit_from_stats(float(n), mean, mean_log)
        mean_log = float(np.dot(weights, transforms[0])) / n
        mean_sq_log = float(np.dot(weights, transforms[1])) / n
        return dist_cls.fit_from_stats(float(n), mean_log, mean_sq_log)

    def _level_weights(self, level: int) -> np.ndarray:
        # Benign race under the threaded cell fitter: two threads may both
        # compute the (identical) float view; last write wins.
        weights = self._weights.get(level)
        if weights is None:
            assert self._item_counts is not None
            weights = self._item_counts[level].astype(np.float64)
            self._weights[level] = weights
        return weights

    def _feature_transforms(self, feature: int, kind: FeatureKind) -> tuple[np.ndarray, ...]:
        transforms = self._transforms.get(feature)
        if transforms is None:
            column = self._encoded.columns[feature].astype(np.float64)
            if kind is FeatureKind.COUNT:
                transforms = (column,)
            elif kind is FeatureKind.POSITIVE:
                transforms = (column, np.log(column))
            else:  # LOG_POSITIVE
                log_column = np.log(column)
                transforms = (log_column, log_column * log_column)
            self._transforms[feature] = transforms
        return transforms


def _check_alignment(
    encoded: EncodedItems,
    action_rows: np.ndarray,
    action_levels: np.ndarray,
    num_levels: int,
) -> tuple[np.ndarray, np.ndarray]:
    action_rows = np.asarray(action_rows, dtype=np.int64)
    action_levels = np.asarray(action_levels, dtype=np.int64)
    if action_rows.shape != action_levels.shape:
        raise ConfigurationError("action_rows and action_levels must align")
    if len(action_levels) and (
        action_levels.min() < 0 or action_levels.max() >= num_levels
    ):
        raise ConfigurationError("assigned level outside [0, num_levels)")
    if len(action_rows) and (
        action_rows.min() < 0 or action_rows.max() >= encoded.num_items
    ):
        raise ConfigurationError("action row outside [0, num_items)")
    return action_rows, action_levels
