"""Skill-decay extension: users can forget (paper Section VII).

The paper's discussion names relaxing monotonicity as the first limitation:
"it is possible that users lose some skills if they have not taken actions
for a while", pointing at Ebbinghaus's forgetting curve and the gap between
consecutive actions as the key signal.  This module implements that
extension:

- transitions between consecutive actions are *stay*, *up one*, or — new —
  *down one*, where the down transition carries a time-gap-dependent
  log-weight ``log(1 − exp(−gap / half_life))`` (Ebbinghaus-style: a
  vanishing gap makes forgetting impossible, a long idle gap makes it
  likely);
- the assignment step becomes a banded Viterbi over this richer lattice
  (:func:`best_decay_path`);
- :func:`fit_forgetting_model` runs the same coordinate ascent as the base
  trainer with the decay-aware DP, reusing the parameter grid, update
  step, and :class:`~repro.core.model.SkillModel` container (whose
  trajectories are then no longer guaranteed monotone — by design).

The base monotone model is the special case ``half_life = inf``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dp import PathResult
from repro.core.features import FeatureSet
from repro.core.model import ScoreTableCache, SkillModel, SkillParameters, TrainingTrace
from repro.core.stats import SkillStats
from repro.core.training import uniform_segment_levels
from repro.data.actions import ActionLog
from repro.data.items import ItemCatalog
from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "ForgettingConfig",
    "best_decay_path",
    "decay_reassign",
    "fit_forgetting_model",
]


@dataclass(frozen=True)
class ForgettingConfig:
    """Hyper-parameters of the decay-aware trainer.

    ``half_life`` is the Ebbinghaus time constant: after an idle gap of
    ``half_life`` time units the forgetting weight is ``1 − e^{-1} ≈ 0.63``
    of its asymptote.  ``down_floor`` caps how unlikely a drop can get so
    log-weights stay finite for tiny gaps.
    """

    num_levels: int
    half_life: float = 10.0
    down_floor: float = 1e-6
    smoothing: float = 0.01
    init_min_actions: int = 50
    max_iterations: int = 50
    tol: float = 1e-6

    def __post_init__(self) -> None:
        if self.num_levels < 1:
            raise ConfigurationError("num_levels must be >= 1")
        if self.half_life <= 0:
            raise ConfigurationError("half_life must be positive")
        if not 0 < self.down_floor < 1:
            raise ConfigurationError("down_floor must be in (0, 1)")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")


def forgetting_log_weight(
    gaps: np.ndarray, half_life: float, floor: float = 1e-6
) -> np.ndarray:
    """Log-weight of a one-level drop across each time gap.

    Ebbinghaus-shaped: ``log(max(floor, 1 − exp(−gap / half_life)))``.
    """
    gaps = np.asarray(gaps, dtype=np.float64)
    if np.any(gaps < 0):
        raise ConfigurationError("time gaps must be non-negative")
    probability = np.maximum(floor, 1.0 - np.exp(-gaps / half_life))
    return np.log(probability)


def best_decay_path(
    scores: np.ndarray,
    gaps: np.ndarray,
    *,
    half_life: float,
    down_floor: float = 1e-6,
) -> PathResult:
    """Viterbi over the stay/up/down lattice with gap-dependent drops.

    Parameters
    ----------
    scores:
        ``(n_actions, n_levels)`` log-likelihoods, as in the monotone DP.
    gaps:
        ``(n_actions - 1,)`` non-negative time gaps between consecutive
        actions (``gaps[k] = t_{k+1} − t_k``).
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ConfigurationError("scores must be 2-D")
    n_actions, n_levels = scores.shape
    if n_actions == 0:
        return PathResult(levels=np.empty(0, dtype=np.int64), log_likelihood=0.0)
    if n_levels == 0:
        raise ConfigurationError("need at least one skill level")
    gaps = np.asarray(gaps, dtype=np.float64)
    if gaps.shape != (max(0, n_actions - 1),):
        raise ConfigurationError("gaps must have length n_actions - 1")
    down_weights = forgetting_log_weight(gaps, half_life, down_floor)

    best = scores[0].copy()
    # move[n, s] ∈ {-1, 0, +1}: the transition that entered level s at n.
    move = np.zeros((n_actions, n_levels), dtype=np.int64)
    for n in range(1, n_actions):
        stay = best
        up = np.full(n_levels, -np.inf)
        up[1:] = best[:-1]
        down = np.full(n_levels, -np.inf)
        down[:-1] = best[1:] + down_weights[n - 1]
        # Tie order (up > stay > down): prefer the predecessor at the
        # lowest prior level, conservative skill attribution.
        stacked = np.stack([up, stay, down])
        choice = np.argmax(stacked, axis=0)  # first max wins → up preferred
        move[n] = 1 - choice  # 0→+1, 1→0, 2→-1
        best = stacked[choice, np.arange(n_levels)] + scores[n]

    levels = np.empty(n_actions, dtype=np.int64)
    levels[-1] = int(np.argmax(best))
    for n in range(n_actions - 1, 0, -1):
        levels[n - 1] = levels[n] - move[n, levels[n]]
    return PathResult(levels=levels, log_likelihood=float(best[levels[-1]]))


def decay_reassign(
    model: SkillModel,
    log: ActionLog,
    users: set | frozenset,
    *,
    half_life: float,
    down_floor: float = 1e-6,
    table_cache: ScoreTableCache | None = None,
) -> SkillModel:
    """Re-assign the given users under the decay lattice with ``Θ`` frozen.

    The serving fold-in worker's scheduled decay pass: users who have been
    idle get their skill paths re-solved with :func:`best_decay_path`, so a
    long gap can pull the estimate *down* where the monotone DP could not.
    A pure function of ``(log, Θ, users, half_life, down_floor)`` — the
    result never depends on when or how often the pass ran before, which is
    what lets a crash-replayed fold-in loop converge bit-identically to an
    uninterrupted one.

    Users are processed in ``log`` order for the same determinism reason,
    and users absent from the log are ignored.  Returns a new
    :class:`~repro.core.model.SkillModel` sharing parameters, trace, and
    telemetry with ``model`` (or ``model`` itself when no user matched).
    """
    if half_life <= 0:
        raise ConfigurationError("half_life must be positive")
    ordered = [user for user in log.users if user in users]
    if not ordered:
        return model
    if table_cache is None:
        table_cache = ScoreTableCache()
    table = model.parameters.item_score_table(model.encoded, cache=table_cache)
    assignments = dict(model.assignments)
    times = dict(model._assignment_times)
    for user in ordered:
        seq = log.sequence(user)
        seq_times = np.asarray(seq.times, dtype=np.float64)
        rows = model.encoded.rows_for_sequence(seq)
        result = best_decay_path(
            table[:, rows].T,
            np.diff(seq_times),
            half_life=half_life,
            down_floor=down_floor,
        )
        assignments[user] = (result.levels + 1).astype(np.int64)
        times[user] = seq_times
    return SkillModel(
        parameters=model.parameters,
        encoded=model.encoded,
        assignments=assignments,
        trace=model.trace,
        _assignment_times=times,
        telemetry=model.telemetry,
    )


def fit_forgetting_model(
    log: ActionLog,
    catalog: ItemCatalog,
    feature_set: FeatureSet,
    config: ForgettingConfig,
) -> SkillModel:
    """Coordinate-ascent training with the decay-aware assignment step."""
    if log.num_actions == 0:
        raise DataError("cannot train on an empty action log")
    encoded = feature_set.encode(catalog)
    users = list(log.users)
    user_rows = [encoded.rows_for_sequence(log.sequence(u)) for u in users]
    user_gaps = [
        np.diff(np.asarray(log.sequence(u).times, dtype=np.float64)) for u in users
    ]
    all_rows = np.concatenate(user_rows)

    init_rows, init_levels = [], []
    for rows in user_rows:
        if len(rows) >= config.init_min_actions:
            init_rows.append(rows)
            init_levels.append(uniform_segment_levels(len(rows), config.num_levels))
    if not init_rows:
        for rows in user_rows:
            init_rows.append(rows)
            init_levels.append(uniform_segment_levels(len(rows), config.num_levels))
    parameters = SkillParameters.fit_from_assignments(
        encoded,
        np.concatenate(init_rows),
        np.concatenate(init_levels),
        num_levels=config.num_levels,
        smoothing=config.smoothing,
    )

    log_likelihoods: list[float] = []
    converged = False
    level_arrays: list[np.ndarray] = []
    # The decay lattice has its own kernel (best_decay_path), but the
    # score-table build is the same — make it incremental across
    # iterations like the base trainer's, and keep the update step's
    # sufficient statistics across iterations the same way.
    table_cache = ScoreTableCache()
    stats: SkillStats | None = None
    prev_flat: np.ndarray | None = None
    for _ in range(config.max_iterations):
        table = parameters.item_score_table(encoded, cache=table_cache)
        total_ll = 0.0
        level_arrays = []
        for rows, gaps in zip(user_rows, user_gaps):
            result = best_decay_path(
                table[:, rows].T,
                gaps,
                half_life=config.half_life,
                down_floor=config.down_floor,
            )
            level_arrays.append(result.levels)
            total_ll += result.log_likelihood
        if log_likelihoods:
            previous = log_likelihoods[-1]
            log_likelihoods.append(total_ll)
            if abs(total_ll - previous) <= config.tol * max(1.0, abs(previous)):
                converged = True
                break
        else:
            log_likelihoods.append(total_ll)
        flat_levels = np.concatenate(level_arrays)
        if stats is None:
            stats = SkillStats.from_assignments(
                encoded, all_rows, flat_levels, num_levels=config.num_levels
            )
            parameters = SkillParameters.fit_from_stats(
                stats, smoothing=config.smoothing
            )
        else:
            moved = np.flatnonzero(flat_levels != prev_flat)
            if len(moved):
                dirty = stats.update(
                    all_rows[moved], prev_flat[moved], flat_levels[moved]
                )
                parameters = SkillParameters.fit_from_stats(
                    stats,
                    smoothing=config.smoothing,
                    previous=parameters,
                    dirty_levels=dirty,
                )
        prev_flat = flat_levels

    assignments = {
        user: (levels + 1).astype(np.int64)
        for user, levels in zip(users, level_arrays)
    }
    times = {user: np.asarray(log.sequence(user).times, dtype=np.float64) for user in users}
    trace = TrainingTrace(
        log_likelihoods=tuple(log_likelihoods),
        converged=converged,
        num_iterations=len(log_likelihoods),
    )
    return SkillModel(
        parameters=parameters,
        encoded=encoded,
        assignments=assignments,
        trace=trace,
        _assignment_times=times,
    )
