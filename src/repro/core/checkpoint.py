"""Crash-safe training checkpoints (fault-tolerant training).

A checkpoint captures the exact state of the hard-assignment training loop
at an iteration boundary: the fitted parameter grid, the log-likelihood
history, the trainer configuration, and a fingerprint of the training data.
Resuming from it (:func:`repro.core.training.resume_fit`) provably
continues to the same final model as an uninterrupted run, because the
loop's only carried state *is* (parameters, log-likelihood history) and
every number round-trips exactly: parameters are stored as JSON floats,
which Python serializes with shortest-round-trip ``repr``.

The file is a single JSON document written atomically (``.tmp`` sibling +
``fsync`` + ``os.replace``) so a crash mid-write can never leave a torn
checkpoint, and the payload carries a SHA-256 checksum so torn *copies*
are detected at read time as :class:`~repro.exceptions.CheckpointError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.core.model import SkillParameters
from repro.core.serialize import _cell_payload, _cell_restore
from repro.exceptions import CheckpointError, ConfigurationError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

_log = get_logger("core.checkpoint")

__all__ = [
    "CheckpointConfig",
    "TrainingCheckpoint",
    "data_fingerprint",
    "write_checkpoint",
    "read_checkpoint",
]

_FORMAT_VERSION = 1
_KIND = "repro-training-checkpoint"


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often :meth:`Trainer.fit` writes checkpoints.

    ``every`` counts completed training iterations; ``every=1`` checkpoints
    after each one.  The file at ``path`` is overwritten atomically each
    time, so it always holds the latest complete iteration.
    """

    path: str | Path
    every: int = 1

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ConfigurationError("checkpoint every must be >= 1")


@dataclass(frozen=True)
class TrainingCheckpoint:
    """A parsed, checksum-verified checkpoint."""

    iteration: int
    log_likelihoods: tuple[float, ...]
    trainer_config: dict[str, Any]
    fingerprint: dict[str, Any]
    parameters: SkillParameters
    every: int


def data_fingerprint(log, feature_set: FeatureSet, num_items: int) -> dict[str, Any]:
    """A cheap identity check binding a checkpoint to its training data.

    Resume refuses to continue when the data this is computed from does not
    match the data the checkpoint was written for — continuing on different
    data would silently produce a model belonging to neither run.
    """
    return {
        "num_users": log.num_users,
        "num_actions": log.num_actions,
        "num_items": int(num_items),
        "features": list(feature_set.names),
    }


def write_checkpoint(
    path: str | Path,
    *,
    parameters: SkillParameters,
    log_likelihoods: list[float],
    trainer_config: dict[str, Any],
    fingerprint: dict[str, Any],
    every: int = 1,
) -> Path:
    """Atomically persist the training state after a completed iteration.

    Every write is logged at INFO (iteration, path, bytes, duration) and
    counted in the ``checkpoint.writes`` / ``checkpoint.bytes_written``
    metrics, so snapshot cadence is observable without strace.
    """
    registry = get_registry()
    start = registry.clock()
    path = Path(path)
    feature_set = parameters.feature_set
    cells: list[list[str]] = []
    cell_params: dict[str, list[float]] = {}
    for s in range(parameters.num_levels):
        row = []
        for f in range(len(feature_set)):
            tag, values = _cell_payload(parameters.cells[s][f])
            row.append(tag)
            cell_params[f"cell_{s}_{f}"] = np.asarray(values, dtype=np.float64).tolist()
        cells.append(row)
    payload = {
        "kind": _KIND,
        "format_version": _FORMAT_VERSION,
        "iteration": len(log_likelihoods),
        "log_likelihoods": [float(v) for v in log_likelihoods],
        "trainer_config": trainer_config,
        "fingerprint": fingerprint,
        "every": int(every),
        "features": [
            {"name": spec.name, "kind": spec.kind.value} for spec in feature_set.specs
        ],
        "num_levels": parameters.num_levels,
        "cells": cells,
        "cell_params": cell_params,
    }
    document = {"checksum": _payload_checksum(payload), "payload": payload}
    data = json.dumps(document, ensure_ascii=False).encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    elapsed = registry.clock() - start
    registry.counter("checkpoint.writes").inc()
    registry.counter("checkpoint.bytes_written").inc(len(data))
    registry.histogram("checkpoint.write_seconds").observe(elapsed)
    _log.info(
        "checkpoint written",
        extra={
            "obs": {
                "iteration": len(log_likelihoods),
                "path": str(path),
                "bytes": len(data),
                "seconds": round(elapsed, 6),
            }
        },
    )
    return path


def read_checkpoint(path: str | Path) -> TrainingCheckpoint:
    """Load and verify a checkpoint written by :func:`write_checkpoint`."""
    registry = get_registry()
    start = registry.clock()
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint file at {path}")
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"{path}: malformed checkpoint — truncated or corrupted ({exc})"
        ) from exc
    if not isinstance(document, dict) or "payload" not in document:
        raise CheckpointError(f"{path}: not a training checkpoint file")
    payload = document["payload"]
    if payload.get("kind") != _KIND:
        raise CheckpointError(f"{path}: not a training checkpoint file")
    if payload.get("format_version") != _FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format version "
            f"{payload.get('format_version')!r} (expected {_FORMAT_VERSION})"
        )
    if document.get("checksum") != _payload_checksum(payload):
        raise CheckpointError(
            f"{path}: checksum mismatch — checkpoint is corrupted or was edited"
        )

    feature_set = FeatureSet(
        FeatureSpec(entry["name"], FeatureKind(entry["kind"]))
        for entry in payload["features"]
    )
    num_levels = int(payload["num_levels"])
    try:
        cells = tuple(
            tuple(
                _cell_restore(
                    payload["cells"][s][f],
                    np.asarray(payload["cell_params"][f"cell_{s}_{f}"], dtype=np.float64),
                )
                for f in range(len(feature_set))
            )
            for s in range(num_levels)
        )
    except KeyError as exc:
        raise CheckpointError(
            f"{path}: checkpoint is missing parameter cell {exc.args[0]!r}"
        ) from None
    parameters = SkillParameters(
        feature_set=feature_set, num_levels=num_levels, cells=cells
    )
    checkpoint = TrainingCheckpoint(
        iteration=int(payload["iteration"]),
        log_likelihoods=tuple(float(v) for v in payload["log_likelihoods"]),
        trainer_config=dict(payload["trainer_config"]),
        fingerprint=dict(payload["fingerprint"]),
        parameters=parameters,
        every=int(payload.get("every", 1)),
    )
    elapsed = registry.clock() - start
    registry.counter("checkpoint.reads").inc()
    registry.histogram("checkpoint.read_seconds").observe(elapsed)
    _log.info(
        "checkpoint read",
        extra={
            "obs": {
                "iteration": checkpoint.iteration,
                "path": str(path),
                "seconds": round(elapsed, 6),
            }
        },
    )
    return checkpoint


def _payload_checksum(payload: dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
