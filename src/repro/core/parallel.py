"""Parallel execution of the training steps (paper Section IV-C).

The paper exploits three independence structures:

1. **Users** — the assignment DP for one user's sequence never looks at
   another user's, so sequences can be assigned in parallel.
2. **Skill levels** — ``θ_f(s)`` and ``θ_f(s')`` are independent for
   ``s ≠ s'``, so the update step parallelizes over levels.
3. **Features** — unique to the multi-faceted model: cells for different
   features are also independent, adding a second update-step axis.

:class:`ParallelConfig` switches each axis on or off, mirroring the rows of
Table XIII.  The assignment step uses a *process* pool; the per-iteration
score table is published to workers once per step through
``multiprocessing.shared_memory`` (chunk tasks then carry only row
indices), and each worker runs the batched kernel from
:mod:`repro.core.dp_batch` over its chunk.  The update step uses a
*thread* pool (its work is NumPy reductions that release the GIL).
"""

from __future__ import annotations

import multiprocessing
import os
import secrets
import time
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeoutError
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.dp import PathResult, best_monotone_path
from repro.core.dp_batch import batch_assign_item_major
from repro.exceptions import ConfigurationError, WorkerPoolError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

_log = get_logger("core.parallel")

__all__ = [
    "ParallelConfig",
    "PoolAssigner",
    "RecoveringPool",
    "WorkerPoolWarning",
    "assign_paths",
    "attach_segment",
    "create_segment",
    "make_cell_fitter",
    "publish_item_major",
]

#: Prefix of every shared-memory segment this module creates; the
#: fault-injection tests scan for it to prove nothing leaks.
SHM_PREFIX = "repro_scores_"


class WorkerPoolWarning(RuntimeWarning):
    """Emitted when the assignment pool fails and the trainer recovers.

    Carried through the standard :mod:`warnings` machinery so callers can
    observe, log, or escalate recovery events without the training run
    being interrupted.
    """


@dataclass(frozen=True)
class ParallelConfig:
    """Which training axes run in parallel, and with how many workers.

    The default is fully serial, matching the first row of Table XIII.
    """

    users: bool = False
    skills: bool = False
    features: bool = False
    workers: int = 1
    #: How many times a broken assignment pool is rebuilt before giving up.
    max_pool_restarts: int = 2
    #: Base delay before the first rebuild; doubles on every further retry.
    restart_backoff: float = 0.05
    #: Optional wall-clock budget (seconds) for one whole assignment step:
    #: a single deadline shared by every chunk of the batch, so a wedged
    #: pool can never stall for ``num_chunks × budget``.  An overrun counts
    #: as a pool failure and triggers the recovery ladder.
    chunk_timeout: float | None = None
    #: After the retry budget, fall back to serial assignment (True) or
    #: raise :class:`~repro.exceptions.WorkerPoolError` (False).
    fallback_serial: bool = True
    #: Publish the per-iteration score table to workers through
    #: ``multiprocessing.shared_memory`` (chunks then pickle only row
    #: indices) instead of copying it into every chunk task.
    shared_memory: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.max_pool_restarts < 0:
            raise ConfigurationError("max_pool_restarts must be >= 0")
        if self.restart_backoff < 0:
            raise ConfigurationError("restart_backoff must be >= 0")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ConfigurationError("chunk_timeout must be positive when set")

    @classmethod
    def all_axes(cls, workers: int | None = None) -> "ParallelConfig":
        """Every axis enabled (last row of Table XIII)."""
        if workers is None:
            workers = max(1, multiprocessing.cpu_count() or 2)
        return cls(users=True, skills=True, features=True, workers=workers)

    @property
    def any_update_axis(self) -> bool:
        return self.skills or self.features


# --------------------------------------------------------------------------
# Assignment step: batched DP over a shared (S, |I|) score table.
#
# The training loop calls the assigner once per iteration with a fresh
# score table, so the pool is created once per fit (PoolAssigner).  The
# table changes between iterations; by default it is published once per
# iteration to a shared-memory segment that every chunk task references
# by name, so tasks pickle only row indices (zero-copy).  With
# ``shared_memory=False`` the table travels inside each task instead.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _SharedScoreTable:
    """Descriptor of a score table published via shared memory.

    The segment holds the table in item-major ``(num_items, S)`` layout so
    a worker's per-user gather is a single fancy-index (which copies, so
    no view into the segment survives the chunk).
    """

    name: str
    shape: tuple[int, int]
    dtype: str


def create_segment(nbytes: int, *, tag: str = "") -> shared_memory.SharedMemory:
    """A fresh shared-memory segment under this module's leak-scan prefix.

    Every segment the project publishes — per-iteration score tables, the
    sharded trainer's code tables, and the serving layer's whole-model
    generations (:func:`repro.core.serialize.publish_model_shm`) — goes
    through here so the fault-injection suites can assert nothing leaks by
    scanning ``/dev/shm`` for :data:`SHM_PREFIX`.  The caller owns the
    segment: it must ``close()`` *and* ``unlink()`` it.
    """
    name = f"{SHM_PREFIX}{tag}{os.getpid()}_{secrets.token_hex(4)}"
    return shared_memory.SharedMemory(name=name, create=True, size=int(nbytes))


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment another process published (never unlinks it).

    Attaching registers the segment with the resource tracker, which
    would try to unlink it at interpreter exit even though the publisher
    owns unlinking.  Under ``spawn`` each worker has its *own* tracker,
    so the attach-only registration must be removed here.  Under
    ``fork`` the worker shares the parent's tracker process and its
    cache is a set — the attach re-add is a no-op and unregistering
    here would erase the parent's own registration instead (making the
    parent's later unlink crash the tracker), so leave it alone.
    """
    segment = shared_memory.SharedMemory(name=name)
    if multiprocessing.get_start_method() != "fork":
        try:  # pragma: no cover - tracker internals vary across versions
            resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
    return segment


def _open_shared_table(ref: _SharedScoreTable):
    """Attach to a published table; returns ``(array_view, segment)``."""
    segment = attach_segment(ref.name)
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    return view, segment


def publish_item_major(
    item_major: np.ndarray,
) -> tuple[shared_memory.SharedMemory | None, _SharedScoreTable | None]:
    """Copy an item-major float64 table into a fresh shared-memory segment.

    Returns ``(segment, descriptor)``; the caller owns the segment and must
    close **and** unlink it.  Returns ``(None, None)`` for empty tables or
    when the platform refuses shared memory — callers then ship the array
    inside each task instead.  Shared by :class:`PoolAssigner` (which
    publishes ``(|I|, S)`` catalog-row tables) and the sharded trainer
    (which publishes ``(V, S)`` store-code tables).
    """
    item_major = np.ascontiguousarray(np.asarray(item_major, dtype=np.float64))
    if item_major.nbytes == 0:
        return None, None
    try:
        shm = create_segment(item_major.nbytes)
    except OSError as exc:  # pragma: no cover - platform-dependent
        _log.warning(
            "shared-memory publish failed; shipping table per task",
            extra={"obs": {"error": repr(exc)}},
        )
        return None, None
    view = np.ndarray(item_major.shape, dtype=item_major.dtype, buffer=shm.buf)
    view[:] = item_major
    del view  # no exported buffer views may outlive close()
    return shm, _SharedScoreTable(
        name=shm.name,
        shape=(int(item_major.shape[0]), int(item_major.shape[1])),
        dtype=item_major.dtype.str,
    )


def _assign_chunk(
    task: tuple[np.ndarray | _SharedScoreTable, list[np.ndarray], int, np.ndarray | None],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Worker body: batched DP over every sequence in the chunk.

    Results are marshalled as three flat arrays (concatenated levels,
    per-user lengths, per-user log-likelihoods) — pickling two small
    arrays per chunk is far cheaper than one object pair per user.
    """
    table_ref, chunk, max_step, penalties = task
    if isinstance(table_ref, _SharedScoreTable):
        view, segment = _open_shared_table(table_ref)
        try:
            results = batch_assign_item_major(
                view, chunk, max_step=max_step, step_log_penalties=penalties
            )
        finally:
            del view  # the buffer must have no exported views before close
            segment.close()
    else:
        results = batch_assign_item_major(
            np.ascontiguousarray(np.asarray(table_ref, dtype=np.float64).T),
            chunk,
            max_step=max_step,
            step_log_penalties=penalties,
        )
    lengths = np.fromiter(
        (len(r.levels) for r in results), dtype=np.int64, count=len(results)
    )
    lls = np.fromiter(
        (r.log_likelihood for r in results), dtype=np.float64, count=len(results)
    )
    levels = (
        np.concatenate([r.levels for r in results])
        if results
        else np.empty(0, dtype=np.int64)
    )
    return levels, lengths, lls


class RecoveringPool:
    """A reusable, self-healing process pool with a serial escape hatch.

    Worker death (OOM kill, preemption, segfault) and chunk timeouts are
    absorbed rather than surfaced as raw executor exceptions: the pool is
    rebuilt up to ``config.max_pool_restarts`` times with exponential
    backoff, and past that budget the runner degrades permanently to the
    caller's serial path (or raises
    :class:`~repro.exceptions.WorkerPoolError` when
    ``config.fallback_serial`` is off).  Every recovery step emits a
    :class:`WorkerPoolWarning`.  Tasks must be pure functions of their
    inputs so re-running a partially completed batch is always safe.

    Two pools ride this ladder: :class:`PoolAssigner` (per-user assignment
    chunks) and :class:`repro.core.shard.ShardPool` (per-shard E-step
    tasks).  Subclasses set :attr:`pool_kind`/:attr:`serial_noun` for the
    warning text and implement :meth:`_resolve_worker` — resolved at call
    time so fault-injection harnesses can swap the worker body in.
    """

    #: Names this pool in warnings, logs, and errors.
    pool_kind = "worker pool"
    #: What the serial fallback is called in the degrade warning.
    serial_noun = "execution"

    def __init__(self, config: ParallelConfig | None = None):
        self.config = config
        self._pool: ProcessPoolExecutor | None = None
        self._serial_fallback = False
        #: Recovery-event counts for this pool's lifetime; the trainer
        #: folds them into :class:`~repro.obs.telemetry.TrainingTelemetry`.
        self.event_counts: dict[str, int] = {
            "rebuilds": 0,
            "degraded": 0,
            "chunk_timeouts": 0,
        }

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _discard_pool(self) -> None:
        """Drop a broken/hung pool without waiting on its workers."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _resolve_worker(self) -> Callable:
        raise NotImplementedError

    def _run_chunks(self, tasks: list) -> list:
        """Submit every task and collect results under a single deadline.

        ``config.chunk_timeout`` budgets the *whole batch*: each future
        gets only what remains of the shared deadline, so a wedged pool
        stalls for at most one budget rather than ``num_tasks ×`` it.
        """
        assert self.config is not None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
        worker = self._resolve_worker()
        futures = [self._pool.submit(worker, task) for task in tasks]
        timeout = self.config.chunk_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        results = []
        for future in futures:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            results.append(future.result(timeout=remaining))
        return results

    def _run_with_recovery(self, tasks: list, registry) -> tuple[str, list | None]:
        """Run the batch through the rebuild→degrade ladder.

        Returns ``("pooled", results)`` on success or ``("serial", None)``
        after degrading (the caller then runs its serial path — the runner
        cannot, because serial work may shortcut the task encoding).
        Raises :class:`~repro.exceptions.WorkerPoolError` instead of
        degrading when ``config.fallback_serial`` is off.
        """
        config = self.config
        assert config is not None
        attempts = 0
        while True:
            try:
                return "pooled", self._run_chunks(tasks)
            except (BrokenExecutor, _FuturesTimeoutError, TimeoutError, OSError) as exc:
                self._discard_pool()
                if isinstance(exc, (_FuturesTimeoutError, TimeoutError)):
                    self.event_counts["chunk_timeouts"] += 1
                    registry.counter("pool.chunk_timeouts").inc()
                if attempts >= config.max_pool_restarts:
                    if config.fallback_serial:
                        self._serial_fallback = True
                        self.event_counts["degraded"] += 1
                        registry.counter("pool.degraded").inc()
                        _log.error(
                            f"{self.pool_kind} degraded to serial",
                            extra={
                                "obs": {
                                    "failures": attempts + 1,
                                    "last_error": repr(exc),
                                }
                            },
                        )
                        warnings.warn(
                            WorkerPoolWarning(
                                f"{self.pool_kind} failed {attempts + 1} time(s), "
                                f"last error {exc!r}; degrading to serial "
                                f"{self.serial_noun} for the rest of this run"
                            ),
                            stacklevel=4,
                        )
                        return "serial", None
                    raise WorkerPoolError(
                        f"{self.pool_kind} failed after {attempts + 1} attempt(s) "
                        f"and serial fallback is disabled: {exc!r}"
                    ) from exc
                attempts += 1
                delay = config.restart_backoff * (2 ** (attempts - 1))
                self.event_counts["rebuilds"] += 1
                registry.counter("pool.rebuilds").inc()
                _log.warning(
                    f"{self.pool_kind} rebuild",
                    extra={
                        "obs": {
                            "attempt": attempts,
                            "max_restarts": config.max_pool_restarts,
                            "backoff_s": round(delay, 3),
                            "error": repr(exc),
                        }
                    },
                )
                warnings.warn(
                    WorkerPoolWarning(
                        f"{self.pool_kind} failure ({exc!r}); rebuilding pool "
                        f"(attempt {attempts}/{config.max_pool_restarts}, "
                        f"backoff {delay:.2f}s)"
                    ),
                    stacklevel=4,
                )
                if delay > 0:
                    time.sleep(delay)


class PoolAssigner(RecoveringPool):
    """A reusable, self-healing process pool for the assignment step.

    Creating a process pool costs tens of milliseconds; the trainer runs
    the assignment step every iteration, so the pool is created lazily on
    first use and reused until :meth:`close`.  Use as a context manager::

        with PoolAssigner(config) as assigner:
            for _ in range(iterations):
                paths = assigner.assign(table, user_rows)

    Failure handling (rebuild with backoff → degrade to serial assignment)
    is inherited from :class:`RecoveringPool`.
    """

    pool_kind = "assignment pool"
    serial_noun = "assignment"

    def __init__(
        self,
        config: ParallelConfig | None = None,
        *,
        max_step: int = 1,
        step_log_penalties: np.ndarray | None = None,
    ):
        super().__init__(config)
        self.max_step = max_step
        self.step_log_penalties = (
            None
            if step_log_penalties is None
            else np.asarray(step_log_penalties, dtype=np.float64)
        )
        self._shm: shared_memory.SharedMemory | None = None

    def close(self) -> None:
        super().close()
        self._release_table()  # defensive: normally released per assign call

    def _resolve_worker(self) -> Callable:
        # Through the module namespace, not a bound reference, so
        # fault-injection harnesses can swap the worker body in.
        return _assign_chunk

    def _publish_table(self, score_table: np.ndarray) -> _SharedScoreTable | None:
        """Copy the table, item-major, into a fresh shared-memory segment.

        Returns ``None`` (caller falls back to shipping the table inside
        each task) for empty tables or when the platform refuses shared
        memory.
        """
        item_major = np.asarray(score_table, dtype=np.float64).T
        self._shm, ref = publish_item_major(item_major)
        return ref

    def _release_table(self) -> None:
        """Close and unlink the published segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        for finalize in (shm.close, shm.unlink):
            try:
                finalize()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass

    @property
    def parallel_enabled(self) -> bool:
        config = self.config
        return config is not None and config.users and config.workers > 1

    def assign(
        self, score_table: np.ndarray, user_rows: Sequence[np.ndarray]
    ) -> list[PathResult]:
        """Best monotone path per user; order matches ``user_rows``.

        Wall-time per call (serial or pooled) lands in the
        ``pool.assign_seconds`` histogram of the active metrics registry.
        """
        registry = get_registry()
        start = registry.clock()
        try:
            return self._assign_impl(score_table, user_rows, registry)
        finally:
            registry.histogram("pool.assign_seconds").observe(registry.clock() - start)

    def _assign_impl(
        self,
        score_table: np.ndarray,
        user_rows: Sequence[np.ndarray],
        registry,
    ) -> list[PathResult]:
        if not self.parallel_enabled or len(user_rows) <= 1 or self._serial_fallback:
            return self._assign_serial(score_table, user_rows)
        config = self.config
        assert config is not None
        # The pool is sized from the configured worker count, not from the
        # first call's user count: a later call may carry far more users,
        # and per-call load shaping belongs to the chunking below.
        index_buckets, row_buckets = _balanced_buckets(
            user_rows, num_buckets=config.workers * 2
        )
        # One segment per assign call, reused verbatim across pool-rebuild
        # retries; the finally below releases it on every exit path —
        # normal completion, timeout, degrade-to-serial, and raise alike.
        table_ref: np.ndarray | _SharedScoreTable | None = None
        if config.shared_memory:
            table_ref = self._publish_table(score_table)
        if table_ref is None:
            table_ref = score_table
        try:
            tasks = [
                (table_ref, chunk, self.max_step, self.step_log_penalties)
                for chunk in row_buckets
            ]
            status, chunk_results = self._run_with_recovery(tasks, registry)
            if status == "serial":
                return self._assign_serial(score_table, user_rows)
        finally:
            self._release_table()
        assert chunk_results is not None
        results: list[PathResult | None] = [None] * len(user_rows)
        for indices, (levels, lengths, lls) in zip(index_buckets, chunk_results):
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            for pos, idx in enumerate(indices):
                results[idx] = PathResult(
                    levels=levels[offsets[pos] : offsets[pos + 1]],
                    log_likelihood=float(lls[pos]),
                )
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _assign_serial(
        self, score_table: np.ndarray, user_rows: Sequence[np.ndarray]
    ) -> list[PathResult]:
        return [
            best_monotone_path(
                score_table[:, rows].T,
                max_step=self.max_step,
                step_log_penalties=self.step_log_penalties,
            )
            for rows in user_rows
        ]


def assign_paths(
    score_table: np.ndarray,
    user_rows: Sequence[np.ndarray],
    config: ParallelConfig | None = None,
) -> list[PathResult]:
    """One-shot variant of :class:`PoolAssigner` (pool per call).

    Parameters
    ----------
    score_table:
        ``log P(i | s)`` of shape ``(num_levels, num_items)``.
    user_rows:
        For each user, the catalog row index of each action's item, in
        chronological order.
    config:
        ``None`` or ``config.users == False`` runs serially.

    Results are returned aligned with ``user_rows`` regardless of how work
    was distributed across workers.
    """
    with PoolAssigner(config) as assigner:
        return assigner.assign(score_table, user_rows)


def _balanced_buckets(
    user_rows: Sequence[np.ndarray], num_buckets: int
) -> tuple[list[list[int]], list[list[np.ndarray]]]:
    """Greedy longest-first packing of users into load-balanced buckets.

    Sequence lengths are heavy-tailed (a few prolific users dominate), so
    equal-count chunks would leave most workers idle.  Returns parallel
    lists of original indices and row arrays so callers can restore input
    order.
    """
    num_buckets = max(1, min(num_buckets, len(user_rows)))
    order = sorted(range(len(user_rows)), key=lambda k: -len(user_rows[k]))
    loads = [0] * num_buckets
    index_buckets: list[list[int]] = [[] for _ in range(num_buckets)]
    row_buckets: list[list[np.ndarray]] = [[] for _ in range(num_buckets)]
    for k in order:
        lightest = loads.index(min(loads))
        index_buckets[lightest].append(k)
        row_buckets[lightest].append(user_rows[k])
        loads[lightest] += max(1, len(user_rows[k]))
    return index_buckets, row_buckets


# --------------------------------------------------------------------------
# Update step: independent per-(level, feature) cell fits.
# --------------------------------------------------------------------------


def make_cell_fitter(config: ParallelConfig | None) -> Callable | None:
    """Build the ``cell_fitter`` callback for
    :meth:`~repro.core.model.SkillParameters.fit_from_assignments`.

    Returns ``None`` (serial) unless at least one update axis is enabled.
    Jobs are ``(level, feature)`` pairs; they are grouped so that the
    enabled axes determine the unit of parallel work:

    - skills only   → one task per level (a row of cells),
    - features only → one task per feature (a column of cells),
    - both          → one task per cell.
    """
    if config is None or not config.any_update_axis or config.workers == 1:
        return None

    def group_key(job: tuple[int, int]):
        level, feature = job
        if config.skills and config.features:
            return job
        if config.skills:
            return level
        return feature

    def fitter(jobs: list[tuple[int, int]], fit_one: Callable) -> list:
        groups: dict[object, list[int]] = {}
        for pos, job in enumerate(jobs):
            groups.setdefault(group_key(job), []).append(pos)

        def run_group(positions: list[int]) -> list[tuple[int, object]]:
            return [(pos, fit_one(jobs[pos])) for pos in positions]

        results: list[object | None] = [None] * len(jobs)
        with ThreadPoolExecutor(max_workers=config.workers) as pool:
            for fitted in pool.map(run_group, groups.values()):
                for pos, dist in fitted:
                    results[pos] = dist
        return results

    return fitter
