"""Monotone-path dynamic program for skill assignment (paper Section IV-B).

Given per-action, per-level log-likelihoods, the assignment step finds the
skill path that maximizes total log-likelihood subject to the monotonicity
constraint.  In the paper's base setting, between consecutive actions the
level either stays (δ=0) or increases by exactly one (δ=1), mirroring
Equation 4 and Figure 2:

    L(u, n, s) = max_{δ∈{0,1}} L(u, n-1, s-δ) + log P(i_n | s)

The paper notes (Section IV-A) that the model "is flexible enough to
incorporate more complex progressions (e.g., skipping some levels) by
introducing a probabilistic distribution for skill transitions" after Shin
et al.  :func:`best_monotone_path` implements that generalization: pass
``max_step > 1`` to allow jumps, and ``step_log_penalties`` to weight each
jump size (log-probabilities of a transition distribution).  The defaults
reproduce the paper's base model exactly.

The path may *start* at any level (users can enter the data already
skilled) and need not reach the top level.  This module is pure array
code: it knows nothing about users, items, or features — just a score
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["PathResult", "best_monotone_path", "path_log_likelihood"]


@dataclass(frozen=True)
class PathResult:
    """Optimal monotone skill path for one sequence.

    ``levels`` holds 0-based level indices (caller adds 1 for the paper's
    1-based skill levels); ``log_likelihood`` is the total score of the
    path including any transition penalties.
    """

    levels: np.ndarray
    log_likelihood: float


def _check_penalties(
    step_log_penalties: np.ndarray | None, max_step: int
) -> np.ndarray:
    if max_step < 1:
        raise ConfigurationError("max_step must be >= 1")
    if step_log_penalties is None:
        return np.zeros(max_step + 1, dtype=np.float64)
    penalties = np.asarray(step_log_penalties, dtype=np.float64)
    if penalties.shape != (max_step + 1,):
        raise ConfigurationError(
            f"step_log_penalties must have length max_step+1 = {max_step + 1}"
        )
    if np.any(penalties > 0):
        raise ConfigurationError("step_log_penalties are log-weights and must be <= 0")
    if np.all(np.isneginf(penalties)):
        raise ConfigurationError("at least one transition must be possible")
    return penalties


def best_monotone_path(
    scores: np.ndarray,
    *,
    max_step: int = 1,
    step_log_penalties: np.ndarray | None = None,
) -> PathResult:
    """Maximize total score over monotone paths with bounded step size.

    Parameters
    ----------
    scores:
        Array of shape ``(n_actions, n_levels)`` where ``scores[n, s]`` is
        ``log P(i_n | skill level s)``.
    max_step:
        Largest allowed level increase between consecutive actions.  The
        paper's base model uses 1.
    step_log_penalties:
        Optional log-weights, one per step size ``0..max_step`` (all must
        be ≤ 0; ``None`` means unweighted, the hard-assignment convention).

    Returns
    -------
    PathResult
        The argmax path and its total score.  Ties break toward the path
        that sat at the *lower* level earlier — conservative skill
        attribution.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ConfigurationError(f"scores must be 2-D, got shape {scores.shape}")
    n_actions, n_levels = scores.shape
    penalties = _check_penalties(step_log_penalties, max_step)
    if n_actions == 0:
        return PathResult(levels=np.empty(0, dtype=np.int64), log_likelihood=0.0)
    if n_levels == 0:
        raise ConfigurationError("need at least one skill level")
    if max_step == 1 and not penalties.any():
        # The paper's base model is the hot loop of every training
        # iteration; the specialized scalar recursion below is ~8× faster
        # than the generic vectorized one for the small S used in practice.
        return _best_path_base(scores)

    # best[s]: best total score of any valid path ending at level s after
    # the current action.  step_taken[n, s] records the δ of that path's
    # transition into action n.
    best = scores[0].copy()
    step_taken = np.zeros((n_actions, n_levels), dtype=np.int64)
    candidates = np.empty((max_step + 1, n_levels), dtype=np.float64)
    for n in range(1, n_actions):
        for delta in range(max_step + 1):
            candidates[delta, :delta] = -np.inf  # level < δ unreachable by δ-step
            candidates[delta, delta:] = (
                # max(0, ·) so a max_step >= n_levels (every jump allowed)
                # yields an empty source instead of a wrapped negative slice.
                best[: max(0, n_levels - delta)] + penalties[delta]
                if delta
                else best + penalties[0]
            )
        # Largest δ wins ties: of two equal paths, prefer the one that sat
        # at the LOWER level earlier and climbed later.
        reversed_view = candidates[::-1]
        choice_rev = np.argmax(reversed_view, axis=0)
        step_taken[n] = max_step - choice_rev
        best = reversed_view[choice_rev, np.arange(n_levels)] + scores[n]

    levels = np.empty(n_actions, dtype=np.int64)
    levels[-1] = int(np.argmax(best))  # ties resolve to the lower final level
    for n in range(n_actions - 1, 0, -1):
        levels[n - 1] = levels[n] - step_taken[n, levels[n]]
    return PathResult(levels=levels, log_likelihood=float(best[levels[-1]]))


def _best_path_base(scores: np.ndarray) -> PathResult:
    """Unweighted stay-or-step-up-by-one specialization (Equation 4).

    Semantics are identical to the generic path with ``max_step=1`` and no
    penalties, including tie-breaking: a tie between stepping up and
    staying resolves to the step (the predecessor at the lower level), and
    final-level ties resolve to the lower level.  Pure-Python floats beat
    per-step NumPy allocations by a wide margin at the small ``S`` used in
    practice; the equivalence is pinned by the brute-force property tests.
    """
    n_actions, n_levels = scores.shape
    rows = scores.tolist()
    best = rows[0]
    came_from_below = [[False] * n_levels]
    for t in range(1, n_actions):
        row = rows[t]
        came = [False] * n_levels
        new = [best[0] + row[0]]
        prev_level_best = best[0]
        for s in range(1, n_levels):
            stay = best[s]
            if prev_level_best >= stay:  # tie → step up (lower predecessor)
                came[s] = True
                new.append(prev_level_best + row[s])
            else:
                new.append(stay + row[s])
            prev_level_best = stay
        best = new
        came_from_below.append(came)

    final_level = max(range(n_levels), key=lambda s: (best[s], -s))
    levels = np.empty(n_actions, dtype=np.int64)
    level = final_level
    levels[-1] = level
    for t in range(n_actions - 1, 0, -1):
        if came_from_below[t][level]:
            level -= 1
        levels[t - 1] = level
    return PathResult(levels=levels, log_likelihood=float(best[final_level]))


def path_log_likelihood(
    scores: np.ndarray,
    levels: np.ndarray,
    *,
    max_step: int = 1,
    step_log_penalties: np.ndarray | None = None,
) -> float:
    """Total score of an explicit path; validates the step constraint.

    Useful in tests and for scoring externally supplied assignments.
    Includes the transition penalties when given, matching
    :func:`best_monotone_path`'s objective.
    """
    scores = np.asarray(scores, dtype=np.float64)
    levels = np.asarray(levels, dtype=np.int64)
    penalties = _check_penalties(step_log_penalties, max_step)
    if levels.shape != (scores.shape[0],):
        raise ConfigurationError("levels length must match number of actions")
    if len(levels) == 0:
        return 0.0
    if levels.min() < 0 or levels.max() >= scores.shape[1]:
        raise ConfigurationError("level index out of range")
    steps = np.diff(levels)
    if np.any(steps < 0) or np.any(steps > max_step):
        raise ConfigurationError(
            f"path violates the stay-or-step-up-by-at-most-{max_step} constraint"
        )
    total = float(scores[np.arange(len(levels)), levels].sum())
    total += float(penalties[steps].sum())
    return total
