"""Baseline skill models used in the paper's evaluation (Section VI-D).

- **Uniform** — segments every user sequence into ``S`` equal-length
  groups and labels the ``s``-th group with level ``s``.  No learning; the
  paper's weakest baseline.  We still fit a parameter grid from those fixed
  labels so the baseline can produce ``P(i | s)`` for the item-prediction
  task and the generation-based difficulty API (the paper itself only
  combines Uniform with assignment-based difficulty).
- **ID** — Yang et al.'s progression model: identical training loop, but
  the only feature is the item id.  The intermediate ablations of Table VI
  (ID+categorical, ID+gamma, ID+Poisson) are the same constructor with a
  feature subset.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import FeatureSet, FeatureSpec
from repro.core.model import SkillModel, SkillParameters, TrainingTrace
from repro.core.training import Trainer, TrainerConfig, uniform_segment_levels
from repro.data.actions import ActionLog
from repro.data.items import ItemCatalog
from repro.exceptions import DataError

__all__ = ["fit_uniform_baseline", "fit_id_baseline", "id_feature_set"]


def id_feature_set() -> FeatureSet:
    """The feature set of the ID baseline: the item id alone."""
    return FeatureSet([FeatureSpec.id_spec()])


def fit_uniform_baseline(
    log: ActionLog,
    catalog: ItemCatalog,
    num_levels: int,
    *,
    feature_set: FeatureSet | None = None,
    smoothing: float = 0.01,
) -> SkillModel:
    """The Uniform baseline: fixed equal-segment assignments, one
    parameter fit, no iteration.

    ``feature_set`` defaults to the ID-only set, which is all the
    downstream tasks need from this baseline.
    """
    if log.num_actions == 0:
        raise DataError("cannot fit the uniform baseline on an empty log")
    feature_set = feature_set or id_feature_set()
    encoded = feature_set.encode(catalog)

    users = list(log.users)
    user_rows = [encoded.rows_for_sequence(log.sequence(u)) for u in users]
    user_levels = [uniform_segment_levels(len(rows), num_levels) for rows in user_rows]

    all_rows = np.concatenate(user_rows)
    all_levels = np.concatenate(user_levels)
    parameters = SkillParameters.fit_from_assignments(
        encoded,
        all_rows,
        all_levels,
        num_levels=num_levels,
        smoothing=smoothing,
    )
    table = parameters.item_score_table(encoded)
    # One fancy-index over all actions at once; per-user partial sums are
    # never needed, only the grand total.
    total_ll = float(table[all_levels, all_rows].sum())
    assignments = {
        user: (levels + 1).astype(np.int64) for user, levels in zip(users, user_levels)
    }
    times = {
        user: np.asarray(log.sequence(user).times, dtype=np.float64) for user in users
    }
    trace = TrainingTrace(log_likelihoods=(total_ll,), converged=True, num_iterations=1)
    return SkillModel(
        parameters=parameters,
        encoded=encoded,
        assignments=assignments,
        trace=trace,
        _assignment_times=times,
    )


def fit_id_baseline(
    log: ActionLog,
    catalog: ItemCatalog,
    num_levels: int,
    *,
    extra_features: FeatureSet | None = None,
    **config_kwargs,
) -> SkillModel:
    """Yang et al.'s ID progression model, optionally with extra features.

    With ``extra_features=None`` this is the plain ID baseline; passing a
    subset of the domain's feature set produces the ID+categorical /
    ID+gamma / ID+Poisson ablation rows of Table VI.
    """
    feature_set = (
        id_feature_set() if extra_features is None else extra_features.with_id_feature()
    )
    config = TrainerConfig(num_levels=num_levels, **config_kwargs)
    return Trainer(config).fit(log, catalog, feature_set)
