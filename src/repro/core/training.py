"""Hard-assignment coordinate-ascent training (paper Section IV-B).

The trainer alternates two steps until the log-likelihood (Equation 3)
stops improving:

1. **Assignment** — with parameters fixed, find every user's best monotone
   skill path by dynamic programming (:mod:`repro.core.dp`).
2. **Update** — with assignments fixed, re-estimate each ``θ_f(s)`` by
   (smoothed) maximum likelihood (Equations 5-7).

Initialization follows the paper: take the users with at least ``N``
actions (``U_{≥N}``), split each of their sequences into ``S`` equal-time
groups, label the ``s``-th group with level ``s``, and fit the first
parameter set from those labels.  If no user is that long, all users are
used — a small-data fallback the paper's filtered datasets never need.

This hard-assignment scheme is Yang et al.'s: it was reported to run about
1000× faster than EM with comparable fit quality; the EM comparison lives
in ``benchmarks/test_ablation_hard_vs_soft.py``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core import checkpoint as checkpointing
from repro.core.checkpoint import CheckpointConfig
from repro.core.features import FeatureSet
from repro.core.engine import ASSIGNMENT_STRATEGIES, AssignmentEngine
from repro.core.model import SkillModel, SkillParameters, TrainingTrace
from repro.core.parallel import ParallelConfig, make_cell_fitter
from repro.core.stats import SkillStats
from repro.data.actions import ActionLog
from repro.data.items import ItemCatalog
from repro.data.store import ActionStore
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    ConvergenceError,
    DataError,
)
from repro.obs.logging import current_run_id, get_logger
from repro.obs.metrics import get_registry
from repro.obs.resource import ResourceSampler
from repro.obs.telemetry import (
    TRAINER_STAGES,
    CheckpointEvent,
    IterationRecord,
    TelemetryBuilder,
)
from repro.obs.trace import get_tracer, new_span_id

_log = get_logger("core.training")

__all__ = [
    "TrainerConfig",
    "Trainer",
    "uniform_segment_levels",
    "fit_skill_model",
    "resume_fit",
]


def uniform_segment_levels(num_actions: int, num_levels: int) -> np.ndarray:
    """Split ``num_actions`` positions into ``num_levels`` equal groups.

    Returns 0-based level per position.  This is both the initialization
    labeling (Section IV-B) and the whole of the Uniform baseline
    (Section VI-D).  When the sequence is shorter than ``num_levels`` the
    trailing levels simply receive no actions.
    """
    if num_levels <= 0:
        raise ConfigurationError("num_levels must be positive")
    if num_actions < 0:
        raise ConfigurationError("num_actions must be non-negative")
    # Same group sizes as ``np.array_split(np.arange(num_actions), S)``:
    # the first ``num_actions % S`` groups get one extra position.
    base, remainder = divmod(num_actions, num_levels)
    sizes = np.full(num_levels, base, dtype=np.int64)
    sizes[:remainder] += 1
    return np.repeat(np.arange(num_levels, dtype=np.int64), sizes)


@dataclass(frozen=True)
class TrainerConfig:
    """Hyper-parameters of the training loop.

    ``init_min_actions`` is the paper's ``N``: only users with at least
    this many actions inform the initial parameter fit (``U_{≥N}``,
    Section IV-B; both the paper and Shin et al. use 50).  ``tol`` is the
    relative log-likelihood improvement below which we declare convergence.
    ``strict`` raises :class:`~repro.exceptions.ConvergenceError` if the
    objective ever *decreases* materially — with additive smoothing and the
    numerical gamma fit, hair-width decreases are legal, so the check uses
    a generous margin.

    ``on_iteration`` is the progress hook: called after every completed
    iteration with that iteration's
    :class:`~repro.obs.telemetry.IterationRecord` (log-likelihood,
    improvement, per-stage seconds, assignment churn), so long fits can
    report progress without monkey-patching the trainer.  It is a runtime
    concern like ``parallel`` and is never checkpointed.
    """

    num_levels: int
    smoothing: float = 0.01
    init_min_actions: int = 50
    max_iterations: int = 100
    tol: float = 1e-6
    strict: bool = False
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    #: Largest level jump per transition (1 = the paper's base model).
    max_step: int = 1
    #: Optional log-weights per step size 0..max_step (skip-level
    #: progressions à la Shin et al.); ``None`` = unweighted.
    step_log_penalties: tuple[float, ...] | None = None
    #: How the assignment step runs: one of
    #: :data:`~repro.core.engine.ASSIGNMENT_STRATEGIES`.  ``"auto"``
    #: (default) picks serial/batched/pooled per call from the workload.
    #: A runtime concern like ``parallel`` — never checkpointed, never
    #: changes results.
    assignment_strategy: str = "auto"
    #: Maintain sufficient statistics across iterations and refit only the
    #: levels whose assignments changed (see
    #: :class:`~repro.core.stats.SkillStats`).  Integer statistics make the
    #: incremental path bit-identical to refitting everything; disabling it
    #: only trades speed for simpler debugging.  A runtime concern like
    #: ``assignment_strategy`` — never checkpointed, never changes results.
    incremental_mstep: bool = True
    #: Per-iteration progress callback (see class docstring).
    on_iteration: Callable[[IterationRecord], None] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.num_levels < 1:
            raise ConfigurationError("num_levels must be >= 1")
        if self.smoothing < 0:
            raise ConfigurationError("smoothing must be >= 0")
        if self.init_min_actions < 1:
            raise ConfigurationError("init_min_actions must be >= 1")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")
        if self.tol < 0:
            raise ConfigurationError("tol must be >= 0")
        if self.max_step < 1:
            raise ConfigurationError("max_step must be >= 1")
        if self.assignment_strategy not in ASSIGNMENT_STRATEGIES:
            raise ConfigurationError(
                f"assignment_strategy must be one of {ASSIGNMENT_STRATEGIES}, "
                f"got {self.assignment_strategy!r}"
            )
        if self.step_log_penalties is not None:
            penalties = tuple(float(p) for p in self.step_log_penalties)
            if len(penalties) != self.max_step + 1:
                raise ConfigurationError(
                    "step_log_penalties needs one entry per step size 0..max_step"
                )
            object.__setattr__(self, "step_log_penalties", penalties)


class Trainer:
    """Fits a :class:`~repro.core.model.SkillModel` to an action log."""

    def __init__(self, config: TrainerConfig):
        self.config = config

    def fit(
        self,
        log: ActionLog,
        catalog: ItemCatalog,
        feature_set: FeatureSet,
        *,
        checkpoint: CheckpointConfig | None = None,
    ) -> SkillModel:
        """Run initialization + alternation to convergence.

        ``checkpoint`` enables periodic crash-safe snapshots of the loop
        state; an interrupted fit can then be continued with
        :func:`resume_fit` and reaches the same final model.

        Raises :class:`~repro.exceptions.DataError` on an empty log or on
        actions referencing items missing from ``catalog``.
        """
        if log.num_actions == 0:
            raise DataError("cannot train on an empty action log")
        encoded = feature_set.encode(catalog)
        users = list(log.users)
        user_rows = [encoded.rows_for_sequence(log.sequence(u)) for u in users]
        user_times = [np.asarray(log.sequence(u).times, dtype=np.float64) for u in users]
        parameters = self._initialize(encoded, users, user_rows, log)
        fingerprint = (
            checkpointing.data_fingerprint(log, feature_set, encoded.num_items)
            if checkpoint is not None
            else None
        )
        return self._alternate(
            encoded, users, user_rows, user_times, parameters, [], checkpoint, fingerprint
        )

    def _alternate(
        self,
        encoded,
        users: list,
        user_rows: list[np.ndarray],
        user_times: list[np.ndarray],
        parameters: SkillParameters,
        log_likelihoods: list[float],
        checkpoint: CheckpointConfig | None,
        fingerprint: dict | None,
    ) -> SkillModel:
        """Traced wrapper around :meth:`_alternate_impl`.

        Opens the ``train.fit`` root span so every span recorded during
        the fit — per-iteration and per-stage records here, engine spans
        below — lands in one trace, and brackets the fit with the GC-pause
        hooks (released on every exit path) whose stats join the
        telemetry.  A disabled tracer makes the span a pass-through.
        """
        sampler = ResourceSampler(get_registry())
        sampler.install_gc_hooks()
        try:
            with get_tracer().span(
                "train.fit", users=len(users), resumed=bool(log_likelihoods)
            ) as fit_span:
                model = self._alternate_impl(
                    encoded,
                    users,
                    user_rows,
                    user_times,
                    parameters,
                    log_likelihoods,
                    checkpoint,
                    fingerprint,
                    sampler,
                )
                fit_span.set(
                    iterations=model.trace.num_iterations,
                    converged=model.trace.converged,
                )
                return model
        finally:
            sampler.uninstall_gc_hooks()

    def _alternate_impl(
        self,
        encoded,
        users: list,
        user_rows: list[np.ndarray],
        user_times: list[np.ndarray],
        parameters: SkillParameters,
        log_likelihoods: list[float],
        checkpoint: CheckpointConfig | None,
        fingerprint: dict | None,
        sampler: ResourceSampler,
    ) -> SkillModel:
        """The assignment/update alternation, resumable at any iteration.

        ``log_likelihoods`` carries the history of already-completed
        iterations (empty for a fresh fit); ``parameters`` must be the
        parameter grid produced after the last of them.

        Every iteration is instrumented: per-stage wall-time (score-table
        build, assignment, cell fits, checkpoint write) goes to the active
        metrics registry under ``train.<stage>_seconds`` histograms,
        convergence health to the ``train.*`` gauges, and the whole run is
        condensed into the returned model's
        :class:`~repro.obs.telemetry.TrainingTelemetry`.
        """
        cfg = self.config
        registry = get_registry()
        tracer = get_tracer()
        clock = registry.clock
        builder = TelemetryBuilder(run_id=current_run_id(), stages=TRAINER_STAGES)
        fit_start = clock()
        cell_fitter = make_cell_fitter(cfg.parallel)
        log_likelihoods = list(log_likelihoods)
        converged = False
        num_cells = cfg.num_levels * len(encoded.feature_set)
        # Per-user structure is fixed across iterations; hoist it.
        lengths = np.fromiter(
            (len(rows) for rows in user_rows), dtype=np.int64, count=len(user_rows)
        )
        bounds = np.cumsum(lengths)
        action_rows = (
            np.concatenate(user_rows) if user_rows else np.empty(0, np.int64)
        )
        flat_levels: np.ndarray | None = None
        prev_flat: np.ndarray | None = None
        previous_hist: np.ndarray | None = None
        stats: SkillStats | None = None
        with AssignmentEngine(
            cfg.parallel,
            strategy=cfg.assignment_strategy,
            max_step=cfg.max_step,
            step_log_penalties=cfg.step_log_penalties,
        ) as assigner:
            for iteration in range(len(log_likelihoods), cfg.max_iterations):
                iteration_ts = tracer.wall() if tracer.enabled else 0.0
                iteration_start = clock()
                stage_seconds = dict.fromkeys(TRAINER_STAGES, 0.0)
                stage_start = clock()
                table = assigner.score_table(parameters, encoded)
                stage_seconds["table_build"] = clock() - stage_start
                stage_start = clock()
                flat_levels, user_lls = assigner.assign_flat(table, user_rows)
                stage_seconds["assign"] = clock() - stage_start
                # Sequential Python sum in user order, matching what a
                # per-path accumulation produces to the last bit.
                total_ll = float(sum(user_lls.tolist()))
                level_hist = np.bincount(flat_levels, minlength=cfg.num_levels)
                changed = flat_levels != prev_flat if prev_flat is not None else None

                improvement = None
                if log_likelihoods:
                    previous = log_likelihoods[-1]
                    improvement = total_ll - previous
                    if cfg.strict and improvement < -1e-3 * max(1.0, abs(previous)):
                        raise ConvergenceError(
                            f"objective decreased from {previous:.6f} "
                            f"(iteration {iteration}) to {total_ll:.6f} "
                            f"(iteration {iteration + 1})"
                        )
                    log_likelihoods.append(total_ll)
                    if abs(improvement) <= cfg.tol * max(1.0, abs(previous)):
                        converged = True
                else:
                    log_likelihoods.append(total_ll)

                if not converged:
                    stage_start = clock()
                    if not cfg.incremental_mstep:
                        parameters = SkillParameters.fit_from_assignments(
                            encoded,
                            action_rows,
                            flat_levels,
                            num_levels=cfg.num_levels,
                            smoothing=cfg.smoothing,
                            cell_fitter=cell_fitter,
                        )
                        cells_refit = num_cells
                    elif stats is None or changed is None:
                        # First update of this run: build the statistics
                        # cold; later iterations patch them with deltas.
                        stats = SkillStats.from_assignments(
                            encoded,
                            action_rows,
                            flat_levels,
                            num_levels=cfg.num_levels,
                        )
                        parameters = SkillParameters.fit_from_stats(
                            stats,
                            smoothing=cfg.smoothing,
                            cell_fitter=cell_fitter,
                        )
                        cells_refit = num_cells
                    else:
                        moved = np.flatnonzero(changed)
                        if len(moved):
                            dirty = stats.update(
                                action_rows[moved],
                                prev_flat[moved],
                                flat_levels[moved],
                            )
                            parameters = SkillParameters.fit_from_stats(
                                stats,
                                smoothing=cfg.smoothing,
                                cell_fitter=cell_fitter,
                                previous=parameters,
                                dirty_levels=dirty,
                            )
                            cells_refit = len(dirty) * len(encoded.feature_set)
                        else:
                            # No action moved: the statistics — and hence
                            # every refit cell — are unchanged.
                            cells_refit = 0
                    registry.gauge("train.cells_refit").set(cells_refit)
                    stage_seconds["cell_fit"] = clock() - stage_start
                    if (
                        checkpoint is not None
                        and len(log_likelihoods) % checkpoint.every == 0
                    ):
                        stage_start = clock()
                        written = checkpointing.write_checkpoint(
                            checkpoint.path,
                            parameters=parameters,
                            log_likelihoods=log_likelihoods,
                            trainer_config=_config_payload(cfg),
                            fingerprint=fingerprint or {},
                            every=checkpoint.every,
                        )
                        checkpoint_seconds = clock() - stage_start
                        stage_seconds["checkpoint"] = checkpoint_seconds
                        builder.record_checkpoint(
                            CheckpointEvent(
                                iteration=len(log_likelihoods),
                                path=str(written),
                                num_bytes=written.stat().st_size,
                                seconds=checkpoint_seconds,
                            )
                        )

                stage_seconds["iteration"] = clock() - iteration_start
                record = self._observe_iteration(
                    registry,
                    stage_seconds,
                    total_ll=total_ll,
                    improvement=improvement,
                    iteration_number=len(log_likelihoods),
                    changed=changed,
                    lengths=lengths,
                    bounds=bounds,
                    level_hist=level_hist,
                    previous_hist=previous_hist,
                )
                builder.record_iteration(record)
                if tracer.enabled:
                    # Reconstructed from the stage clocks already taken —
                    # the hot loop pays no extra timing calls.  Stage start
                    # times are cumulative approximations; durations are
                    # the measured values.
                    iter_span_id = new_span_id()
                    tracer.record(
                        "train.iteration",
                        span=iter_span_id,
                        ts=iteration_ts,
                        duration=stage_seconds["iteration"],
                        iteration=len(log_likelihoods),
                        log_likelihood=total_ll,
                    )
                    offset = iteration_ts
                    for stage in ("table_build", "assign", "cell_fit", "checkpoint"):
                        seconds = stage_seconds[stage]
                        if seconds:
                            tracer.record(
                                f"train.{stage}",
                                parent=iter_span_id,
                                ts=offset,
                                duration=seconds,
                            )
                            offset += seconds
                if cfg.on_iteration is not None:
                    cfg.on_iteration(record)
                prev_flat = flat_levels
                previous_hist = level_hist
                if converged:
                    break
            if flat_levels is None and user_rows:
                # Resumed with no iterations left to run (the checkpoint was
                # written at max_iterations): materialize assignments from
                # the checkpointed parameters without extending the trace.
                table = assigner.score_table(parameters, encoded)
                flat_levels, _ = assigner.assign_flat(table, user_rows)
            pool_events = dict(assigner.event_counts)

        telemetry = builder.build(
            log_likelihoods=tuple(log_likelihoods),
            pool_events=pool_events,
            converged=converged,
            total_seconds=clock() - fit_start,
            resources=sampler.sample(),
        )
        _log.info(
            "fit complete",
            extra={
                "obs": {
                    "iterations": len(log_likelihoods),
                    "converged": converged,
                    "log_likelihood": (
                        round(log_likelihoods[-1], 3) if log_likelihoods else None
                    ),
                    "seconds": round(telemetry.total_seconds, 6),
                }
            },
        )
        level_arrays = (
            np.split(flat_levels, bounds[:-1])
            if flat_levels is not None and users
            else []
        )
        assignments = {
            user: (levels + 1).astype(np.int64)  # expose 1-based levels
            for user, levels in zip(users, level_arrays)
        }
        times = {user: t for user, t in zip(users, user_times)}
        trace = TrainingTrace(
            log_likelihoods=tuple(log_likelihoods),
            converged=converged,
            num_iterations=len(log_likelihoods),
        )
        return SkillModel(
            parameters=parameters,
            encoded=encoded,
            assignments=assignments,
            trace=trace,
            _assignment_times=times,
            telemetry=telemetry,
        )

    @staticmethod
    def _observe_iteration(
        registry,
        stage_seconds: dict[str, float],
        *,
        total_ll: float,
        improvement: float | None,
        iteration_number: int,
        changed: np.ndarray | None,
        lengths: np.ndarray,
        bounds: np.ndarray,
        level_hist: np.ndarray,
        previous_hist: np.ndarray | None,
    ) -> IterationRecord:
        """Publish one iteration's diagnostics to metrics + logs.

        Assignment churn is summarized two ways: ``unchanged_users`` (how
        many users' whole paths were identical to the previous iteration —
        the converged-users count, from the per-action ``changed`` mask)
        and ``level_drift`` (normalized L1 distance between consecutive
        level histograms).
        """
        for stage, seconds in stage_seconds.items():
            registry.histogram(f"train.{stage}_seconds").observe(seconds)
        if changed is None:
            unchanged = None
        else:
            # Per-user "any level changed" via prefix sums — one pass over
            # the concatenated paths instead of one array compare per user.
            changed_cum = np.concatenate(([0], np.cumsum(changed)))
            per_user = changed_cum[bounds] - changed_cum[bounds - lengths]
            unchanged = int(np.count_nonzero(per_user == 0))
        drift = (
            float(np.abs(level_hist - previous_hist).sum() / max(1, int(level_hist.sum())))
            if previous_hist is not None
            else None
        )
        registry.counter("train.iterations").inc()
        registry.gauge("train.log_likelihood").set(total_ll)
        if improvement is not None:
            registry.gauge("train.improvement").set(improvement)
        if unchanged is not None:
            registry.gauge("train.unchanged_users").set(unchanged)
        if drift is not None:
            registry.gauge("train.level_drift").set(drift)
        record = IterationRecord(
            iteration=iteration_number,
            log_likelihood=total_ll,
            improvement=improvement,
            stage_seconds=stage_seconds,
            unchanged_users=unchanged,
            level_histogram=tuple(int(v) for v in level_hist),
            level_drift=drift,
        )
        _log.info(
            "iteration",
            extra={
                "obs": {
                    "iteration": iteration_number,
                    "log_likelihood": round(total_ll, 3),
                    "improvement": (
                        None if improvement is None else round(improvement, 6)
                    ),
                    "ms": round(stage_seconds["iteration"] * 1000.0, 3),
                }
            },
        )
        return record

    def _initialize(
        self,
        encoded,
        users: list,
        user_rows: list[np.ndarray],
        log: ActionLog,
    ) -> SkillParameters:
        """Fit the first parameter set from uniform-segment labels of the
        long sequences (``U_{≥N}``)."""
        cfg = self.config
        init_rows: list[np.ndarray] = []
        init_levels: list[np.ndarray] = []
        for user, rows in zip(users, user_rows):
            if len(rows) >= cfg.init_min_actions:
                init_rows.append(rows)
                init_levels.append(uniform_segment_levels(len(rows), cfg.num_levels))
        if not init_rows:
            # Small-data fallback: no user reaches N actions, use everyone.
            for rows in user_rows:
                init_rows.append(rows)
                init_levels.append(uniform_segment_levels(len(rows), cfg.num_levels))
        return SkillParameters.fit_from_assignments(
            encoded,
            np.concatenate(init_rows),
            np.concatenate(init_levels),
            num_levels=cfg.num_levels,
            smoothing=cfg.smoothing,
            cell_fitter=make_cell_fitter(cfg.parallel),
        )


def _config_payload(config: TrainerConfig) -> dict:
    """The JSON-serializable TrainerConfig state stored in checkpoints.

    ``parallel``, ``assignment_strategy``, and ``on_iteration`` are
    deliberately excluded: all are runtime concerns (host topology,
    kernel choice, progress reporting) that change wall-clock but never
    results, and must not pin a resume to the crashed process's
    environment.
    """
    return {
        "num_levels": config.num_levels,
        "smoothing": config.smoothing,
        "init_min_actions": config.init_min_actions,
        "max_iterations": config.max_iterations,
        "tol": config.tol,
        "strict": config.strict,
        "max_step": config.max_step,
        "step_log_penalties": (
            list(config.step_log_penalties)
            if config.step_log_penalties is not None
            else None
        ),
    }


def fit_skill_model(
    log: ActionLog | "ActionStore",
    catalog: ItemCatalog,
    feature_set: FeatureSet,
    num_levels: int,
    checkpoint: CheckpointConfig | None = None,
    **config_kwargs,
) -> SkillModel:
    """One-call convenience wrapper around :class:`Trainer`.

    ``log`` may be an in-RAM :class:`~repro.data.actions.ActionLog` or an
    out-of-core :class:`~repro.data.store.ActionStore` — store fits run
    through the sharded map-reduce trainer (:mod:`repro.core.shard`) and
    produce bit-identical models.  ``config_kwargs`` are forwarded to
    :class:`TrainerConfig`.
    """
    config = TrainerConfig(num_levels=num_levels, **config_kwargs)
    if isinstance(log, ActionStore):
        if checkpoint is not None:
            raise ConfigurationError(
                "checkpointing is not supported for store-backed fits; "
                "convert to an in-RAM log or drop the checkpoint config"
            )
        from repro.core.shard import ShardedTrainer

        return ShardedTrainer(config).fit(log, catalog, feature_set)
    return Trainer(config).fit(log, catalog, feature_set, checkpoint=checkpoint)


def resume_fit(
    path: str | Path,
    log: ActionLog,
    catalog: ItemCatalog,
    feature_set: FeatureSet,
    *,
    parallel: ParallelConfig | None = None,
    checkpoint: CheckpointConfig | None = None,
    on_iteration: Callable[[IterationRecord], None] | None = None,
) -> SkillModel:
    """Continue an interrupted :meth:`Trainer.fit` from a checkpoint.

    The trainer configuration is restored from the checkpoint, so the
    resumed run provably converges to the same final model as the original
    would have — provided ``log``/``catalog``/``feature_set`` are the same
    data (enforced via the stored fingerprint).  ``parallel`` may differ:
    parallelism changes wall-clock, never results.

    By default the resumed run keeps checkpointing to the same ``path`` at
    the stored cadence; pass ``checkpoint`` to override.

    Raises :class:`~repro.exceptions.CheckpointError` for a missing,
    corrupted, or mismatched checkpoint.
    """
    state = checkpointing.read_checkpoint(path)
    config_kwargs = dict(state.trainer_config)
    if parallel is not None:
        config_kwargs["parallel"] = parallel
    if on_iteration is not None:
        config_kwargs["on_iteration"] = on_iteration
    try:
        config = TrainerConfig(**config_kwargs)
    except TypeError as exc:
        raise CheckpointError(
            f"{path}: checkpoint trainer configuration is not understood ({exc})"
        ) from exc

    if log.num_actions == 0:
        raise DataError("cannot resume training on an empty action log")
    encoded = feature_set.encode(catalog)
    fingerprint = checkpointing.data_fingerprint(log, feature_set, encoded.num_items)
    if fingerprint != state.fingerprint:
        raise CheckpointError(
            f"{path}: checkpoint does not match the training data "
            f"(checkpoint fingerprint {state.fingerprint}, data {fingerprint}); "
            f"resume requires the exact log/catalog/features the fit started with"
        )
    if checkpoint is None:
        checkpoint = CheckpointConfig(path=path, every=state.every)

    trainer = Trainer(config)
    users = list(log.users)
    user_rows = [encoded.rows_for_sequence(log.sequence(u)) for u in users]
    user_times = [np.asarray(log.sequence(u).times, dtype=np.float64) for u in users]
    return trainer._alternate(
        encoded,
        users,
        user_rows,
        user_times,
        state.parameters,
        list(state.log_likelihoods),
        checkpoint,
        fingerprint,
    )
