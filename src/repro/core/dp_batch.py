"""Batched monotone-path dynamic program (vectorized multi-user Viterbi).

:func:`~repro.core.dp.best_monotone_path` runs one sequence at a time; its
scalar inner loop is the training bottleneck once a fit has thousands of
users.  This module runs the *same* recursion for a whole batch of
sequences at once: all users' gathered score rows are stacked into one
padded time-major ``(T_max, U, S)`` array and the recursion advances with
a handful of NumPy ops per time step, vectorized over users and levels.

Semantics are bit-identical to the scalar kernel — including every
tie-breaking rule:

- between equal-scoring predecessors, the **largest** step wins (the path
  that sat at the lower level earlier and climbed later), and
- final-level ties resolve to the **lower** level.

The parity is pinned by randomized ragged-batch property tests against
:func:`best_monotone_path` (``tests/test_core_dp_batch.py``), covering
tie-dense integer scores, ``max_step > 1``, and ``step_log_penalties``.

Padding never contaminates results: each user's final scores are captured
at *their own* last action, and backtracking starts there.  Ragged
batches are length-sorted and split into a few equal-count buckets, which
bounds padding waste while keeping each time step's arrays large enough
to amortize NumPy dispatch — the sweet spot measured on heavy-tailed
synthetic workloads.  Oversized buckets are further split into slabs so
peak memory stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dp import PathResult, _check_penalties
from repro.exceptions import ConfigurationError

__all__ = [
    "BatchPlan",
    "batch_assign",
    "batch_assign_flat",
    "batch_assign_item_major",
    "batch_viterbi",
    "prepare_batch",
]

#: Upper bound on the number of float64 cells in one stacked slab
#: (T_max × users × levels); 64 MiB of scores per slab keeps peak memory
#: flat on huge batches without measurably hurting throughput.
_MAX_SLAB_CELLS = 8_388_608

#: Equal-count length buckets: aim for at least this many users per
#: bucket (NumPy dispatch amortization) and at most ``_MAX_BUCKETS``
#: (padding-waste control).
_MIN_BUCKET_USERS = 128
_MAX_BUCKETS = 8


def _finish_groups(lengths: np.ndarray) -> dict[int, np.ndarray]:
    """``finish_at[t]``: users whose last action is at time t — where their
    final scores are captured and their backtrack starts."""
    return {
        int(length) - 1: np.flatnonzero(lengths == length)
        for length in np.unique(lengths)
    }


def _viterbi_time_major(
    scores: np.ndarray,
    lengths: np.ndarray,
    max_step: int,
    penalties: np.ndarray,
    finish_at: dict[int, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Core recursion over a time-major ``(T_max, U, S)`` padded batch.

    Returns ``(levels, log_likelihoods)`` with ``levels`` of shape
    ``(U, T_max)`` (entries past a user's length are zero-padding).
    Inputs are trusted; validation lives in the public wrappers.
    ``finish_at`` may be passed precomputed (see :func:`_finish_groups`)
    when the caller replays fixed lengths every iteration.
    """
    max_len, num_users, num_levels = scores.shape
    base_model = max_step == 1 and not penalties.any()

    if finish_at is None:
        finish_at = _finish_groups(lengths)

    # best[u, s]: best total score of a valid path for user u ending at
    # level s after the current action.  step_taken[t, u, s] is the δ of
    # that path's transition into action t (int8: max_step is tiny).
    best = scores[0].copy()
    final_best = best.copy()  # correct for length-1 users; overwritten below
    # Slice 0 is never written (the loop starts at t=1) nor read (the
    # backtrack gathers only for t >= 1), so empty beats zeros.
    step_taken = np.empty((max_len, num_users, num_levels), dtype=np.int8)
    shifted = np.empty_like(best)
    # Level 0 is unreachable by a step; the -inf column is invariant in the
    # base-model loop (only shifted[:, 1:] is rewritten), so it also pins
    # came[:, 0] to False without a per-step fixup.
    shifted[:, 0] = -np.inf
    came = np.empty((num_users, num_levels), dtype=bool)
    if not base_model:
        running = np.empty_like(best)
        steps = np.empty((num_users, num_levels), dtype=np.int8)
    for t in range(1, max_len):
        if base_model:
            # Stay or step up by one, unweighted (Equation 4).  A tie
            # between stepping and staying resolves to the step; maximum()
            # keeps the value path identical to the scalar kernel's
            # branch (the chosen predecessor, then + score).
            shifted[:, 1:] = best[:, :-1]
            np.greater_equal(shifted, best, out=came)
            step_taken[t] = came
            np.maximum(shifted, best, out=best)
            best += scores[t]
        else:
            # Generic weighted recursion; the largest δ wins ties, exactly
            # like the scalar kernel's reversed argmax.
            np.add(best, penalties[0], out=running)
            steps.fill(0)
            for delta in range(1, max_step + 1):
                shifted[:, :delta] = -np.inf  # level < δ unreachable by δ-step
                if delta < num_levels:
                    np.add(best[:, :-delta], penalties[delta], out=shifted[:, delta:])
                np.greater_equal(shifted, running, out=came)
                np.copyto(running, shifted, where=came)
                steps[came] = delta
            step_taken[t] = steps
            np.add(running, scores[t], out=best)
        group = finish_at.get(t)
        if group is not None:
            final_best[group] = best[group]

    # np.argmax returns the first (lowest) index among ties — the same
    # conservative final-level rule as the scalar kernels.
    final_levels = np.argmax(final_best, axis=1)
    log_likelihoods = final_best[np.arange(num_users), final_levels]

    levels = np.zeros((num_users, max_len), dtype=np.int64)
    current = final_levels.astype(np.int64)
    active = np.zeros(num_users, dtype=bool)
    user_index = np.arange(num_users)
    # Feasible paths stay in [0, num_levels) by construction; only
    # infeasible problems (every path -inf, e.g. staying forbidden on a
    # sequence longer than the level count) can walk out of bounds, where
    # the backtrack is meaningless anyway — clamp only then, keeping the
    # per-step gather in-bounds instead of crashing.
    clamp = bool(np.isneginf(log_likelihoods).any())
    for t in range(max_len - 1, -1, -1):
        group = finish_at.get(t)
        if group is not None:
            active[group] = True
        levels[active, t] = current[active]
        if t:
            delta = step_taken[t][user_index, current].astype(np.int64)
            np.subtract(current, delta, out=current, where=active)
            if clamp:
                np.maximum(current, 0, out=current)
                np.minimum(current, num_levels - 1, out=current)
    return levels, log_likelihoods


def batch_viterbi(
    scores: np.ndarray,
    lengths: np.ndarray,
    *,
    max_step: int = 1,
    step_log_penalties: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the monotone-path recursion over a padded batch.

    Parameters
    ----------
    scores:
        ``(U, T_max, S)`` array; ``scores[u, t, s]`` is the log-likelihood
        of user ``u``'s ``t``-th action at level ``s``.  Entries at
        ``t >= lengths[u]`` are padding and never influence results.
    lengths:
        ``(U,)`` true sequence lengths, each in ``[1, T_max]``.

    Returns
    -------
    (levels, log_likelihoods)
        ``levels`` is ``(U, T_max)`` int64 (entries past a user's length
        are zero-padding); ``log_likelihoods`` is ``(U,)``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 3:
        raise ConfigurationError(f"scores must be 3-D, got shape {scores.shape}")
    num_users, max_len, num_levels = scores.shape
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (num_users,):
        raise ConfigurationError("lengths must have one entry per batch row")
    penalties = _check_penalties(step_log_penalties, max_step)
    if num_users == 0:
        return np.empty((0, max_len), dtype=np.int64), np.empty(0, dtype=np.float64)
    if num_levels == 0:
        raise ConfigurationError("need at least one skill level")
    if max_len == 0 or lengths.min() < 1 or lengths.max() > max_len:
        raise ConfigurationError("lengths must lie in [1, T_max]")
    time_major = np.ascontiguousarray(scores.transpose(1, 0, 2))
    return _viterbi_time_major(time_major, lengths, max_step, penalties)


@dataclass(frozen=True)
class _SlabPlan:
    """Precomputed pad/gather structure for one length bucket."""

    indices: np.ndarray  # (U_slab,) positions into the original user list
    lengths: np.ndarray  # (U_slab,) true sequence lengths
    rows_time_major: np.ndarray  # (T_max, U_slab) padded catalog rows
    prefix: np.ndarray  # (U_slab, T_max) bool validity mask
    dest: np.ndarray  # flat positions of the slab's actions in user order

    def finish_groups(self) -> dict[int, np.ndarray]:
        """Cached finish-time groups: the slab's lengths never change."""
        groups = self.__dict__.get("_finish_groups")
        if groups is None:
            groups = _finish_groups(self.lengths)
            object.__setattr__(self, "_finish_groups", groups)
        return groups

    def score_buffer(self, num_levels: int) -> np.ndarray:
        """Reusable ``(T_max, U_slab, S)`` gather destination.

        A training loop replays the same plan dozens of times; writing
        each iteration's gathered scores into one cached buffer avoids a
        multi-megabyte allocation per slab per iteration.  Callers must
        consume the buffer before the next ``batch_assign_flat`` call on
        the same plan (the engine's batched path does)."""
        shape = (*self.rows_time_major.shape, num_levels)
        buffer = self.__dict__.get("_score_buffer")
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape, dtype=np.float64)
            object.__setattr__(self, "_score_buffer", buffer)
        return buffer


@dataclass(frozen=True)
class BatchPlan:
    """Reusable batching structure for a fixed set of user sequences.

    The expensive parts of a batched assign call — length bucketing,
    padding, and the scatter indices that put per-slab results back into
    one flat user-ordered array — depend only on ``user_rows``, not on the
    score table.  A training loop assigns the *same* users every
    iteration, so :class:`~repro.core.engine.AssignmentEngine` builds this
    plan once and replays it against each iteration's fresh scores.
    """

    user_rows: list[np.ndarray]
    num_levels: int
    offsets: np.ndarray  # (U+1,) action-count prefix sums in user order
    slabs: tuple[_SlabPlan, ...]

    @property
    def num_users(self) -> int:
        return len(self.user_rows)

    @property
    def total_actions(self) -> int:
        return int(self.offsets[-1])


def prepare_batch(user_rows: list[np.ndarray], num_levels: int) -> BatchPlan:
    """Build the reusable pad/bucket/scatter structure for ``user_rows``."""
    if num_levels <= 0:
        raise ConfigurationError("need at least one skill level")
    num_users = len(user_rows)
    lengths_all = np.fromiter(
        (len(rows) for rows in user_rows), dtype=np.int64, count=num_users
    )
    offsets = np.zeros(num_users + 1, dtype=np.int64)
    np.cumsum(lengths_all, out=offsets[1:])
    occupied = [int(i) for i in np.flatnonzero(lengths_all)]
    slabs = []
    for slab in _length_buckets(user_rows, occupied, num_levels):
        indices = np.asarray(slab, dtype=np.int64)
        lengths = lengths_all[indices]
        max_len = int(lengths.max())
        padded_rows = np.zeros((len(slab), max_len), dtype=np.int64)
        # Prefix masks make the pad one boolean scatter of the slab's
        # concatenated rows instead of one small copy per user.
        prefix = np.arange(max_len) < lengths[:, None]
        padded_rows[prefix] = np.concatenate([user_rows[i] for i in slab])
        # Each user's actions land at offsets[u] .. offsets[u] + len - 1 of
        # the flat array; masking the padded position grid with the same
        # prefix yields those destinations in slab-result order.
        dest = (offsets[indices][:, None] + np.arange(max_len))[prefix]
        slabs.append(
            _SlabPlan(
                indices=indices,
                lengths=lengths,
                rows_time_major=np.ascontiguousarray(padded_rows.T),
                prefix=prefix,
                dest=dest,
            )
        )
    return BatchPlan(
        user_rows=user_rows,
        num_levels=num_levels,
        offsets=offsets,
        slabs=tuple(slabs),
    )


def batch_assign_flat(
    item_scores: np.ndarray,
    plan: BatchPlan,
    *,
    max_step: int = 1,
    step_log_penalties: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Assign every planned user against a fresh item-major score table.

    Returns ``(flat_levels, log_likelihoods)``: all users' levels
    concatenated in user order (``plan.offsets`` delimits users) and one
    log-likelihood per user (0.0 for empty sequences).  Levels are
    bit-identical to :func:`batch_assign_item_major` on the same inputs.
    """
    item_scores = np.asarray(item_scores, dtype=np.float64)
    if item_scores.ndim != 2:
        raise ConfigurationError(
            f"item_scores must be 2-D, got shape {item_scores.shape}"
        )
    if item_scores.shape[1] != plan.num_levels:
        raise ConfigurationError(
            f"score table has {item_scores.shape[1]} levels, plan expects {plan.num_levels}"
        )
    penalties = _check_penalties(step_log_penalties, max_step)
    flat = np.zeros(plan.total_actions, dtype=np.int64)
    lls = np.zeros(plan.num_users, dtype=np.float64)
    for slab in plan.slabs:
        # Gathering with the time-major pad yields the stacked scores
        # directly (no transpose copy); mode="clip" lets take() write the
        # cached buffer without an intermediate copy.  Rows come from
        # catalog encoding, so they are in-range and clipping never fires.
        scores = slab.score_buffer(plan.num_levels)  # (T_max, U_slab, S)
        np.take(item_scores, slab.rows_time_major, axis=0, out=scores, mode="clip")
        levels, slab_lls = _viterbi_time_major(
            scores, slab.lengths, max_step, penalties, slab.finish_groups()
        )
        flat[slab.dest] = levels[slab.prefix]
        lls[slab.indices] = slab_lls
    return flat, lls


def batch_assign_item_major(
    item_scores: np.ndarray,
    user_rows: list[np.ndarray],
    *,
    max_step: int = 1,
    step_log_penalties: np.ndarray | None = None,
) -> list[PathResult]:
    """Batched assignment over an item-major ``(num_items, S)`` table.

    This is the layout the shared-memory pooled workers read directly:
    gathering a user's rows is one fancy-index (which always copies, so a
    worker never keeps a live view into the shared segment).
    """
    item_scores = np.asarray(item_scores, dtype=np.float64)
    if item_scores.ndim != 2:
        raise ConfigurationError(
            f"item_scores must be 2-D, got shape {item_scores.shape}"
        )
    num_levels = item_scores.shape[1]
    plan = prepare_batch(user_rows, num_levels)
    flat, lls = batch_assign_flat(
        item_scores, plan, max_step=max_step, step_log_penalties=step_log_penalties
    )
    return [
        PathResult(
            levels=flat[plan.offsets[i] : plan.offsets[i + 1]].copy(),
            log_likelihood=float(lls[i]),
        )
        for i in range(plan.num_users)
    ]


def _length_buckets(
    user_rows: list[np.ndarray], occupied: list[int], num_levels: int
) -> list[list[int]]:
    """Split non-empty users into length-sorted, memory-bounded slabs."""
    if not occupied:
        return []
    index = np.asarray(occupied, dtype=np.int64)
    lengths = np.fromiter(
        (len(user_rows[i]) for i in occupied), dtype=np.int64, count=len(occupied)
    )
    ordered = index[np.argsort(lengths, kind="stable")]
    num_buckets = min(_MAX_BUCKETS, max(1, len(ordered) // _MIN_BUCKET_USERS))
    slabs: list[list[int]] = []
    for bucket in np.array_split(ordered, num_buckets):
        if not len(bucket):
            continue
        # Sorted order puts the bucket's longest user last.
        cap = len(user_rows[bucket[-1]])
        slab_users = max(1, _MAX_SLAB_CELLS // (cap * num_levels))
        for start in range(0, len(bucket), slab_users):
            slabs.append([int(i) for i in bucket[start : start + slab_users]])
    return slabs


def batch_assign(
    score_table: np.ndarray,
    user_rows: list[np.ndarray],
    *,
    max_step: int = 1,
    step_log_penalties: np.ndarray | None = None,
) -> list[PathResult]:
    """Best monotone path for every user against a ``(S, num_items)`` score
    table — the batched equivalent of running
    :func:`~repro.core.dp.best_monotone_path` per user on
    ``score_table[:, rows].T``.

    Results are returned in ``user_rows`` order and are bit-identical to
    the per-user kernel (levels and log-likelihoods, all tie cases).
    """
    score_table = np.asarray(score_table, dtype=np.float64)
    if score_table.ndim != 2:
        raise ConfigurationError(
            f"score_table must be 2-D, got shape {score_table.shape}"
        )
    return batch_assign_item_major(
        np.ascontiguousarray(score_table.T),
        user_rows,
        max_step=max_step,
        step_log_penalties=step_log_penalties,
    )
