"""Soft-assignment (EM) training of the progression model.

The paper adopts Yang et al.'s *hard* assignment scheme because full EM
"takes too long ... for this kind of problems" (Section IV-B; Yang et al.
report hard assignment running ~1000× faster with comparable fit).  This
module implements the EM alternative so that the claim is measurable in
this repository (``benchmarks/test_ablation_hard_vs_soft.py``):

- the latent skill path is a left-to-right HMM over levels ``1..S`` with
  transitions *stay* (probability ``1 − q``) and *step up one* (``q``),
  and a uniform initial distribution — the sum-product counterpart of the
  DP's max-product search;
- the E-step runs forward–backward per user to get per-action level
  responsibilities;
- the M-step refits every ``θ_f(s)`` from those fractional
  responsibilities (:meth:`SkillParameters.fit_from_responsibilities`).

The observed-data log-likelihood is monotone under EM, giving the same
convergence criterion shape as the hard trainer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

from repro.core.features import FeatureSet
from repro.core.model import SkillModel, SkillParameters, TrainingTrace
from repro.core.training import uniform_segment_levels
from repro.data.actions import ActionLog
from repro.data.items import ItemCatalog
from repro.exceptions import ConfigurationError, DataError
from repro.obs.logging import current_run_id, get_logger
from repro.obs.metrics import get_registry
from repro.obs.telemetry import IterationRecord, TelemetryBuilder

_log = get_logger("core.soft_em")

__all__ = ["SoftEMConfig", "fit_soft_em", "forward_backward"]


@dataclass(frozen=True)
class SoftEMConfig:
    """Hyper-parameters of the EM trainer.

    ``step_up_prob`` is the fixed transition probability ``q``; the paper's
    base model treats transitions as unweighted, so ``q`` mainly acts as a
    mild prior on progression speed.
    """

    num_levels: int
    step_up_prob: float = 0.1
    smoothing: float = 0.01
    init_min_actions: int = 50
    max_iterations: int = 50
    tol: float = 1e-6

    def __post_init__(self) -> None:
        if self.num_levels < 1:
            raise ConfigurationError("num_levels must be >= 1")
        if not 0 < self.step_up_prob < 1:
            raise ConfigurationError("step_up_prob must be in (0, 1)")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")


def forward_backward(
    emissions: np.ndarray, step_up_prob: float
) -> tuple[np.ndarray, float]:
    """Responsibilities and log-likelihood of one monotone sequence.

    ``emissions[n, s]`` is ``log P(i_n | level s)``.  Returns
    ``(gamma, log_likelihood)`` where ``gamma[n, s] = P(level_n = s | data)``.
    """
    emissions = np.asarray(emissions, dtype=np.float64)
    if emissions.ndim != 2:
        raise ConfigurationError("emissions must be 2-D")
    n, num_levels = emissions.shape
    if n == 0:
        return np.zeros((0, num_levels)), 0.0
    log_stay = np.log1p(-step_up_prob)
    log_up = np.log(step_up_prob)
    log_init = -np.log(num_levels)

    alpha = np.empty((n, num_levels))
    alpha[0] = log_init + emissions[0]
    for t in range(1, n):
        stay = alpha[t - 1] + log_stay
        up = np.full(num_levels, -np.inf)
        up[1:] = alpha[t - 1, :-1] + log_up
        # The top level cannot step up; its full mass stays.  Folding the
        # lost "up" mass back keeps the chain properly normalized.
        stay[-1] = np.logaddexp(alpha[t - 1, -1] + log_stay, alpha[t - 1, -1] + log_up)
        alpha[t] = np.logaddexp(stay, up) + emissions[t]

    beta = np.zeros((n, num_levels))
    for t in range(n - 2, -1, -1):
        incoming = beta[t + 1] + emissions[t + 1]
        stay = incoming + log_stay
        stay[-1] = np.logaddexp(incoming[-1] + log_stay, incoming[-1] + log_up)
        up = np.full(num_levels, -np.inf)
        up[:-1] = incoming[1:] + log_up
        beta[t] = np.logaddexp(stay, up)

    log_likelihood = float(logsumexp(alpha[-1]))
    gamma = alpha + beta - log_likelihood
    return np.exp(gamma), log_likelihood


def fit_soft_em(
    log: ActionLog,
    catalog: ItemCatalog,
    feature_set: FeatureSet,
    config: SoftEMConfig,
) -> SkillModel:
    """EM training; returns a :class:`SkillModel` whose per-action levels
    are the argmax responsibilities (so it is drop-in comparable with the
    hard trainer's output)."""
    if log.num_actions == 0:
        raise DataError("cannot train on an empty action log")
    encoded = feature_set.encode(catalog)
    users = list(log.users)
    user_rows = [encoded.rows_for_sequence(log.sequence(u)) for u in users]
    all_rows = np.concatenate(user_rows)

    # Same initialization as the hard trainer: uniform segments of U_{>=N}.
    init_rows, init_levels = [], []
    for rows in user_rows:
        if len(rows) >= config.init_min_actions:
            init_rows.append(rows)
            init_levels.append(uniform_segment_levels(len(rows), config.num_levels))
    if not init_rows:
        for rows in user_rows:
            init_rows.append(rows)
            init_levels.append(uniform_segment_levels(len(rows), config.num_levels))
    parameters = SkillParameters.fit_from_assignments(
        encoded,
        np.concatenate(init_rows),
        np.concatenate(init_levels),
        num_levels=config.num_levels,
        smoothing=config.smoothing,
    )

    registry = get_registry()
    builder = TelemetryBuilder(run_id=current_run_id(), stages=("e_step", "m_step"))
    fit_start = registry.clock()
    log_likelihoods: list[float] = []
    converged = False
    responsibilities = np.zeros((len(all_rows), config.num_levels))
    for _ in range(config.max_iterations):
        improvement = None
        with registry.span("soft_em.iteration") as iteration_span:
            with registry.span("e_step") as e_span:
                table = parameters.item_score_table(encoded)
                total_ll = 0.0
                offset = 0
                for rows in user_rows:
                    gamma, ll = forward_backward(table[:, rows].T, config.step_up_prob)
                    responsibilities[offset : offset + len(rows)] = gamma
                    offset += len(rows)
                    total_ll += ll
            m_elapsed = 0.0
            if log_likelihoods:
                previous = log_likelihoods[-1]
                improvement = total_ll - previous
                log_likelihoods.append(total_ll)
                if abs(improvement) <= config.tol * max(1.0, abs(previous)):
                    converged = True
            else:
                log_likelihoods.append(total_ll)
            if not converged:
                with registry.span("m_step") as m_span:
                    parameters = SkillParameters.fit_from_responsibilities(
                        encoded, all_rows, responsibilities, smoothing=config.smoothing
                    )
                m_elapsed = m_span.elapsed
        registry.gauge("soft_em.log_likelihood").set(total_ll)
        builder.record_iteration(
            IterationRecord(
                iteration=len(log_likelihoods),
                log_likelihood=total_ll,
                improvement=improvement,
                stage_seconds={
                    "e_step": e_span.elapsed,
                    "m_step": m_elapsed,
                    "iteration": iteration_span.elapsed,
                },
                unchanged_users=None,
                level_histogram=(),
                level_drift=None,
            )
        )
        _log.info(
            "em iteration",
            extra={
                "obs": {
                    "iteration": len(log_likelihoods),
                    "log_likelihood": round(total_ll, 3),
                }
            },
        )
        if converged:
            break

    assignments = {}
    times = {}
    offset = 0
    for user, rows in zip(users, user_rows):
        gamma = responsibilities[offset : offset + len(rows)]
        offset += len(rows)
        assignments[user] = np.argmax(gamma, axis=1).astype(np.int64) + 1
        times[user] = np.asarray(log.sequence(user).times, dtype=np.float64)
    trace = TrainingTrace(
        log_likelihoods=tuple(log_likelihoods),
        converged=converged,
        num_iterations=len(log_likelihoods),
    )
    telemetry = builder.build(
        log_likelihoods=tuple(log_likelihoods),
        pool_events={},
        converged=converged,
        total_seconds=registry.clock() - fit_start,
    )
    return SkillModel(
        parameters=parameters,
        encoded=encoded,
        assignments=assignments,
        trace=trace,
        _assignment_times=times,
        telemetry=telemetry,
    )
