"""The multi-faceted skill model (paper Section IV).

Two classes live here:

- :class:`SkillParameters` — the ``S × F`` grid of observation
  distributions ``θ_f(s)`` plus vectorized scoring: ``log P(i | s)`` for
  every catalog item at every level in one array.
- :class:`SkillModel` — a *fitted* model: parameters, the skill levels
  assigned to every training action, and the encoded catalog, with the
  query API used by difficulty estimation, interpretation, and the
  prediction tasks.

Training logic (initialization, the assignment/update alternation,
convergence) is in :mod:`repro.core.training`; this module only knows how
to score and how to re-estimate parameters from a fixed assignment.
"""

from __future__ import annotations

import dataclasses
import weakref
from collections.abc import Hashable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.distributions import Categorical, distribution_for_kind
from repro.core.features import EncodedItems, FeatureKind, FeatureSet, ID_FEATURE
from repro.data.actions import ActionLog
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.obs.metrics import get_registry
from repro.obs.telemetry import TrainingTelemetry

__all__ = ["ScoreTableCache", "SkillParameters", "SkillModel", "TrainingTrace"]


def _cell_cache_key(dist: object) -> tuple | None:
    """A value key identifying a cell's fitted parameters.

    Distribution cells are frozen dataclasses of floats (plus the
    categorical probability vector), so two cells with equal keys produce
    identical ``log_prob`` rows.  Unknown cell types return ``None`` and
    are simply never cached.
    """
    if not dataclasses.is_dataclass(dist):
        return None
    parts: list[object] = [type(dist).__name__]
    for spec in dataclasses.fields(dist):
        value = getattr(dist, spec.name)
        parts.append(value.tobytes() if isinstance(value, np.ndarray) else value)
    return tuple(parts)


class ScoreTableCache:
    """Incremental row cache for :meth:`SkillParameters.item_score_table`.

    The score table is rebuilt from scratch every training iteration, but
    late iterations change few assignments, so most ``θ_f(s)`` cells are
    refit to *identical* parameters — and their ``log P_f(column | θ)``
    rows are identical too.  This cache keys each (level, feature) row on
    the cell's fitted parameters and recomputes only rows whose cell
    actually changed; a warm iteration with unchanged assignments rebuilds
    zero rows.

    One cache serves one encoded catalog at a time (tracked by identity
    via a weak reference; a different catalog resets it).  Hits and
    misses accumulate on the instance and stream into the active metrics
    registry as ``score_cache.hits`` / ``score_cache.misses``.

    Even rows that *miss* are cheaper through the cache: per-feature
    column statistics (``log x``, ``gammaln(k + 1)`` — the
    level-independent transcendental terms, see ``column_stats`` on the
    distributions) are computed once per catalog and shared by all
    ``num_levels`` cells of the feature, so mid-training rebuilds where
    every cell changed still skip the dominant cost.

    Not thread-safe: a cache belongs to one training loop, mirroring how
    the trainer owns its worker pool.
    """

    def __init__(self) -> None:
        self._rows: dict[tuple[int, int], tuple[tuple, np.ndarray]] = {}
        self._stats: dict[int, object] = {}
        self._encoded_ref: weakref.ref | None = None
        self.hits = 0
        self.misses = 0

    def _rows_for(self, encoded: EncodedItems) -> dict:
        current = self._encoded_ref() if self._encoded_ref is not None else None
        if current is not encoded:
            self._rows.clear()
            self._stats.clear()
            self._encoded_ref = weakref.ref(encoded)
        return self._rows

    def row(
        self, level: int, feature: int, cell: object, encoded: EncodedItems
    ) -> np.ndarray:
        """The ``log P`` row of ``cell`` over feature ``feature``'s column,
        reusing the previous iteration's row when the cell is unchanged."""
        rows = self._rows_for(encoded)
        key = _cell_cache_key(cell)
        registry = get_registry()
        if key is not None:
            entry = rows.get((level, feature))
            if entry is not None and entry[0] == key:
                self.hits += 1
                registry.counter("score_cache.hits").inc()
                return entry[1]
        if feature not in self._stats:
            compute = getattr(type(cell), "column_stats", None)
            self._stats[feature] = (
                None if compute is None else compute(encoded.columns[feature])
            )
        stats = self._stats[feature]
        if stats is not None:
            values = cell.log_prob_from_stats(stats)
        else:
            values = cell.log_prob(encoded.columns[feature])
        self.misses += 1
        registry.counter("score_cache.misses").inc()
        if key is not None:
            rows[(level, feature)] = (key, values)
        return values


@dataclass(frozen=True)
class SkillParameters:
    """The ``θ_f(s)`` grid: ``cells[s][f]`` is the distribution of feature
    ``f`` under skill level ``s`` (0-based level index)."""

    feature_set: FeatureSet
    num_levels: int
    cells: tuple[tuple[object, ...], ...]

    def __post_init__(self) -> None:
        if self.num_levels <= 0:
            raise ConfigurationError("num_levels must be positive")
        if len(self.cells) != self.num_levels:
            raise ConfigurationError(
                f"expected {self.num_levels} level rows, got {len(self.cells)}"
            )
        for row in self.cells:
            if len(row) != len(self.feature_set):
                raise ConfigurationError(
                    f"expected {len(self.feature_set)} feature cells per level, got {len(row)}"
                )

    def distribution(self, feature_name: str, level: int) -> object:
        """The distribution of ``feature_name`` at 1-based skill ``level``."""
        _check_level(level, self.num_levels)
        return self.cells[level - 1][self.feature_set.index_of_feature(feature_name)]

    def item_score_table(
        self, encoded: EncodedItems, *, cache: ScoreTableCache | None = None
    ) -> np.ndarray:
        """``log P(i | s)`` for every item at every level.

        Returns an array of shape ``(num_levels, num_items)``.  This is the
        workhorse of the assignment step: each training iteration computes
        it once, then every user's DP just gathers rows from it.

        ``cache`` makes the build incremental across iterations: only the
        (level, feature) rows whose fitted cell changed since the previous
        call are recomputed (see :class:`ScoreTableCache`).
        """
        if encoded.feature_set is not self.feature_set and (
            encoded.feature_set.names != self.feature_set.names
        ):
            raise ConfigurationError("encoded items do not match the model's feature set")
        table = np.zeros((self.num_levels, encoded.num_items), dtype=np.float64)
        for f, _spec in enumerate(self.feature_set):
            column = encoded.columns[f]
            for s in range(self.num_levels):
                cell = self.cells[s][f]
                if cache is not None:
                    table[s] += cache.row(s, f, cell, encoded)
                else:
                    table[s] += cell.log_prob(column)
        return table

    @classmethod
    def fit_from_assignments(
        cls,
        encoded: EncodedItems,
        action_rows: np.ndarray,
        action_levels: np.ndarray,
        *,
        num_levels: int,
        smoothing: float = 0.01,
        cell_fitter=None,
    ) -> "SkillParameters":
        """Update step (Equations 5-7): per-(feature, level) MLE over the
        actions assigned to that level.

        ``action_rows[k]`` is the catalog row of the item in the k-th
        action; ``action_levels[k]`` its assigned 0-based level.
        ``cell_fitter``, when given, is a callable
        ``(jobs, fit_one) -> list`` used to parallelize the independent
        per-cell fits (see :mod:`repro.core.parallel`).

        Statistics are accumulated in one pass by
        :class:`~repro.core.stats.SkillStats`; callers that track an
        assignment across iterations should keep the stats object and use
        :meth:`fit_from_stats` with ``dirty_levels`` instead.
        """
        from repro.core.stats import SkillStats

        stats = SkillStats.from_assignments(
            encoded, action_rows, action_levels, num_levels=num_levels
        )
        return cls.fit_from_stats(stats, smoothing=smoothing, cell_fitter=cell_fitter)

    @classmethod
    def fit_from_stats(
        cls,
        stats,
        *,
        smoothing: float = 0.01,
        cell_fitter=None,
        previous: "SkillParameters | None" = None,
        dirty_levels=None,
    ) -> "SkillParameters":
        """Update step from accumulated sufficient statistics.

        With ``dirty_levels`` (an iterable of 0-based level indices),
        only those levels' cells are refit; every other level row is
        reused from ``previous`` — valid because a cell's statistics are
        untouched when no action entered or left its level.  This is what
        makes the incremental M-step's cost scale with churn.
        """
        feature_set = stats.feature_set
        num_levels = stats.num_levels
        num_features = len(feature_set)
        if dirty_levels is None:
            dirty = list(range(num_levels))
        else:
            if previous is None:
                raise ConfigurationError("dirty_levels requires previous parameters")
            dirty = sorted({int(s) for s in dirty_levels})
            if dirty and not (0 <= dirty[0] and dirty[-1] < num_levels):
                raise ConfigurationError("dirty level outside [0, num_levels)")

        def fit_one(job: tuple[int, int]):
            s, f = job
            return stats.fit_cell(s, f, smoothing=smoothing)

        jobs = [(s, f) for s in dirty for f in range(num_features)]
        if cell_fitter is None:
            fitted = [fit_one(job) for job in jobs]
        else:
            fitted = cell_fitter(jobs, fit_one)
        refit = {
            s: tuple(fitted[i * num_features : (i + 1) * num_features])
            for i, s in enumerate(dirty)
        }
        cells = tuple(
            refit[s] if s in refit else previous.cells[s] for s in range(num_levels)
        )
        return cls(feature_set=feature_set, num_levels=num_levels, cells=cells)

    @classmethod
    def fit_from_responsibilities(
        cls,
        encoded: EncodedItems,
        action_rows: np.ndarray,
        responsibilities: np.ndarray,
        *,
        smoothing: float = 0.01,
    ) -> "SkillParameters":
        """Soft-assignment (EM) update used only by the ablation benchmark.

        ``responsibilities`` has shape ``(n_actions, num_levels)`` with rows
        summing to one.
        """
        action_rows = np.asarray(action_rows, dtype=np.int64)
        responsibilities = np.asarray(responsibilities, dtype=np.float64)
        if responsibilities.ndim != 2 or responsibilities.shape[0] != len(action_rows):
            raise ConfigurationError("responsibilities must be (n_actions, num_levels)")
        num_levels = responsibilities.shape[1]
        feature_set = encoded.feature_set
        # Features-outer so each column is gathered once, not once per
        # level.  Each fit still goes through the distribution's
        # sufficient-statistics path (``fit`` delegates to
        # ``fit_from_stats``), and the level's responsibility column is
        # passed as the strided view itself — so results stay bit-identical
        # to ``dist.fit(values, weights=responsibilities[:, s])``.
        grid: list[list[object]] = [[None] * len(feature_set) for _ in range(num_levels)]
        for f, spec in enumerate(feature_set):
            values = encoded.columns[f][action_rows]
            dist_cls = distribution_for_kind(spec.kind)
            for s in range(num_levels):
                weights = responsibilities[:, s]
                if spec.kind is FeatureKind.CATEGORICAL:
                    vocab = encoded.vocabularies[f]
                    assert vocab is not None
                    grid[s][f] = dist_cls.fit(
                        values,
                        num_categories=len(vocab),
                        smoothing=smoothing,
                        weights=weights,
                    )
                else:
                    grid[s][f] = dist_cls.fit(values, weights=weights)
        cells = tuple(tuple(row) for row in grid)
        return cls(feature_set=feature_set, num_levels=num_levels, cells=cells)


@dataclass(frozen=True)
class TrainingTrace:
    """Per-iteration diagnostics recorded by the trainer."""

    log_likelihoods: tuple[float, ...]
    converged: bool
    num_iterations: int

    @property
    def final_log_likelihood(self) -> float:
        if not self.log_likelihoods:
            raise NotFittedError("training trace is empty")
        return self.log_likelihoods[-1]


@dataclass(frozen=True)
class SkillModel:
    """A fitted skill-improvement model.

    Skill levels in the public API are **1-based** (``1..S``) to match the
    paper; internal arrays are 0-based.
    """

    parameters: SkillParameters
    encoded: EncodedItems
    assignments: Mapping[Hashable, np.ndarray]  # user -> 1-based levels per action
    trace: TrainingTrace
    _assignment_times: Mapping[Hashable, np.ndarray] = field(repr=False, default=None)
    #: Observability record of the fit (stage timings, pool events,
    #: checkpoints); ``None`` for models built outside the trainers.
    telemetry: TrainingTelemetry | None = field(repr=False, compare=False, default=None)

    @property
    def num_levels(self) -> int:
        return self.parameters.num_levels

    @property
    def feature_set(self) -> FeatureSet:
        return self.parameters.feature_set

    @property
    def log_likelihood(self) -> float:
        """Training log-likelihood at the final iteration (Equation 3)."""
        return self.trace.final_log_likelihood

    # ---------------------------------------------------------------- skills

    def skill_trajectory(self, user: Hashable) -> np.ndarray:
        """The 1-based skill level at each of ``user``'s training actions."""
        try:
            return self.assignments[user]
        except KeyError:
            raise DataError(f"user {user!r} was not in the training data") from None

    def skill_at(self, user: Hashable, time: float) -> int:
        """Skill level at an arbitrary time, inferred from the
        chronologically closest training action (paper Section VI-B)."""
        levels = self.skill_trajectory(user)
        if self._assignment_times is None or user not in self._assignment_times:
            raise NotFittedError("model was fitted without per-action times")
        times = self._assignment_times[user]
        nearest = int(np.argmin(np.abs(times - time)))
        return int(levels[nearest])

    def all_assigned_levels(self) -> np.ndarray:
        """Every assigned level over all users/actions, concatenated."""
        if not self.assignments:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self.assignments[u] for u in self.assignments])

    def empirical_skill_prior(self) -> np.ndarray:
        """``P(s)`` estimated from the training assignments (Section V-B.2).

        Returns an array of length ``S`` summing to one.
        """
        levels = self.all_assigned_levels()
        if len(levels) == 0:
            raise NotFittedError("no assignments recorded")
        counts = np.bincount(levels - 1, minlength=self.num_levels).astype(np.float64)
        return counts / counts.sum()

    # ----------------------------------------------------------------- items

    def item_score_table(self) -> np.ndarray:
        """``log P(i | s)`` over the training catalog, shape ``(S, |I|)``."""
        return self.parameters.item_score_table(self.encoded)

    def score_items(self, encoded: EncodedItems | None = None) -> np.ndarray:
        """``log P(i | s)`` for an arbitrary encoded catalog (e.g. unseen
        items for the generation-based difficulty of new products)."""
        return self.parameters.item_score_table(self.encoded if encoded is None else encoded)

    def posterior_skill_given_item(
        self,
        prior: np.ndarray | None = None,
        encoded: EncodedItems | None = None,
    ) -> np.ndarray:
        """``P(s | i)`` via Bayes' rule (Equation 10), shape ``(|I|, S)``.

        ``prior=None`` means the uniform prior ``P(s) = 1/S``.
        Computation is done in log space for numerical stability.
        """
        scores = self.score_items(encoded)  # (S, n_items), log-likelihoods
        if prior is None:
            log_prior = np.zeros(self.num_levels)
        else:
            prior = np.asarray(prior, dtype=np.float64)
            if prior.shape != (self.num_levels,):
                raise ConfigurationError(f"prior must have length {self.num_levels}")
            if np.any(prior < 0) or not np.isclose(prior.sum(), 1.0, atol=1e-8):
                raise ConfigurationError("prior must be a probability vector")
            with np.errstate(divide="ignore"):
                log_prior = np.log(prior)
        log_joint = scores + log_prior[:, None]  # (S, n_items)
        log_joint -= log_joint.max(axis=0, keepdims=True)
        joint = np.exp(log_joint)
        return (joint / joint.sum(axis=0, keepdims=True)).T

    def item_probabilities(self, level: int) -> np.ndarray:
        """``P(item id | s)`` from the ID feature's categorical cell.

        Only available when the feature set includes the ID feature;
        this backs the item-prediction task and the top-movies tables.
        Returned in the order of ``self.encoded.vocabulary(ID_FEATURE)``.
        """
        dist = self.parameters.distribution(ID_FEATURE, level)
        if not isinstance(dist, Categorical):
            raise ConfigurationError("ID feature is not categorical")
        return dist.probs

    def top_items(self, level: int, k: int = 10) -> list[tuple[Hashable, float]]:
        """The ``k`` most probable item ids at 1-based ``level`` with their
        probabilities (paper Tables IV/V)."""
        probs = self.item_probabilities(level)
        vocab = self.encoded.vocabulary(ID_FEATURE)
        order = np.argsort(-probs)[:k]
        return [(vocab[idx], float(probs[idx])) for idx in order]

    # ------------------------------------------------------------ inspection

    def feature_level_means(self, feature_name: str) -> list[float]:
        """Mean of ``feature_name``'s distribution at each level 1..S.

        This is what Figures 4-6 report (e.g. mean corrections per
        annotator, mean ABV) to show skill-dependent drift.
        """
        return [
            self.parameters.distribution(feature_name, level).mean()
            for level in range(1, self.num_levels + 1)
        ]

    def evaluate_log_likelihood(
        self, log: ActionLog, level_lookup
    ) -> float:
        """Held-out log-likelihood of ``log`` under this model.

        ``level_lookup(user, time)`` must return the 1-based level to score
        each action at (for the S-selection procedure this is the level of
        the nearest training action).  Items absent from the training
        catalog raise :class:`~repro.exceptions.SchemaError`.
        """
        table = self.item_score_table()
        total = 0.0
        for seq in log:
            for action in seq:
                row = self.encoded.index_of.get(action.item)
                if row is None:
                    raise DataError(f"item {action.item!r} not in the model's catalog")
                level = level_lookup(action.user, action.time)
                _check_level(level, self.num_levels)
                total += float(table[level - 1, row])
        return total


def _check_level(level: int, num_levels: int) -> None:
    if not 1 <= level <= num_levels:
        raise ConfigurationError(f"skill level {level} outside 1..{num_levels}")


def concatenate_assignments(
    users: Sequence[Hashable], assignments: Mapping[Hashable, np.ndarray]
) -> np.ndarray:
    """Concatenate per-user level arrays in the given user order."""
    parts: Iterable[np.ndarray] = (assignments[user] for user in users)
    arrays = [np.asarray(part, dtype=np.int64) for part in parts]
    if not arrays:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(arrays)
