"""Feature schema: what distribution each item feature follows.

The skill model (Section IV-A) factorizes the likelihood of an item over
its features, with a distribution family chosen per feature:

- categorical values (recipe category, beer style, movie genre, the item id
  itself) → categorical distributions,
- natural-number counts (number of recipe steps) → Poisson,
- positive reals (ABV, mean corrections per annotator) → gamma or
  log-normal.

:class:`FeatureSpec` declares one feature's name and family;
:class:`FeatureSet` bundles the specs for a domain and encodes an
:class:`~repro.data.items.ItemCatalog` into dense NumPy arrays
(:class:`EncodedItems`) that the trainer consumes.  Item ids are exposed to
the model as an ordinary categorical feature via :meth:`FeatureSpec.id_spec`
— that is exactly Yang et al.'s ID-only baseline when used alone.
"""

from __future__ import annotations

import enum
import weakref
from collections.abc import Hashable, Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.data.items import ItemCatalog
from repro.exceptions import ConfigurationError, SchemaError

__all__ = ["FeatureKind", "FeatureSpec", "FeatureSet", "EncodedItems", "ID_FEATURE"]

#: Reserved feature name under which the item id is encoded.
ID_FEATURE = "__item_id__"


class FeatureKind(enum.Enum):
    """Distribution family used to model a feature (paper Section IV-A)."""

    CATEGORICAL = "categorical"
    COUNT = "count"  # Poisson
    POSITIVE = "positive"  # gamma
    LOG_POSITIVE = "log_positive"  # log-normal


@dataclass(frozen=True)
class FeatureSpec:
    """Declaration of a single item feature.

    ``vocabulary`` is only meaningful for categorical features: if given,
    the category set is closed and unseen values raise
    :class:`~repro.exceptions.SchemaError`; if ``None``, the vocabulary is
    inferred from the catalog at encoding time.
    """

    name: str
    kind: FeatureKind
    vocabulary: tuple[Hashable, ...] | None = None

    def __post_init__(self) -> None:
        if self.vocabulary is not None:
            if self.kind is not FeatureKind.CATEGORICAL:
                raise ConfigurationError(
                    f"feature {self.name!r}: vocabulary is only valid for "
                    f"categorical features, not {self.kind.value}"
                )
            object.__setattr__(self, "vocabulary", tuple(self.vocabulary))
            if len(set(self.vocabulary)) != len(self.vocabulary):
                raise ConfigurationError(f"feature {self.name!r}: duplicate vocabulary entries")

    @property
    def is_id(self) -> bool:
        return self.name == ID_FEATURE

    @staticmethod
    def id_spec() -> "FeatureSpec":
        """The item-id-as-categorical feature (Yang et al.'s base model)."""
        return FeatureSpec(ID_FEATURE, FeatureKind.CATEGORICAL)


@dataclass(frozen=True)
class EncodedItems:
    """Catalog encoded into dense per-feature arrays.

    Attributes
    ----------
    item_ids:
        Item ids in row order.
    index_of:
        Inverse mapping: item id → row index.
    columns:
        One array per feature, ordered like ``feature_set.specs``.
        Categorical columns hold int64 category codes; count columns int64
        counts; positive columns float64 values.
    vocabularies:
        For each categorical feature, the category values in code order
        (``None`` for non-categorical features).
    """

    feature_set: "FeatureSet"
    item_ids: tuple[Hashable, ...]
    index_of: Mapping[Hashable, int]
    columns: tuple[np.ndarray, ...]
    vocabularies: tuple[tuple[Hashable, ...] | None, ...]

    @property
    def num_items(self) -> int:
        return len(self.item_ids)

    def column(self, name: str) -> np.ndarray:
        return self.columns[self.feature_set.index_of_feature(name)]

    def vocabulary(self, name: str) -> tuple[Hashable, ...]:
        vocab = self.vocabularies[self.feature_set.index_of_feature(name)]
        if vocab is None:
            raise ConfigurationError(f"feature {name!r} is not categorical")
        return vocab

    def rows_for(self, item_ids: Iterable[Hashable]) -> np.ndarray:
        """Row indices for a sequence of item ids (vectorized lookup)."""
        try:
            return np.fromiter(
                (self.index_of[i] for i in item_ids), dtype=np.int64
            )
        except KeyError as exc:
            raise SchemaError(f"item id {exc.args[0]!r} not in encoded catalog") from None

    def rows_for_sequence(self, sequence) -> np.ndarray:
        """Row indices for an action sequence's items, cached by identity.

        Sequences are immutable, so re-encoding the same
        :class:`~repro.data.actions.ActionSequence` always yields the same
        rows; training loops, ``resume_fit``, and ``extend_model``'s
        refit path all hit this cache instead of walking the id → row dict
        again.  Entries are keyed on the sequence's identity and dropped
        when it is garbage collected; the cache lives outside the dataclass
        fields (like ``Categorical._log_probs``) so equality and
        serialization are unaffected.  Callers must not mutate the
        returned array.
        """
        cache = self.__dict__.get("_sequence_rows")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_sequence_rows", cache)
        key = id(sequence)
        entry = cache.get(key)
        if entry is not None and entry[0]() is sequence:
            return entry[1]
        rows = self.rows_for(action.item for action in sequence)

        def _evict(ref: "weakref.ref", *, _cache=cache, _key=key) -> None:
            if _cache.get(_key, (None,))[0] is ref:
                del _cache[_key]

        cache[key] = (weakref.ref(sequence, _evict), rows)
        return rows


class FeatureSet:
    """An ordered collection of :class:`FeatureSpec` for one domain."""

    def __init__(self, specs: Iterable[FeatureSpec]):
        self.specs: tuple[FeatureSpec, ...] = tuple(specs)
        if not self.specs:
            raise ConfigurationError("a feature set needs at least one feature")
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate feature names in {names}")
        self._index = {spec.name: pos for pos, spec in enumerate(self.specs)}
        # id(catalog) -> (weakref to catalog, EncodedItems); see encode().
        self._encode_cache: dict[int, tuple] = {}

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.specs)

    def index_of_feature(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise ConfigurationError(f"no feature named {name!r} in this set") from None

    def with_id_feature(self) -> "FeatureSet":
        """This feature set plus the item-id categorical feature."""
        if ID_FEATURE in self._index:
            return self
        return FeatureSet((FeatureSpec.id_spec(), *self.specs))

    def subset(self, names: Iterable[str]) -> "FeatureSet":
        """A feature set restricted to ``names`` (preserving declared order)."""
        wanted = set(names)
        missing = wanted - set(self.names)
        if missing:
            raise ConfigurationError(f"unknown features requested: {sorted(missing)}")
        return FeatureSet(spec for spec in self.specs if spec.name in wanted)

    def to_json(self) -> list[dict]:
        """A JSON-serializable description, for persisting schemas to disk."""
        return [
            {
                "name": spec.name,
                "kind": spec.kind.value,
                "vocabulary": list(spec.vocabulary) if spec.vocabulary else None,
            }
            for spec in self.specs
        ]

    @classmethod
    def from_json(cls, payload: list[dict]) -> "FeatureSet":
        """Inverse of :meth:`to_json`."""
        try:
            return cls(
                FeatureSpec(
                    entry["name"],
                    FeatureKind(entry["kind"]),
                    tuple(entry["vocabulary"]) if entry.get("vocabulary") else None,
                )
                for entry in payload
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise ConfigurationError(f"malformed feature-set description: {exc}") from exc

    def encode(self, catalog: ItemCatalog) -> EncodedItems:
        """Encode every catalog item into dense arrays, validating values.

        Raises :class:`~repro.exceptions.SchemaError` when a value is
        incompatible with its declared family (negative count, non-positive
        gamma value, out-of-vocabulary category).

        Catalogs are treated as immutable, so encoding is memoized by
        catalog identity: repeated fits against the same catalog (a
        hyper-parameter sweep, the benchmark harness, ``resume_fit``)
        reuse one :class:`EncodedItems` — and with it the per-sequence
        row cache it accumulates — instead of re-walking every item.
        Entries are dropped when the catalog is garbage collected.
        """
        key = id(catalog)
        entry = self._encode_cache.get(key)
        if entry is not None and entry[0]() is catalog:
            return entry[1]
        encoded = self._encode(catalog)

        def _evict(ref: "weakref.ref", *, _cache=self._encode_cache, _key=key) -> None:
            if _cache.get(_key, (None,))[0] is ref:
                del _cache[_key]

        self._encode_cache[key] = (weakref.ref(catalog, _evict), encoded)
        return encoded

    def _encode(self, catalog: ItemCatalog) -> EncodedItems:
        item_ids = catalog.ids
        index_of = {item_id: pos for pos, item_id in enumerate(item_ids)}
        columns: list[np.ndarray] = []
        vocabularies: list[tuple[Hashable, ...] | None] = []
        for spec in self.specs:
            raw = (
                list(item_ids)
                if spec.is_id
                else catalog.feature_values(spec.name)
            )
            if spec.kind is FeatureKind.CATEGORICAL:
                column, vocab = _encode_categorical(spec, raw)
                columns.append(column)
                vocabularies.append(vocab)
            else:
                columns.append(_encode_numeric(spec, raw))
                vocabularies.append(None)
        return EncodedItems(
            feature_set=self,
            item_ids=item_ids,
            index_of=index_of,
            columns=tuple(columns),
            vocabularies=tuple(vocabularies),
        )


def _encode_categorical(
    spec: FeatureSpec, raw: list[Hashable]
) -> tuple[np.ndarray, tuple[Hashable, ...]]:
    if spec.vocabulary is not None:
        vocab = spec.vocabulary
        code_of = {value: code for code, value in enumerate(vocab)}
        codes = []
        for value in raw:
            if value not in code_of:
                raise SchemaError(
                    f"feature {spec.name!r}: value {value!r} outside closed vocabulary"
                )
            codes.append(code_of[value])
    else:
        code_of = {}
        codes = []
        for value in raw:
            if value not in code_of:
                code_of[value] = len(code_of)
            codes.append(code_of[value])
        vocab = tuple(code_of)
    return np.asarray(codes, dtype=np.int64), vocab


def _encode_numeric(spec: FeatureSpec, raw: list) -> np.ndarray:
    try:
        values = np.asarray(raw, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise SchemaError(f"feature {spec.name!r}: non-numeric value ({exc})") from None
    if not np.all(np.isfinite(values)):
        raise SchemaError(f"feature {spec.name!r}: non-finite values")
    if spec.kind is FeatureKind.COUNT:
        if np.any(values < 0) or np.any(values != np.floor(values)):
            raise SchemaError(f"feature {spec.name!r}: count values must be integers >= 0")
        return values.astype(np.int64)
    if spec.kind in (FeatureKind.POSITIVE, FeatureKind.LOG_POSITIVE):
        if np.any(values <= 0):
            raise SchemaError(f"feature {spec.name!r}: values must be strictly positive")
        return values
    raise ConfigurationError(f"unhandled feature kind {spec.kind!r}")
