"""Incremental model updates for arriving actions.

The skill-improvement problem is offline (the paper leans on that in
Section VI-F), but a deployed upskilling recommender sees new actions
continuously and cannot retrain from scratch per event.  Exploiting the
model's dependency structure once more: with parameters ``Θ`` fixed, a
user's optimal skill path depends only on *their own* sequence — so
absorbing new actions for some users requires exactly one DP per affected
user and nothing else.

:func:`extend_model` implements that fold-in, optionally followed by a few
full refinement iterations (``refit_iterations``) when enough data arrived
to warrant touching ``Θ``.  New users are supported; new *items* are not —
an ID-bearing parameter grid has no parameters for them, so they require a
scheduled retrain (the same boundary as
:meth:`~repro.core.model.SkillModel.score_items` documents).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.dp_batch import batch_assign
from repro.core.model import ScoreTableCache, SkillModel, SkillParameters, TrainingTrace
from repro.core.stats import SkillStats
from repro.data.actions import Action, ActionLog, ActionSequence
from repro.exceptions import ConfigurationError, DataError

__all__ = ["extend_model", "merge_actions"]


def merge_actions(log: ActionLog, new_actions: Iterable[Action]) -> ActionLog:
    """Merge arriving actions into a log without touching any model.

    The same merge :func:`extend_model` performs internally, exposed so a
    replay path (e.g. the serving fold-in worker bootstrapping from its
    write-ahead log) can reconstruct the merged log that corresponds to an
    already-published model.  Existing users get their new actions appended
    (and re-sorted by time); unknown users become new sequences appended in
    first-appearance order.
    """
    arrivals: dict = {}
    for action in new_actions:
        arrivals.setdefault(action.user, []).append(action)
    merged_sequences = []
    for seq in log:
        if seq.user in arrivals:
            merged_sequences.append(
                ActionSequence(seq.user, list(seq.actions) + arrivals.pop(seq.user))
            )
        else:
            merged_sequences.append(seq)
    for user, actions in arrivals.items():  # brand-new users
        merged_sequences.append(ActionSequence(user, actions))
    return ActionLog(merged_sequences)


def extend_model(
    model: SkillModel,
    log: ActionLog,
    new_actions: Iterable[Action],
    *,
    refit_iterations: int = 0,
    smoothing: float = 0.01,
    table_cache: ScoreTableCache | None = None,
) -> tuple[SkillModel, ActionLog]:
    """Fold new actions into a fitted model.

    Parameters
    ----------
    model:
        The fitted model to extend.
    log:
        The log the model was fitted on (the source of existing
        sequences).
    new_actions:
        Arriving actions.  Items must already exist in the model's
        catalog; users may be new.
    refit_iterations:
        0 (default) keeps ``Θ`` frozen and only re-assigns affected users
        — the cheap steady-state path.  A positive value additionally runs
        that many full assignment/update iterations afterwards.
    table_cache:
        Optional :class:`~repro.core.model.ScoreTableCache` to reuse across
        repeated fold-ins against the same parameters (the serving fold-in
        worker's steady state); a fresh private cache is used when omitted.

    Returns
    -------
    (updated model, updated log)
        The updated log contains the merged sequences and is what the next
        ``extend_model`` call should receive.

    An empty ``new_actions`` iterable is a **no-op**: the call returns
    ``(model, log)`` — the *same* objects, unmodified — so periodic callers
    (a drain loop waking up to nothing) need no emptiness guard.
    """
    new_actions = list(new_actions)
    if not new_actions:
        return model, log
    if refit_iterations < 0:
        raise ConfigurationError("refit_iterations must be >= 0")
    for action in new_actions:
        if action.item not in model.encoded.index_of:
            raise DataError(
                f"item {action.item!r} is not in the model's catalog; "
                "new items require a full retrain"
            )

    # Merge the new actions into the affected users' sequences.
    touched = {action.user for action in new_actions}
    merged_log = merge_actions(log, new_actions)

    # Re-assign only the touched users under the frozen parameters — one
    # batched DP over exactly the affected sequences.  Touched users are
    # processed in merged-log order, not set order, so the resulting
    # assignment-dict insertion order (and hence the serialized user order)
    # depends only on the merged log — never on how arrivals were batched.
    if table_cache is None:
        table_cache = ScoreTableCache()
    table = model.parameters.item_score_table(model.encoded, cache=table_cache)
    assignments = dict(model.assignments)
    times = dict(model._assignment_times)
    touched_order = [user for user in merged_log.users if user in touched]
    touched_seqs = [merged_log.sequence(user) for user in touched_order]
    touched_rows = [model.encoded.rows_for_sequence(seq) for seq in touched_seqs]
    for user, seq, result in zip(
        touched_order, touched_seqs, batch_assign(table, touched_rows)
    ):
        assignments[user] = (result.levels + 1).astype(np.int64)
        times[user] = np.asarray(seq.times, dtype=np.float64)

    parameters = model.parameters
    trace_lls = list(model.trace.log_likelihoods)
    if refit_iterations:
        users = list(merged_log.users)
        # Untouched users keep their original ActionSequence objects in the
        # merged log, so their rows come straight from the encoded
        # catalog's sequence cache instead of being re-encoded.
        user_rows = [
            model.encoded.rows_for_sequence(merged_log.sequence(u)) for u in users
        ]
        all_rows = np.concatenate(user_rows)
        stats: SkillStats | None = None
        prev_flat: np.ndarray | None = None
        for _ in range(refit_iterations):
            table = parameters.item_score_table(model.encoded, cache=table_cache)
            results = batch_assign(table, user_rows)
            level_arrays = [r.levels for r in results]
            total_ll = float(sum(r.log_likelihood for r in results))
            trace_lls.append(total_ll)
            flat_levels = np.concatenate(level_arrays)
            if stats is None:
                stats = SkillStats.from_assignments(
                    model.encoded, all_rows, flat_levels, num_levels=model.num_levels
                )
                parameters = SkillParameters.fit_from_stats(
                    stats, smoothing=smoothing
                )
            else:
                moved = np.flatnonzero(flat_levels != prev_flat)
                if len(moved):
                    dirty = stats.update(
                        all_rows[moved], prev_flat[moved], flat_levels[moved]
                    )
                    parameters = SkillParameters.fit_from_stats(
                        stats,
                        smoothing=smoothing,
                        previous=parameters,
                        dirty_levels=dirty,
                    )
            prev_flat = flat_levels
        assignments = {
            user: (levels + 1).astype(np.int64)
            for user, levels in zip(users, level_arrays)
        }
        times = {
            user: np.asarray(merged_log.sequence(user).times, dtype=np.float64)
            for user in users
        }

    trace = TrainingTrace(
        log_likelihoods=tuple(trace_lls),
        converged=model.trace.converged and not refit_iterations,
        num_iterations=len(trace_lls),
    )
    updated = SkillModel(
        parameters=parameters,
        encoded=model.encoded,
        assignments=assignments,
        trace=trace,
        _assignment_times=times,
        telemetry=model.telemetry,
    )
    return updated, merged_log
