"""Persistence for fitted skill models.

A fitted :class:`~repro.core.model.SkillModel` is an offline artifact the
paper's envisioned recommender would train periodically and serve from; it
needs to survive a process boundary.  :func:`save_model` writes two files:

- ``<prefix>.json`` — structure: feature specs, level count, training
  trace, item ids, vocabularies, and the user order;
- ``<prefix>.npz`` — arrays: per-cell distribution parameters, encoded
  feature columns, per-user assignments and action times.

No pickling: everything is JSON or plain ``numpy`` arrays, so models load
safely across library versions and from untrusted storage.  Identifiers
must be JSON-representable (the same rule as :mod:`repro.data.io`).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.distributions import Categorical, Gamma, LogNormal, Poisson
from repro.core.features import EncodedItems, FeatureKind, FeatureSet, FeatureSpec
from repro.core.model import SkillModel, SkillParameters, TrainingTrace
from repro.exceptions import DataError

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1

_DIST_TAGS = {Categorical: "categorical", Poisson: "poisson", Gamma: "gamma", LogNormal: "lognormal"}


def _cell_payload(dist) -> tuple[str, np.ndarray]:
    """(tag, parameter vector) for one distribution cell."""
    if isinstance(dist, Categorical):
        return "categorical", np.asarray(dist.probs, dtype=np.float64)
    if isinstance(dist, Poisson):
        return "poisson", np.asarray([dist.rate])
    if isinstance(dist, Gamma):
        return "gamma", np.asarray([dist.shape, dist.scale])
    if isinstance(dist, LogNormal):
        return "lognormal", np.asarray([dist.mu, dist.sigma])
    raise DataError(f"cannot serialize distribution of type {type(dist).__name__}")


def _cell_restore(tag: str, params: np.ndarray):
    if tag == "categorical":
        return Categorical(params)
    if tag == "poisson":
        return Poisson(rate=float(params[0]))
    if tag == "gamma":
        return Gamma(shape=float(params[0]), scale=float(params[1]))
    if tag == "lognormal":
        return LogNormal(mu=float(params[0]), sigma=float(params[1]))
    raise DataError(f"unknown distribution tag {tag!r} in model file")


def save_model(model: SkillModel, path_prefix: str | Path) -> tuple[Path, Path]:
    """Write ``<prefix>.json`` and ``<prefix>.npz``; returns both paths."""
    prefix = Path(path_prefix)
    feature_set = model.feature_set
    users = list(model.assignments)

    structure = {
        "format_version": _FORMAT_VERSION,
        "num_levels": model.num_levels,
        "features": [
            {"name": spec.name, "kind": spec.kind.value} for spec in feature_set.specs
        ],
        "cells": [
            [_DIST_TAGS[type(model.parameters.cells[s][f])] for f in range(len(feature_set))]
            for s in range(model.num_levels)
        ],
        "item_ids": list(model.encoded.item_ids),
        "vocabularies": [
            list(vocab) if vocab is not None else None
            for vocab in model.encoded.vocabularies
        ],
        "users": users,
        "trace": {
            "log_likelihoods": list(model.trace.log_likelihoods),
            "converged": model.trace.converged,
            "num_iterations": model.trace.num_iterations,
        },
    }
    arrays: dict[str, np.ndarray] = {}
    for s in range(model.num_levels):
        for f in range(len(feature_set)):
            _tag, params = _cell_payload(model.parameters.cells[s][f])
            arrays[f"cell_{s}_{f}"] = params
    for f, column in enumerate(model.encoded.columns):
        arrays[f"column_{f}"] = column
    for k, user in enumerate(users):
        arrays[f"assign_{k}"] = np.asarray(model.assignments[user], dtype=np.int64)
        arrays[f"times_{k}"] = np.asarray(model._assignment_times[user], dtype=np.float64)

    json_path = prefix.with_suffix(".json")
    npz_path = prefix.with_suffix(".npz")
    try:
        json_path.write_text(json.dumps(structure, ensure_ascii=False), encoding="utf-8")
    except TypeError as exc:
        raise DataError(f"model contains non-JSON identifiers: {exc}") from exc
    with npz_path.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return json_path, npz_path


def load_model(path_prefix: str | Path) -> SkillModel:
    """Reconstruct a model written by :func:`save_model`."""
    prefix = Path(path_prefix)
    json_path = prefix.with_suffix(".json")
    npz_path = prefix.with_suffix(".npz")
    if not json_path.exists() or not npz_path.exists():
        raise DataError(f"missing model files {json_path} / {npz_path}")
    try:
        structure = json.loads(json_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(f"{json_path}: malformed model file ({exc})") from exc
    if structure.get("format_version") != _FORMAT_VERSION:
        raise DataError(
            f"unsupported model format version {structure.get('format_version')!r}"
        )
    arrays = np.load(npz_path)

    feature_set = FeatureSet(
        FeatureSpec(entry["name"], FeatureKind(entry["kind"]))
        for entry in structure["features"]
    )
    num_levels = int(structure["num_levels"])
    try:
        cells = tuple(
            tuple(
                _cell_restore(structure["cells"][s][f], arrays[f"cell_{s}_{f}"])
                for f in range(len(feature_set))
            )
            for s in range(num_levels)
        )
        columns = tuple(arrays[f"column_{f}"] for f in range(len(feature_set)))
    except KeyError as exc:
        raise DataError(f"model file is missing array {exc.args[0]!r}") from None
    parameters = SkillParameters(
        feature_set=feature_set, num_levels=num_levels, cells=cells
    )

    # JSON round-trips tuples as lists and keeps ids JSON-typed, matching
    # what repro.data.io enforces for persisted data.
    item_ids = tuple(structure["item_ids"])
    vocabularies = tuple(
        tuple(vocab) if vocab is not None else None
        for vocab in structure["vocabularies"]
    )
    encoded = EncodedItems(
        feature_set=feature_set,
        item_ids=item_ids,
        index_of={item_id: pos for pos, item_id in enumerate(item_ids)},
        columns=columns,
        vocabularies=vocabularies,
    )

    users = structure["users"]
    assignments = {user: arrays[f"assign_{k}"] for k, user in enumerate(users)}
    times = {user: arrays[f"times_{k}"] for k, user in enumerate(users)}
    trace = TrainingTrace(
        log_likelihoods=tuple(structure["trace"]["log_likelihoods"]),
        converged=bool(structure["trace"]["converged"]),
        num_iterations=int(structure["trace"]["num_iterations"]),
    )
    return SkillModel(
        parameters=parameters,
        encoded=encoded,
        assignments=assignments,
        trace=trace,
        _assignment_times=times,
    )
