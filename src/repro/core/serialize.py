"""Persistence for fitted skill models.

A fitted :class:`~repro.core.model.SkillModel` is an offline artifact the
paper's envisioned recommender would train periodically and serve from; it
needs to survive a process boundary.  :func:`save_model` writes two files:

- ``<prefix>.json`` — structure: feature specs, level count, training
  trace, item ids, vocabularies, and the user order;
- ``<prefix>.npz`` — arrays: per-cell distribution parameters, encoded
  feature columns, per-user assignments and action times.

No pickling: everything is JSON or plain ``numpy`` arrays, so models load
safely across library versions and from untrusted storage.  Identifiers
must be JSON-representable (the same rule as :mod:`repro.data.io`).

Crash safety: both files are staged to ``*.tmp`` siblings, fsynced, and
then moved into place with ``os.replace`` — a crash before the first
replace leaves any previous model untouched.  The JSON carries a SHA-256
checksum of the NPZ payload, verified on load, so a crash *between* the
two replaces (or a torn copy) is detected as a typed
:class:`~repro.exceptions.DataError` rather than silently loading a
mismatched pair.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
from collections.abc import Callable, Mapping
from pathlib import Path

import numpy as np

from repro.core.distributions import Categorical, Gamma, LogNormal, Poisson
from repro.core.features import EncodedItems, FeatureKind, FeatureSet, FeatureSpec
from repro.core.model import SkillModel, SkillParameters, TrainingTrace
from repro.exceptions import DataError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.telemetry import TrainingTelemetry

__all__ = [
    "artifact_metadata",
    "attach_model_shm",
    "load_model",
    "load_similarity_payload",
    "model_resident_bytes",
    "publish_model_shm",
    "save_model",
    "shm_similarity_payload",
]

_log = get_logger("core.serialize")

_FORMAT_VERSION = 1

#: Reserved array-name prefix for the optional item-similarity index
#: (``repro.recsys.similarity``).  The canonical model arrays never use
#: it, old artifacts simply lack these members, and ``_restore_model``
#: never asks for them — so the payload is versioned-by-presence and
#: fully backward/forward compatible.
_SIMILARITY_PREFIX = "simidx_"

_DIST_TAGS = {Categorical: "categorical", Poisson: "poisson", Gamma: "gamma", LogNormal: "lognormal"}


def _similarity_arrays(similarity: Mapping, num_items: int) -> dict[str, np.ndarray]:
    """Validate and name a similarity payload's arrays for persistence.

    ``similarity`` is the serialization-layer payload dict
    (``neighbors``/``scores``/``meta``) produced by
    ``ItemSimilarityIndex.to_payload()`` — this layer deliberately takes
    plain arrays, not the recsys class, to keep core below recsys in the
    dependency order.
    """
    neighbors = np.ascontiguousarray(similarity["neighbors"], dtype=np.int32)
    scores = np.ascontiguousarray(similarity["scores"], dtype=np.float64)
    if neighbors.ndim != 2 or neighbors.shape != scores.shape:
        raise DataError("similarity payload needs matching (n, k) tables")
    if neighbors.shape[0] != num_items:
        raise DataError(
            f"similarity index has {neighbors.shape[0]} rows for "
            f"{num_items} model items"
        )
    return {
        f"{_SIMILARITY_PREFIX}neighbors": neighbors,
        f"{_SIMILARITY_PREFIX}scores": scores,
    }


def _cell_payload(dist) -> tuple[str, np.ndarray]:
    """(tag, parameter vector) for one distribution cell."""
    if isinstance(dist, Categorical):
        return "categorical", np.asarray(dist.probs, dtype=np.float64)
    if isinstance(dist, Poisson):
        return "poisson", np.asarray([dist.rate])
    if isinstance(dist, Gamma):
        return "gamma", np.asarray([dist.shape, dist.scale])
    if isinstance(dist, LogNormal):
        return "lognormal", np.asarray([dist.mu, dist.sigma])
    raise DataError(f"cannot serialize distribution of type {type(dist).__name__}")


def _cell_restore(tag: str, params: np.ndarray):
    if tag == "categorical":
        return Categorical(params)
    if tag == "poisson":
        return Poisson(rate=float(params[0]))
    if tag == "gamma":
        return Gamma(shape=float(params[0]), scale=float(params[1]))
    if tag == "lognormal":
        return LogNormal(mu=float(params[0]), sigma=float(params[1]))
    raise DataError(f"unknown distribution tag {tag!r} in model file")


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` and force it to stable storage."""
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def _replace(src: Path, dst: Path) -> None:
    os.replace(src, dst)


def _atomic_commit(writes: list[tuple[Path, bytes]]) -> None:
    """Stage every payload to a ``.tmp`` sibling, then move all into place.

    A failure at any point removes the staged temporaries, so the previous
    artifacts (if any) survive intact unless at least one replace already
    happened — and a partial replace is caught by the load-time checksum.
    """
    staged: list[tuple[Path, Path]] = []
    try:
        for final, data in writes:
            tmp = final.with_name(final.name + ".tmp")
            _write_bytes(tmp, data)
            staged.append((tmp, final))
        for tmp, final in staged:
            _replace(tmp, final)
    except BaseException:
        for tmp, _final in staged:
            tmp.unlink(missing_ok=True)
        raise


def _model_payload(
    model: SkillModel, *, extra: dict | None = None, similarity: Mapping | None = None
) -> tuple[dict, dict[str, np.ndarray]]:
    """(structure, named arrays) — the canonical flat form of a model.

    Shared by the two publication paths: :func:`save_model` compresses
    the arrays into the NPZ half of the artifact pair, and
    :func:`publish_model_shm` lays them out in one shared-memory segment
    for the prefork serving workers.  Both reconstruct through
    :func:`_restore_model`, so the array naming (``cell_{s}_{f}``,
    ``column_{f}``, ``assign_{k}``, ``times_{k}``) is the one contract.

    ``similarity`` optionally rides the precomputed item-similarity index
    along (reserved ``simidx_*`` array names plus a ``similarity`` meta
    key in the structure); absent in old artifacts, ignored by old
    readers — see :func:`load_similarity_payload`.
    """
    feature_set = model.feature_set
    users = list(model.assignments)
    structure = {
        "format_version": _FORMAT_VERSION,
        "num_levels": model.num_levels,
        "features": [
            {"name": spec.name, "kind": spec.kind.value} for spec in feature_set.specs
        ],
        "cells": [
            [_DIST_TAGS[type(model.parameters.cells[s][f])] for f in range(len(feature_set))]
            for s in range(model.num_levels)
        ],
        "item_ids": list(model.encoded.item_ids),
        "vocabularies": [
            list(vocab) if vocab is not None else None
            for vocab in model.encoded.vocabularies
        ],
        "users": users,
        "trace": {
            "log_likelihoods": list(model.trace.log_likelihoods),
            "converged": model.trace.converged,
            "num_iterations": model.trace.num_iterations,
        },
        "telemetry": model.telemetry.to_json() if model.telemetry is not None else None,
        "extra": extra,
    }
    arrays: dict[str, np.ndarray] = {}
    for s in range(model.num_levels):
        for f in range(len(feature_set)):
            _tag, params = _cell_payload(model.parameters.cells[s][f])
            arrays[f"cell_{s}_{f}"] = params
    for f, column in enumerate(model.encoded.columns):
        arrays[f"column_{f}"] = column
    for k, user in enumerate(users):
        arrays[f"assign_{k}"] = np.asarray(model.assignments[user], dtype=np.int64)
        arrays[f"times_{k}"] = np.asarray(model._assignment_times[user], dtype=np.float64)
    if similarity is not None:
        arrays.update(
            _similarity_arrays(similarity, len(structure["item_ids"]))
        )
        structure["similarity"] = dict(similarity.get("meta") or {})
    return structure, arrays


def _restore_model(
    structure: Mapping, get_array: Callable[[str], np.ndarray], *, source: str
) -> SkillModel:
    """Rebuild a :class:`SkillModel` from a structure dict and its arrays.

    ``get_array`` maps one canonical array name to its payload — an NPZ
    member for :func:`load_model`, a zero-copy view into a shared-memory
    segment for :func:`attach_model_shm`.  ``source`` names the origin in
    error messages.  The reconstruction is identical either way, which is
    what the serving parity guarantee (byte-identical responses from disk-
    and shm-backed models) rests on.
    """
    feature_set = FeatureSet(
        FeatureSpec(entry["name"], FeatureKind(entry["kind"]))
        for entry in structure["features"]
    )
    num_levels = int(structure["num_levels"])
    try:
        cells = tuple(
            tuple(
                _cell_restore(structure["cells"][s][f], get_array(f"cell_{s}_{f}"))
                for f in range(len(feature_set))
            )
            for s in range(num_levels)
        )
        columns = tuple(get_array(f"column_{f}") for f in range(len(feature_set)))
        users = structure["users"]
        assignments = {user: get_array(f"assign_{k}") for k, user in enumerate(users)}
        times = {user: get_array(f"times_{k}") for k, user in enumerate(users)}
    except KeyError as exc:
        raise DataError(
            f"{source}: model payload is missing required array ({exc.args[0]})"
        ) from None
    parameters = SkillParameters(
        feature_set=feature_set, num_levels=num_levels, cells=cells
    )

    # JSON round-trips tuples as lists and keeps ids JSON-typed, matching
    # what repro.data.io enforces for persisted data.
    item_ids = tuple(structure["item_ids"])
    vocabularies = tuple(
        tuple(vocab) if vocab is not None else None
        for vocab in structure["vocabularies"]
    )
    encoded = EncodedItems(
        feature_set=feature_set,
        item_ids=item_ids,
        index_of={item_id: pos for pos, item_id in enumerate(item_ids)},
        columns=columns,
        vocabularies=vocabularies,
    )
    trace = TrainingTrace(
        log_likelihoods=tuple(structure["trace"]["log_likelihoods"]),
        converged=bool(structure["trace"]["converged"]),
        num_iterations=int(structure["trace"]["num_iterations"]),
    )
    telemetry_payload = structure.get("telemetry")
    try:
        telemetry = (
            TrainingTelemetry.from_json(telemetry_payload) if telemetry_payload else None
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"{source}: malformed telemetry record ({exc})") from exc
    return SkillModel(
        parameters=parameters,
        encoded=encoded,
        assignments=assignments,
        trace=trace,
        _assignment_times=times,
        telemetry=telemetry,
    )


def save_model(
    model: SkillModel,
    path_prefix: str | Path,
    *,
    extra: dict | None = None,
    similarity: Mapping | None = None,
) -> tuple[Path, Path]:
    """Write ``<prefix>.json`` and ``<prefix>.npz``; returns both paths.

    The model's :class:`~repro.obs.telemetry.TrainingTelemetry` (when
    present) rides along in the JSON, so ``repro inspect`` can report run
    diagnostics for models loaded from disk.  Save duration and artifact
    sizes land in the ``model.save_seconds`` / ``model.artifact_bytes``
    metrics and an INFO log record.

    ``extra`` is an optional JSON-representable object stored verbatim in
    the structure file and surfaced by :func:`artifact_metadata`; it never
    affects :func:`load_model`.  Because the JSON replace *is* the commit
    point of the two-file save, anything in ``extra`` (the serving fold-in
    watermark, for example) becomes durable atomically with the model it
    describes.

    ``similarity`` optionally embeds a precomputed item-similarity index
    payload (``ItemSimilarityIndex.to_payload()``) under reserved
    ``simidx_*`` NPZ names; :func:`load_model` ignores it, and
    :func:`load_similarity_payload` reads it back.  Artifacts without it
    stay loadable unchanged — the serving layer builds the index
    in-process when an artifact does not carry one.
    """
    registry = get_registry()
    start = registry.clock()
    prefix = Path(path_prefix)
    structure, arrays = _model_payload(model, extra=extra, similarity=similarity)
    users = structure["users"]

    json_path = prefix.with_suffix(".json")
    npz_path = prefix.with_suffix(".npz")
    npz_buffer = io.BytesIO()
    np.savez_compressed(npz_buffer, **arrays)
    npz_bytes = npz_buffer.getvalue()
    structure["checksums"] = {"algorithm": "sha256", "npz": _sha256_hex(npz_bytes)}
    try:
        json_bytes = json.dumps(structure, ensure_ascii=False).encode("utf-8")
    except TypeError as exc:
        raise DataError(f"model contains non-JSON identifiers: {exc}") from exc
    # NPZ first, JSON (which names the NPZ checksum) as the commit point.
    _atomic_commit([(npz_path, npz_bytes), (json_path, json_bytes)])
    elapsed = registry.clock() - start
    total_bytes = len(npz_bytes) + len(json_bytes)
    registry.histogram("model.save_seconds").observe(elapsed)
    registry.gauge("model.artifact_bytes").set(total_bytes)
    _log.info(
        "model saved",
        extra={
            "obs": {
                "prefix": str(prefix),
                "bytes": total_bytes,
                "users": len(users),
                "seconds": round(elapsed, 6),
            }
        },
    )
    return json_path, npz_path


def artifact_metadata(path_prefix: str | Path) -> dict:
    """Describe a saved model pair without reconstructing the model.

    Reads only the structure JSON plus a streaming checksum of the NPZ, so
    it is cheap enough for ``repro inspect`` and the serving ``/healthz``
    endpoint to call on every artifact.  Raises
    :class:`~repro.exceptions.DataError` when the JSON half is missing or
    malformed; a missing or mismatched NPZ is *reported* instead
    (``checksum_verified`` false, ``npz_bytes`` ``None``) so operators can
    inspect a torn pair rather than being told nothing about it.
    """
    prefix = Path(path_prefix)
    json_path = prefix.with_suffix(".json")
    npz_path = prefix.with_suffix(".npz")
    if not json_path.exists():
        raise DataError(f"missing model structure file {json_path}")
    json_bytes = json_path.read_bytes()
    try:
        structure = json.loads(json_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DataError(f"{json_path}: malformed model file ({exc})") from exc
    if not isinstance(structure, dict):
        raise DataError(f"{json_path}: model structure must be a JSON object")

    checksums = structure.get("checksums") or {}
    expected = checksums.get("npz")
    npz_size: int | None = None
    actual: str | None = None
    if npz_path.exists():
        npz_payload = npz_path.read_bytes()
        npz_size = len(npz_payload)
        actual = _sha256_hex(npz_payload)
    verified = expected is not None and actual == expected

    trace = structure.get("trace") or {}
    telemetry = structure.get("telemetry") or {}
    features = [entry.get("name") for entry in structure.get("features", [])]
    return {
        "json_path": str(json_path),
        "npz_path": str(npz_path),
        "format_version": structure.get("format_version"),
        "json_bytes": len(json_bytes),
        "npz_bytes": npz_size,
        "checksum_algorithm": checksums.get("algorithm"),
        "npz_checksum": expected,
        "checksum_verified": verified,
        "num_users": len(structure.get("users", [])),
        "num_items": len(structure.get("item_ids", [])),
        "num_levels": structure.get("num_levels"),
        "features": features,
        "telemetry_run_id": telemetry.get("run_id") if isinstance(telemetry, dict) else None,
        "converged": trace.get("converged"),
        "num_iterations": trace.get("num_iterations"),
        "extra": structure.get("extra"),
        "similarity": structure.get("similarity"),
    }


def load_model(path_prefix: str | Path) -> SkillModel:
    """Reconstruct a model written by :func:`save_model`."""
    registry = get_registry()
    start = registry.clock()
    prefix = Path(path_prefix)
    json_path = prefix.with_suffix(".json")
    npz_path = prefix.with_suffix(".npz")
    if not json_path.exists() or not npz_path.exists():
        raise DataError(f"missing model files {json_path} / {npz_path}")
    try:
        structure = json.loads(json_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(f"{json_path}: malformed model file ({exc})") from exc
    if structure.get("format_version") != _FORMAT_VERSION:
        raise DataError(
            f"{json_path}: unsupported model format version "
            f"{structure.get('format_version')!r} (expected {_FORMAT_VERSION})"
        )
    npz_bytes = npz_path.read_bytes()
    checksums = structure.get("checksums")
    if checksums and "npz" in checksums:
        actual = _sha256_hex(npz_bytes)
        if actual != checksums["npz"]:
            raise DataError(
                f"{npz_path}: checksum mismatch (expected {checksums['npz'][:12]}…, "
                f"got {actual[:12]}…) — the model pair is torn or corrupted; "
                f"re-save the model or restore both files from the same write"
            )
    try:
        npz = np.load(io.BytesIO(npz_bytes))
    except Exception as exc:  # zipfile.BadZipFile, ValueError, OSError
        raise DataError(
            f"{npz_path}: truncated or corrupted model archive ({exc})"
        ) from exc

    with npz as arrays:
        model = _restore_model(structure, arrays.__getitem__, source=str(npz_path))
    users = structure["users"]
    elapsed = registry.clock() - start
    registry.histogram("model.load_seconds").observe(elapsed)
    _log.info(
        "model loaded",
        extra={
            "obs": {
                "prefix": str(prefix),
                "bytes": len(npz_bytes),
                "users": len(users),
                "seconds": round(elapsed, 6),
            }
        },
    )
    return model


def load_similarity_payload(path_prefix: str | Path) -> dict | None:
    """Read the optional similarity-index payload from a saved model pair.

    Returns ``{"neighbors", "scores", "meta"}`` (fresh in-memory arrays)
    when the artifact carries an index, ``None`` for artifacts written
    before the index existed or saved without one — the caller decides
    whether to build one in-process instead.  The NPZ checksum is
    verified exactly as :func:`load_model` does: a torn pair must not
    serve a stale index either.
    """
    prefix = Path(path_prefix)
    json_path = prefix.with_suffix(".json")
    npz_path = prefix.with_suffix(".npz")
    if not json_path.exists() or not npz_path.exists():
        raise DataError(f"missing model files {json_path} / {npz_path}")
    try:
        structure = json.loads(json_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DataError(f"{json_path}: malformed model file ({exc})") from exc
    meta = structure.get("similarity")
    if meta is None:
        return None
    npz_bytes = npz_path.read_bytes()
    checksums = structure.get("checksums")
    if checksums and "npz" in checksums:
        actual = _sha256_hex(npz_bytes)
        if actual != checksums["npz"]:
            raise DataError(
                f"{npz_path}: checksum mismatch — the model pair is torn or "
                f"corrupted; refusing to load its similarity index"
            )
    try:
        npz = np.load(io.BytesIO(npz_bytes))
    except Exception as exc:  # zipfile.BadZipFile, ValueError, OSError
        raise DataError(
            f"{npz_path}: truncated or corrupted model archive ({exc})"
        ) from exc
    with npz as arrays:
        try:
            neighbors = np.array(arrays[f"{_SIMILARITY_PREFIX}neighbors"])
            scores = np.array(arrays[f"{_SIMILARITY_PREFIX}scores"])
        except KeyError as exc:
            raise DataError(
                f"{npz_path}: structure promises a similarity index but the "
                f"archive lacks {exc.args[0]}"
            ) from None
    return {"neighbors": neighbors, "scores": scores, "meta": dict(meta)}


# ------------------------------------------------------------- shared memory
#
# The prefork serving mode (repro.serve.prefork) places one whole model in a
# single shared-memory segment so N worker processes read the same physical
# arrays.  Layout, from offset 0:
#
#   [8-byte LE header length][header JSON][64-byte-aligned arrays...]
#
# The header carries the same ``structure`` dict save_model writes plus an
# array table (name, dtype, shape, offset), so attach rebuilds the model
# through the exact _restore_model path load_model uses — only with
# zero-copy read-only views instead of freshly decompressed arrays.  The
# descriptor names the segment and a SHA-256 over the whole payload;
# attach re-hashes and refuses a mismatch, which is the checksum gate the
# hot-swap generation protocol relies on.

_SHM_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _SHM_ALIGN - 1) & ~(_SHM_ALIGN - 1)


def model_resident_bytes(model: SkillModel) -> int:
    """Bytes the model's numeric arrays occupy — the residency-budget unit.

    Matches the shared-memory payload size to within header/alignment
    slack, so disk-loaded and shm-attached tenants are charged the same
    way by the serving registry's LRU budget.
    """
    _structure, arrays = _model_payload(model)
    return sum(int(np.asarray(array).nbytes) for array in arrays.values())


def publish_model_shm(
    model: SkillModel, *, extra: dict | None = None, similarity: Mapping | None = None
):
    """Copy a model's arrays into one fresh shared-memory segment.

    Returns ``(segment, descriptor)``.  The caller owns the segment and
    must ``close()`` and ``unlink()`` it; the descriptor is a JSON-safe
    dict (``name``/``bytes``/``header_bytes``/``sha256``) that any
    process on the machine can hand to :func:`attach_model_shm`.

    ``similarity`` optionally lays the precomputed item-similarity index
    into the same segment (``simidx_*`` entries in the array table), so
    every prefork worker answering ``/recommend`` maps the one physical
    copy the parent built at publish time; workers read it back with
    :func:`shm_similarity_payload`.
    """
    from repro.core.parallel import create_segment

    registry = get_registry()
    start = registry.clock()
    structure, arrays = _model_payload(model, extra=extra, similarity=similarity)
    contiguous = {
        name: np.ascontiguousarray(array) for name, array in arrays.items()
    }
    table: list[dict] = []
    offset = 0
    for name, array in contiguous.items():
        offset = _aligned(offset)
        table.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
            }
        )
        offset += array.nbytes
    try:
        header = json.dumps(
            {"structure": structure, "arrays": table}, ensure_ascii=False
        ).encode("utf-8")
    except TypeError as exc:
        raise DataError(f"model contains non-JSON identifiers: {exc}") from exc
    arrays_start = _aligned(8 + len(header))
    total = arrays_start + offset
    segment = create_segment(total, tag="model_")
    try:
        buf = segment.buf
        buf[:8] = struct.pack("<Q", len(header))
        buf[8 : 8 + len(header)] = header
        for entry, array in zip(table, contiguous.values()):
            if array.nbytes == 0:
                continue
            view = np.ndarray(
                array.shape,
                dtype=array.dtype,
                buffer=buf,
                offset=arrays_start + entry["offset"],
            )
            view[:] = array
            del view  # no exported views may outlive close()
        digest = hashlib.sha256(buf[:total]).hexdigest()
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    descriptor = {
        "name": segment.name,
        "bytes": total,
        "header_bytes": len(header),
        "sha256": digest,
    }
    registry.histogram("model.shm_publish_seconds").observe(registry.clock() - start)
    _log.info(
        "model published to shared memory",
        extra={
            "obs": {
                "segment": segment.name,
                "bytes": total,
                "users": len(structure["users"]),
                "sha256": digest[:12],
            }
        },
    )
    return segment, descriptor


def attach_model_shm(descriptor: Mapping):
    """Rebuild a model around zero-copy views into a published segment.

    Returns ``(model, segment)``.  The arrays inside the model are
    read-only views into the segment's buffer: the segment must stay
    mapped (not ``close()``d) for as long as the model is referenced, and
    the caller never unlinks — the publisher owns the segment lifecycle.
    A payload whose SHA-256 disagrees with the descriptor (torn publish,
    wrong generation, reused name) raises
    :class:`~repro.exceptions.DataError` before any view escapes.
    """
    from repro.core.parallel import attach_segment

    name = str(descriptor["name"])
    total = int(descriptor["bytes"])
    segment = attach_segment(name)
    try:
        if segment.size < total:
            raise DataError(
                f"shm:{name}: segment is {segment.size} bytes, "
                f"descriptor promises {total}"
            )
        digest = hashlib.sha256(segment.buf[:total]).hexdigest()
        if digest != str(descriptor["sha256"]):
            raise DataError(
                f"shm:{name}: checksum mismatch (expected "
                f"{str(descriptor['sha256'])[:12]}…, got {digest[:12]}…) — "
                "the segment does not hold the generation the manifest names"
            )
        (header_bytes,) = struct.unpack("<Q", bytes(segment.buf[:8]))
        if header_bytes != int(descriptor["header_bytes"]):
            raise DataError(f"shm:{name}: header length disagrees with descriptor")
        header = json.loads(bytes(segment.buf[8 : 8 + header_bytes]).decode("utf-8"))
        structure = header["structure"]
        if structure.get("format_version") != _FORMAT_VERSION:
            raise DataError(
                f"shm:{name}: unsupported model format version "
                f"{structure.get('format_version')!r} (expected {_FORMAT_VERSION})"
            )
        arrays_start = _aligned(8 + header_bytes)
        views: dict[str, np.ndarray] = {}
        for entry in header["arrays"]:
            view = np.ndarray(
                tuple(entry["shape"]),
                dtype=np.dtype(entry["dtype"]),
                buffer=segment.buf,
                offset=arrays_start + int(entry["offset"]),
            )
            view.flags.writeable = False  # N readers, one physical copy
            views[entry["name"]] = view
        model = _restore_model(structure, views.__getitem__, source=f"shm:{name}")
    except BaseException:
        # Views created above die with this frame; the mapping can close.
        views = {}
        try:
            segment.close()
        except BufferError:  # pragma: no cover - interpreter-dependent
            pass
        raise
    return model, segment


def shm_similarity_payload(segment) -> dict | None:
    """The similarity-index payload inside an already-attached segment.

    ``segment`` is the mapping :func:`attach_model_shm` returned — its
    checksum gate already ran, so this only re-reads the header and
    builds read-only zero-copy views over the ``simidx_*`` entries.
    Returns ``{"neighbors", "scores", "meta"}`` or ``None`` when the
    publisher shipped no index.  The views share the segment's lifetime
    rule: keep the segment mapped for as long as the payload is used.
    """
    (header_bytes,) = struct.unpack("<Q", bytes(segment.buf[:8]))
    header = json.loads(bytes(segment.buf[8 : 8 + header_bytes]).decode("utf-8"))
    meta = header["structure"].get("similarity")
    if meta is None:
        return None
    arrays_start = _aligned(8 + header_bytes)
    views: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        if not entry["name"].startswith(_SIMILARITY_PREFIX):
            continue
        view = np.ndarray(
            tuple(entry["shape"]),
            dtype=np.dtype(entry["dtype"]),
            buffer=segment.buf,
            offset=arrays_start + int(entry["offset"]),
        )
        view.flags.writeable = False
        views[entry["name"][len(_SIMILARITY_PREFIX):]] = view
    if "neighbors" not in views or "scores" not in views:
        raise DataError(
            f"shm:{segment.name}: header promises a similarity index but the "
            "array table lacks its entries"
        )
    return {"neighbors": views["neighbors"], "scores": views["scores"], "meta": dict(meta)}
