"""Satisfaction-weighted training (paper Section VII).

The paper's cooking analysis (Section VI-C) found novices selecting
recipes *beyond* their ability, violating the within-capacity assumption:
"A model that learns such actions as being typical for unskilled users
would repeat the same mistake by recommending difficult items to them.
This calls for estimating whether users are satisfied with their actions
and incorporating user satisfaction into the skill model."

This module implements that incorporation.  Each action receives a
satisfaction weight in ``[0, 1]`` (from ratings, task success, or any
caller-supplied signal); the parameter-update step then performs
*weighted* maximum likelihood, so unsatisfying actions — e.g. a novice's
failed attempt at an elaborate dish — contribute little to the
distribution of their assigned level.  The assignment DP itself is
unchanged: where a user sits in the lattice is still decided by everything
they did, but what each level *looks like* is learned mostly from the
actions that went well.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.engine import AssignmentEngine
from repro.core.features import FeatureSet
from repro.core.model import SkillModel, SkillParameters, TrainingTrace
from repro.core.parallel import ParallelConfig
from repro.core.training import uniform_segment_levels
from repro.data.actions import Action, ActionLog
from repro.data.items import ItemCatalog
from repro.exceptions import ConfigurationError, DataError

__all__ = ["SatisfactionConfig", "rating_satisfaction", "fit_satisfaction_model"]


def rating_satisfaction(max_rating: float = 5.0, floor: float = 0.05) -> Callable[[Action], float]:
    """A satisfaction function reading the action's rating.

    Maps ``rating / max_rating`` into ``[floor, 1]`` — the floor keeps
    even disastrous actions faintly visible so levels with only failures
    stay estimable.  Raises on unrated actions: silently defaulting would
    hide a data problem.
    """
    if max_rating <= 0:
        raise ConfigurationError("max_rating must be positive")
    if not 0 <= floor < 1:
        raise ConfigurationError("floor must be in [0, 1)")

    def weight(action: Action) -> float:
        if action.rating is None:
            raise DataError(
                f"action on {action.item!r} by {action.user!r} has no rating; "
                "rating_satisfaction needs rated logs"
            )
        return floor + (1.0 - floor) * float(np.clip(action.rating / max_rating, 0.0, 1.0))

    return weight


@dataclass(frozen=True)
class SatisfactionConfig:
    """Hyper-parameters of the satisfaction-weighted trainer."""

    num_levels: int
    satisfaction: Callable[[Action], float] | None = None  # default: rating-based
    smoothing: float = 0.01
    init_min_actions: int = 50
    max_iterations: int = 50
    tol: float = 1e-6
    parallel: ParallelConfig | None = None

    def __post_init__(self) -> None:
        if self.num_levels < 1:
            raise ConfigurationError("num_levels must be >= 1")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")


def _action_weights(
    log: ActionLog, satisfaction: Callable[[Action], float]
) -> Mapping:
    weights = {}
    for seq in log:
        values = np.asarray([satisfaction(action) for action in seq], dtype=np.float64)
        if np.any(values < 0) or np.any(values > 1):
            raise ConfigurationError("satisfaction weights must lie in [0, 1]")
        weights[seq.user] = values
    return weights


def fit_satisfaction_model(
    log: ActionLog,
    catalog: ItemCatalog,
    feature_set: FeatureSet,
    config: SatisfactionConfig,
) -> SkillModel:
    """Coordinate ascent with satisfaction-weighted parameter updates."""
    if log.num_actions == 0:
        raise DataError("cannot train on an empty action log")
    satisfaction = config.satisfaction or rating_satisfaction()
    per_user_weights = _action_weights(log, satisfaction)

    encoded = feature_set.encode(catalog)
    users = list(log.users)
    user_rows = [encoded.rows_for_sequence(log.sequence(u)) for u in users]
    all_rows = np.concatenate(user_rows)
    all_weights = np.concatenate([per_user_weights[u] for u in users])

    # Initialization: weighted uniform segments of the long sequences.
    init_responsibilities = []
    init_rows = []
    for user, rows in zip(users, user_rows):
        if len(rows) < config.init_min_actions:
            continue
        levels = uniform_segment_levels(len(rows), config.num_levels)
        resp = np.zeros((len(rows), config.num_levels))
        resp[np.arange(len(rows)), levels] = per_user_weights[user]
        init_responsibilities.append(resp)
        init_rows.append(rows)
    if not init_rows:
        for user, rows in zip(users, user_rows):
            levels = uniform_segment_levels(len(rows), config.num_levels)
            resp = np.zeros((len(rows), config.num_levels))
            resp[np.arange(len(rows)), levels] = per_user_weights[user]
            init_responsibilities.append(resp)
            init_rows.append(rows)
    parameters = SkillParameters.fit_from_responsibilities(
        encoded,
        np.concatenate(init_rows),
        np.concatenate(init_responsibilities),
        smoothing=config.smoothing,
    )

    log_likelihoods: list[float] = []
    converged = False
    level_arrays: list[np.ndarray] = []
    with AssignmentEngine(config.parallel) as assigner:
        for _ in range(config.max_iterations):
            table = assigner.score_table(parameters, encoded)
            paths = assigner.assign(table, user_rows)
            total_ll = float(sum(p.log_likelihood for p in paths))
            level_arrays = [p.levels for p in paths]
            if log_likelihoods:
                previous = log_likelihoods[-1]
                log_likelihoods.append(total_ll)
                if abs(total_ll - previous) <= config.tol * max(1.0, abs(previous)):
                    converged = True
                    break
            else:
                log_likelihoods.append(total_ll)
            # Weighted update: responsibility = one-hot(level) × weight.
            all_levels = np.concatenate(level_arrays)
            responsibilities = np.zeros((len(all_rows), config.num_levels))
            responsibilities[np.arange(len(all_rows)), all_levels] = all_weights
            parameters = SkillParameters.fit_from_responsibilities(
                encoded, all_rows, responsibilities, smoothing=config.smoothing
            )

    assignments = {
        user: (levels + 1).astype(np.int64) for user, levels in zip(users, level_arrays)
    }
    times = {user: np.asarray(log.sequence(user).times, dtype=np.float64) for user in users}
    trace = TrainingTrace(
        log_likelihoods=tuple(log_likelihoods),
        converged=converged,
        num_iterations=len(log_likelihoods),
    )
    return SkillModel(
        parameters=parameters,
        encoded=encoded,
        assignments=assignments,
        trace=trace,
        _assignment_times=times,
    )
