"""Assignment engine: one front door for the assignment step.

Three implementations of "best monotone path for every user" coexist:

- **serial** — :func:`~repro.core.dp.best_monotone_path` per user; lowest
  constant factor, wins on small batches;
- **batched** — :func:`~repro.core.dp_batch.batch_assign`, the vectorized
  multi-user kernel; wins once there are enough users to amortize padding
  and NumPy dispatch (~1.4× at 50 users, ~4× at 500, ~7× at 5000);
- **pooled** — :class:`~repro.core.parallel.PoolAssigner`, process-pool
  workers running the batched kernel over a shared-memory score table;
  wins when :class:`~repro.core.parallel.ParallelConfig` enables user
  parallelism and the workload is large enough to pay for pickling.

:class:`AssignmentEngine` picks between them per call (``"auto"``) or as
forced by configuration, owns the :class:`~repro.core.model.ScoreTableCache`
that makes score-table rebuilds incremental across training iterations,
and surfaces the pool's recovery events so trainer telemetry keeps
working unchanged.  All three strategies produce bit-identical results —
the choice only moves wall-clock.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.dp import PathResult, best_monotone_path
from repro.core.dp_batch import BatchPlan, batch_assign, batch_assign_flat, prepare_batch
from repro.core.model import ScoreTableCache, SkillParameters
from repro.core.parallel import ParallelConfig, PoolAssigner
from repro.exceptions import ConfigurationError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = ["ASSIGNMENT_STRATEGIES", "AssignmentEngine"]

#: Valid values for ``strategy`` / ``TrainerConfig.assignment_strategy``.
ASSIGNMENT_STRATEGIES = ("auto", "serial", "batched", "pooled")

#: Below this many users the batched kernel's padding/stacking overhead
#: outweighs its vectorization win (measured ~0.3× at 3 users, break-even
#: in the low tens); ``"auto"`` stays serial under it.
_BATCH_MIN_USERS = 16


class AssignmentEngine:
    """Strategy-selecting assignment step with an incremental table cache.

    Use as a context manager, like the pool it wraps::

        with AssignmentEngine(parallel_config) as engine:
            for _ in range(iterations):
                table = engine.score_table(parameters, encoded)
                paths = engine.assign(table, user_rows)

    ``strategy`` is one of :data:`ASSIGNMENT_STRATEGIES`.  ``"auto"``
    (default) picks per call: pooled when the parallel configuration
    enables user parallelism, batched for large single-process batches,
    serial for small ones.  Forcing ``"pooled"`` without an enabling
    parallel configuration degrades to the pool's own serial path.
    """

    def __init__(
        self,
        parallel: ParallelConfig | None = None,
        *,
        strategy: str = "auto",
        max_step: int = 1,
        step_log_penalties: np.ndarray | None = None,
    ):
        if strategy not in ASSIGNMENT_STRATEGIES:
            raise ConfigurationError(
                f"unknown assignment strategy {strategy!r}; "
                f"expected one of {ASSIGNMENT_STRATEGIES}"
            )
        self.strategy = strategy
        self.max_step = max_step
        self.step_log_penalties = (
            None
            if step_log_penalties is None
            else np.asarray(step_log_penalties, dtype=np.float64)
        )
        self.cache = ScoreTableCache()
        self._pool = PoolAssigner(
            parallel, max_step=max_step, step_log_penalties=step_log_penalties
        )
        self._plan: BatchPlan | None = None

    def __enter__(self) -> "AssignmentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._pool.close()

    @property
    def event_counts(self) -> dict[str, int]:
        """The wrapped pool's recovery-event counts (telemetry passthrough)."""
        return self._pool.event_counts

    def score_table(self, parameters: SkillParameters, encoded) -> np.ndarray:
        """``log P(i | s)`` via the engine's incremental row cache.

        Across training iterations only the rows whose fitted cell changed
        are recomputed; a warm iteration rebuilds zero rows (observable as
        ``score_cache.hits`` / ``score_cache.misses`` in the registry).
        """
        with get_tracer().span("engine.score_table"):
            return parameters.item_score_table(encoded, cache=self.cache)

    def resolve_strategy(self, num_users: int) -> str:
        """The concrete strategy ``assign`` will use for this many users."""
        if self.strategy != "auto":
            return self.strategy
        if self._pool.parallel_enabled and num_users > 1:
            return "pooled"
        if num_users >= _BATCH_MIN_USERS:
            return "batched"
        return "serial"

    def assign(
        self, score_table: np.ndarray, user_rows: Sequence[np.ndarray]
    ) -> list[PathResult]:
        """Best monotone path per user; order matches ``user_rows``.

        Identical results under every strategy; the chosen one is counted
        in ``engine.strategy.<name>`` and wall-time lands in the
        ``engine.assign_seconds`` histogram.
        """
        registry = get_registry()
        chosen = self.resolve_strategy(len(user_rows))
        registry.counter(f"engine.strategy.{chosen}").inc()
        start = registry.clock()
        try:
            with get_tracer().span(
                "engine.assign", strategy=chosen, users=len(user_rows)
            ):
                if chosen == "pooled":
                    return self._pool.assign(score_table, user_rows)
                if chosen == "batched":
                    return batch_assign(
                        score_table,
                        list(user_rows),
                        max_step=self.max_step,
                        step_log_penalties=self.step_log_penalties,
                    )
                return [
                    best_monotone_path(
                        score_table[:, rows].T,
                        max_step=self.max_step,
                        step_log_penalties=self.step_log_penalties,
                    )
                    for rows in user_rows
                ]
        finally:
            registry.histogram("engine.assign_seconds").observe(
                registry.clock() - start
            )

    def _plan_for(self, user_rows: list[np.ndarray], num_levels: int) -> BatchPlan:
        """The batching plan for ``user_rows``, rebuilt only when the user
        list changes (identity check: the trainer passes the same list
        every iteration)."""
        plan = self._plan
        if plan is None or plan.user_rows is not user_rows or plan.num_levels != num_levels:
            plan = prepare_batch(user_rows, num_levels)
            self._plan = plan
        return plan

    def assign_flat(
        self, score_table: np.ndarray, user_rows: list[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Like :meth:`assign`, returning flat arrays instead of
        :class:`~repro.core.dp.PathResult` objects.

        Returns ``(flat_levels, log_likelihoods)``: all users' 0-based
        levels concatenated in ``user_rows`` order, and one log-likelihood
        per user.  The training loop consumes this form directly — per-user
        churn masks, level histograms, and the sufficient-statistics deltas
        all operate on the flat array — and the batched strategy reuses a
        cached :class:`~repro.core.dp_batch.BatchPlan`, skipping the
        per-iteration pad/bucket/marshalling work entirely.
        """
        if self.resolve_strategy(len(user_rows)) == "batched":
            registry = get_registry()
            registry.counter("engine.strategy.batched").inc()
            start = registry.clock()
            try:
                with get_tracer().span(
                    "engine.assign", strategy="batched", users=len(user_rows)
                ):
                    score_table = np.asarray(score_table, dtype=np.float64)
                    if score_table.ndim != 2:
                        raise ConfigurationError(
                            f"score_table must be 2-D, got shape {score_table.shape}"
                        )
                    plan = self._plan_for(user_rows, score_table.shape[0])
                    return batch_assign_flat(
                        np.ascontiguousarray(score_table.T),
                        plan,
                        max_step=self.max_step,
                        step_log_penalties=self.step_log_penalties,
                    )
            finally:
                registry.histogram("engine.assign_seconds").observe(
                    registry.clock() - start
                )
        # Serial/pooled strategies count and time themselves via assign().
        paths = self.assign(score_table, user_rows)
        lls = np.fromiter(
            (p.log_likelihood for p in paths), dtype=np.float64, count=len(paths)
        )
        if not paths:
            return np.empty(0, dtype=np.int64), lls
        flat = np.concatenate([p.levels for p in paths])
        return flat.astype(np.int64, copy=False), lls
