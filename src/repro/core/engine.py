"""Assignment engine: one front door for the assignment step.

Three implementations of "best monotone path for every user" coexist:

- **serial** — :func:`~repro.core.dp.best_monotone_path` per user; lowest
  constant factor, wins on small batches;
- **batched** — :func:`~repro.core.dp_batch.batch_assign`, the vectorized
  multi-user kernel; wins once there are enough users to amortize padding
  and NumPy dispatch (~1.4× at 50 users, ~4× at 500, ~7× at 5000);
- **pooled** — :class:`~repro.core.parallel.PoolAssigner`, process-pool
  workers running the batched kernel over a shared-memory score table;
  wins when :class:`~repro.core.parallel.ParallelConfig` enables user
  parallelism and the workload is large enough to pay for pickling.

:class:`AssignmentEngine` picks between them per call (``"auto"``) or as
forced by configuration, owns the :class:`~repro.core.model.ScoreTableCache`
that makes score-table rebuilds incremental across training iterations,
and surfaces the pool's recovery events so trainer telemetry keeps
working unchanged.  All three strategies produce bit-identical results —
the choice only moves wall-clock.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.dp import PathResult, best_monotone_path
from repro.core.dp_batch import batch_assign
from repro.core.model import ScoreTableCache, SkillParameters
from repro.core.parallel import ParallelConfig, PoolAssigner
from repro.exceptions import ConfigurationError
from repro.obs.metrics import get_registry

__all__ = ["ASSIGNMENT_STRATEGIES", "AssignmentEngine"]

#: Valid values for ``strategy`` / ``TrainerConfig.assignment_strategy``.
ASSIGNMENT_STRATEGIES = ("auto", "serial", "batched", "pooled")

#: Below this many users the batched kernel's padding/stacking overhead
#: outweighs its vectorization win (measured ~0.3× at 3 users, break-even
#: in the low tens); ``"auto"`` stays serial under it.
_BATCH_MIN_USERS = 16


class AssignmentEngine:
    """Strategy-selecting assignment step with an incremental table cache.

    Use as a context manager, like the pool it wraps::

        with AssignmentEngine(parallel_config) as engine:
            for _ in range(iterations):
                table = engine.score_table(parameters, encoded)
                paths = engine.assign(table, user_rows)

    ``strategy`` is one of :data:`ASSIGNMENT_STRATEGIES`.  ``"auto"``
    (default) picks per call: pooled when the parallel configuration
    enables user parallelism, batched for large single-process batches,
    serial for small ones.  Forcing ``"pooled"`` without an enabling
    parallel configuration degrades to the pool's own serial path.
    """

    def __init__(
        self,
        parallel: ParallelConfig | None = None,
        *,
        strategy: str = "auto",
        max_step: int = 1,
        step_log_penalties: np.ndarray | None = None,
    ):
        if strategy not in ASSIGNMENT_STRATEGIES:
            raise ConfigurationError(
                f"unknown assignment strategy {strategy!r}; "
                f"expected one of {ASSIGNMENT_STRATEGIES}"
            )
        self.strategy = strategy
        self.max_step = max_step
        self.step_log_penalties = (
            None
            if step_log_penalties is None
            else np.asarray(step_log_penalties, dtype=np.float64)
        )
        self.cache = ScoreTableCache()
        self._pool = PoolAssigner(
            parallel, max_step=max_step, step_log_penalties=step_log_penalties
        )

    def __enter__(self) -> "AssignmentEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        self._pool.close()

    @property
    def event_counts(self) -> dict[str, int]:
        """The wrapped pool's recovery-event counts (telemetry passthrough)."""
        return self._pool.event_counts

    def score_table(self, parameters: SkillParameters, encoded) -> np.ndarray:
        """``log P(i | s)`` via the engine's incremental row cache.

        Across training iterations only the rows whose fitted cell changed
        are recomputed; a warm iteration rebuilds zero rows (observable as
        ``score_cache.hits`` / ``score_cache.misses`` in the registry).
        """
        return parameters.item_score_table(encoded, cache=self.cache)

    def resolve_strategy(self, num_users: int) -> str:
        """The concrete strategy ``assign`` will use for this many users."""
        if self.strategy != "auto":
            return self.strategy
        if self._pool.parallel_enabled and num_users > 1:
            return "pooled"
        if num_users >= _BATCH_MIN_USERS:
            return "batched"
        return "serial"

    def assign(
        self, score_table: np.ndarray, user_rows: Sequence[np.ndarray]
    ) -> list[PathResult]:
        """Best monotone path per user; order matches ``user_rows``.

        Identical results under every strategy; the chosen one is counted
        in ``engine.strategy.<name>`` and wall-time lands in the
        ``engine.assign_seconds`` histogram.
        """
        registry = get_registry()
        chosen = self.resolve_strategy(len(user_rows))
        registry.counter(f"engine.strategy.{chosen}").inc()
        start = registry.clock()
        try:
            if chosen == "pooled":
                return self._pool.assign(score_table, user_rows)
            if chosen == "batched":
                return batch_assign(
                    score_table,
                    list(user_rows),
                    max_step=self.max_step,
                    step_log_penalties=self.step_log_penalties,
                )
            return [
                best_monotone_path(
                    score_table[:, rows].T,
                    max_step=self.max_step,
                    step_log_penalties=self.step_log_penalties,
                )
                for rows in user_rows
            ]
        finally:
            registry.histogram("engine.assign_seconds").observe(
                registry.clock() - start
            )
