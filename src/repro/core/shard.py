"""Sharded map-reduce training over an out-of-core action store.

:class:`~repro.core.training.Trainer` holds every user's encoded rows in
RAM for the whole fit; this module runs the same alternation over a
:class:`~repro.data.store.ActionStore` one shard at a time, so peak
memory is bounded by the largest shard, never the corpus:

- **map (E-step)** — each shard task loads its columns eagerly (a bounded
  copy; memmapped pages a fit touches would stay resident and defeat the
  out-of-core point), runs the batched assignment DP from
  :mod:`repro.core.dp_batch` against the iteration's score table, and
  returns per-user levels + log-likelihoods.  Tasks run serially
  in-process or on a :class:`ShardPool` process pool (score tables then
  ride the PR 3 shared-memory publication).
- **reduce (M-step input)** — shard results fold into one
  :class:`~repro.core.stats.SkillStats` by **exact integer addition**
  (:meth:`~repro.core.stats.SkillStats.add` /
  :meth:`~repro.core.stats.SkillStats.update`), so the reduced statistics
  are bit-identical to a cold single-pass build over the whole corpus no
  matter how users were partitioned.  The M-step then runs once on the
  reduced statistics.

Because the batched DP is bit-identical per user to the scalar kernel
regardless of batch composition, shards are assigned in user
(first-appearance) order, and the total log-likelihood is summed with the
same sequential Python ``sum`` over per-user values, a sharded fit's LL
trace and final assignments are **bit-identical** to an in-RAM
single-process fit on the same corpus — the repo's parity discipline
extended across the RAM boundary (asserted by ``tests/test_core_shard.py``
and ``tools/bench_scale.py``).

Scratch state (previous/current level assignments per shard) lives in a
temporary directory next to nothing — it is derived data, rebuilt by any
restart of the fit.
"""

from __future__ import annotations

import os
import tempfile
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.dp_batch import batch_assign_flat, prepare_batch
from repro.core.model import ScoreTableCache, SkillModel, SkillParameters, TrainingTrace
from repro.core.parallel import (
    RecoveringPool,
    _SharedScoreTable,
    _open_shared_table,
    make_cell_fitter,
    publish_item_major,
)
from repro.core.stats import SkillStats
from repro.core.training import TrainerConfig, uniform_segment_levels
from repro.data.store import ActionStore
from repro.exceptions import ConvergenceError, DataError
from repro.obs.logging import current_run_id, get_logger
from repro.obs.metrics import get_registry
from repro.obs.resource import ResourceSampler
from repro.obs.telemetry import IterationRecord, TelemetryBuilder
from repro.obs.trace import get_tracer, new_span_id

_log = get_logger("core.shard")

__all__ = ["ShardPool", "ShardedFitResult", "ShardedTrainer", "SHARD_STAGES"]

#: Per-iteration stages of the sharded loop; ``reduce`` replaces the
#: in-RAM trainer's ``checkpoint`` slot (store fits don't checkpoint yet).
SHARD_STAGES = ("table_build", "assign", "reduce", "cell_fit", "iteration")


# --------------------------------------------------------------------------
# Map step: one task per shard.
# --------------------------------------------------------------------------

#: One reader per store per worker process; shards themselves are loaded
#: eagerly per task, so the cache holds manifests, not data.
_STORE_CACHE: dict[str, ActionStore] = {}


def _cached_store(path: str) -> ActionStore:
    store = _STORE_CACHE.get(path)
    if store is None:
        store = _STORE_CACHE[path] = ActionStore(path)
    return store


def _estep_shard_impl(
    task: tuple[str, int, np.ndarray | _SharedScoreTable, int, int, np.ndarray | None],
) -> tuple[np.ndarray, np.ndarray, float]:
    """Worker body: batched assignment DP over one shard.

    ``task`` is ``(store_path, shard_index, code_major_table, num_levels,
    max_step, step_log_penalties)`` where the table is code-major ``(V,
    S)`` — row ``c`` holds the level scores of store code ``c`` — either
    inline or as a shared-memory descriptor.  Returns ``(levels, lls,
    seconds)``: concatenated 0-based levels in shard user order, one
    log-likelihood per user, and the task's wall time.
    """
    start = time.perf_counter()
    store_path, shard_index, table_ref, num_levels, max_step, penalties = task
    store = _cached_store(store_path)
    shard = store.shard(shard_index, eager=True)
    user_rows = shard.user_rows()
    plan = prepare_batch(user_rows, num_levels)
    if isinstance(table_ref, _SharedScoreTable):
        view, segment = _open_shared_table(table_ref)
        try:
            # batch_assign_flat gathers with np.take into its own buffers,
            # so no view into the segment survives the call.
            levels, lls = batch_assign_flat(
                view, plan, max_step=max_step, step_log_penalties=penalties
            )
        finally:
            del view
            segment.close()
    else:
        levels, lls = batch_assign_flat(
            np.ascontiguousarray(table_ref),
            plan,
            max_step=max_step,
            step_log_penalties=penalties,
        )
    return levels, lls, time.perf_counter() - start


#: Resolved through the module namespace by :class:`ShardPool` at call
#: time so fault-injection harnesses can swap the worker body in; the
#: serial fallback always runs the real implementation.
_estep_shard = _estep_shard_impl


class ShardPool(RecoveringPool):
    """Process pool over shard E-step tasks with the standard recovery
    ladder (rebuild with backoff → degrade to serial)."""

    pool_kind = "shard pool"
    serial_noun = "shard execution"

    def _resolve_worker(self) -> Callable:
        return _estep_shard


# --------------------------------------------------------------------------
# The sharded trainer.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedFitResult:
    """A fit summary without materialized per-user assignments.

    ``ShardedTrainer.fit(..., materialize=False)`` returns this at scales
    where a million-entry assignments dict (and the
    :class:`~repro.core.model.SkillModel` JSON it implies) stops being a
    sensible artifact.  Parameters, trace, and telemetry are exactly what
    the materialized model would carry.
    """

    parameters: SkillParameters
    trace: TrainingTrace
    telemetry: object
    num_users: int
    num_actions: int
    num_shards: int


class ShardedTrainer:
    """Fits skill models over an :class:`~repro.data.store.ActionStore`.

    Accepts the same :class:`~repro.core.training.TrainerConfig` as the
    in-RAM trainer; ``parallel.users``/``workers`` (with
    ``assignment_strategy`` ``"auto"`` or ``"pooled"``) switch the map
    step onto a :class:`ShardPool`.  Checkpointing is not supported for
    store fits.
    """

    def __init__(self, config: TrainerConfig):
        self.config = config

    # ----------------------------------------------------------------- fit

    def fit(
        self,
        store: ActionStore,
        catalog,
        feature_set,
        *,
        materialize: bool = True,
    ) -> SkillModel | ShardedFitResult:
        """Run initialization + alternation to convergence over ``store``.

        ``materialize=False`` skips rebuilding the per-user assignments
        dict and returns a :class:`ShardedFitResult` instead of a
        :class:`~repro.core.model.SkillModel`.
        """
        if store.num_actions == 0:
            raise DataError("cannot train on an empty action store")
        encoded = feature_set.encode(catalog)
        # Store code -> catalog row, fixed for the whole fit.  Gathering
        # the score table through this map once per iteration gives
        # workers a code-major table bit-identical to what the in-RAM
        # engine gathers per action.
        vocab_rows = encoded.rows_for(store.item_ids)
        registry = get_registry()
        sampler = ResourceSampler(registry)
        sampler.install_gc_hooks()
        try:
            with get_tracer().span(
                "train.fit",
                users=store.num_users,
                resumed=False,
                shards=store.num_shards,
            ) as fit_span:
                result = self._fit_impl(
                    store, encoded, vocab_rows, registry, sampler, materialize
                )
                fit_span.set(
                    iterations=result.trace.num_iterations,
                    converged=result.trace.converged,
                )
                return result
        finally:
            sampler.uninstall_gc_hooks()

    def _fit_impl(
        self,
        store: ActionStore,
        encoded,
        vocab_rows: np.ndarray,
        registry,
        sampler: ResourceSampler,
        materialize: bool,
    ) -> SkillModel | ShardedFitResult:
        cfg = self.config
        tracer = get_tracer()
        clock = registry.clock
        builder = TelemetryBuilder(run_id=current_run_id(), stages=SHARD_STAGES)
        fit_start = clock()
        cell_fitter = make_cell_fitter(cfg.parallel)
        num_shards = store.num_shards
        registry.gauge("train.shards").set(num_shards)
        # Per-user offsets are fixed across iterations; ~8 bytes per user
        # is the one per-user driver allocation this loop keeps.
        offsets = [
            np.load(store.path / entry["name"] / "offsets.npy", allow_pickle=False)
            for entry in store.manifest["shards"]
        ]
        penalties = (
            None
            if cfg.step_log_penalties is None
            else np.asarray(cfg.step_log_penalties, dtype=np.float64)
        )
        parameters = self._initialize(store, encoded, vocab_rows, cell_fitter)
        cache = ScoreTableCache()
        pool = (
            ShardPool(cfg.parallel)
            if cfg.parallel.users
            and cfg.parallel.workers > 1
            and cfg.assignment_strategy in ("auto", "pooled")
            else None
        )
        log_likelihoods: list[float] = []
        converged = False
        num_cells = cfg.num_levels * len(encoded.feature_set)
        stats: SkillStats | None = None
        previous_hist: np.ndarray | None = None
        have_prev = False
        final_iteration_levels_on_disk = False
        try:
            with tempfile.TemporaryDirectory(prefix="repro-shard-") as scratch_str:
                scratch = Path(scratch_str)
                for iteration in range(cfg.max_iterations):
                    iteration_ts = tracer.wall() if tracer.enabled else 0.0
                    iteration_start = clock()
                    stage_seconds = dict.fromkeys(SHARD_STAGES, 0.0)
                    stage_start = clock()
                    with tracer.span("engine.score_table"):
                        table = parameters.item_score_table(encoded, cache=cache)
                    code_major = np.ascontiguousarray(table.T[vocab_rows])
                    stage_seconds["table_build"] = clock() - stage_start

                    stage_start = clock()
                    shard_lls = self._map_shards(
                        store, scratch, code_major, penalties, pool, registry
                    )
                    stage_seconds["assign"] = clock() - stage_start
                    # Sequential Python sum over per-user values in user
                    # order (shard order *is* user order), matching the
                    # in-RAM trainer to the last bit.
                    total_ll = float(
                        sum(ll for lls in shard_lls for ll in lls.tolist())
                    )

                    improvement = None
                    if log_likelihoods:
                        previous = log_likelihoods[-1]
                        improvement = total_ll - previous
                        if cfg.strict and improvement < -1e-3 * max(1.0, abs(previous)):
                            raise ConvergenceError(
                                f"objective decreased from {previous:.6f} "
                                f"(iteration {iteration}) to {total_ll:.6f} "
                                f"(iteration {iteration + 1})"
                            )
                        log_likelihoods.append(total_ll)
                        if abs(improvement) <= cfg.tol * max(1.0, abs(previous)):
                            converged = True
                    else:
                        log_likelihoods.append(total_ll)

                    # Reduce: one pass over the shards' new assignments,
                    # folding churn diagnostics and (unless converged)
                    # integer statistics deltas into driver-global state.
                    stage_start = clock()
                    level_hist = np.zeros(cfg.num_levels, dtype=np.int64)
                    unchanged = 0
                    dirty: np.ndarray | None = None
                    cells_refit = 0
                    # First M-step of the run (or every M-step with the
                    # incremental path off) rebuilds statistics cold;
                    # later iterations fold per-shard integer deltas in.
                    cold_build = not converged and (
                        not cfg.incremental_mstep or stats is None or not have_prev
                    )
                    if cold_build:
                        stats = SkillStats(encoded, cfg.num_levels)
                    for index in range(num_shards):
                        new_path = scratch / f"new-{index}.npy"
                        prev_path = scratch / f"prev-{index}.npy"
                        new_levels = np.load(new_path, allow_pickle=False)
                        level_hist += np.bincount(
                            new_levels, minlength=cfg.num_levels
                        )
                        if have_prev:
                            prev_levels = np.load(prev_path, allow_pickle=False)
                            changed = new_levels != prev_levels
                            bounds = offsets[index]
                            changed_cum = np.concatenate(([0], np.cumsum(changed)))
                            per_user = changed_cum[bounds[1:]] - changed_cum[bounds[:-1]]
                            unchanged += int(np.count_nonzero(per_user == 0))
                            if not converged and not cold_build:
                                moved = np.flatnonzero(changed)
                                if len(moved):
                                    codes = store.shard_codes(index)
                                    touched = stats.update(
                                        vocab_rows[codes[moved]],
                                        prev_levels[moved],
                                        new_levels[moved],
                                    )
                                    dirty = (
                                        touched
                                        if dirty is None
                                        else np.union1d(dirty, touched)
                                    )
                        if cold_build:
                            codes = store.shard_codes(index)
                            stats.add(vocab_rows[codes], new_levels)
                        os.replace(new_path, prev_path)
                    final_iteration_levels_on_disk = True
                    have_prev = True
                    stage_seconds["reduce"] = clock() - stage_start

                    if not converged:
                        stage_start = clock()
                        if cold_build:
                            parameters = SkillParameters.fit_from_stats(
                                stats,
                                smoothing=cfg.smoothing,
                                cell_fitter=cell_fitter,
                            )
                            cells_refit = num_cells
                        elif dirty is not None:
                            parameters = SkillParameters.fit_from_stats(
                                stats,
                                smoothing=cfg.smoothing,
                                cell_fitter=cell_fitter,
                                previous=parameters,
                                dirty_levels=dirty,
                            )
                            cells_refit = len(dirty) * len(encoded.feature_set)
                        else:
                            # No action moved: statistics — and hence every
                            # refit cell — are unchanged.
                            cells_refit = 0
                        registry.gauge("train.cells_refit").set(cells_refit)
                        if not cfg.incremental_mstep:
                            stats = None  # rebuilt cold next iteration
                        stage_seconds["cell_fit"] = clock() - stage_start

                    stage_seconds["iteration"] = clock() - iteration_start
                    record = self._observe_iteration(
                        registry,
                        stage_seconds,
                        total_ll=total_ll,
                        improvement=improvement,
                        iteration_number=len(log_likelihoods),
                        unchanged=unchanged if iteration > 0 else None,
                        level_hist=level_hist,
                        previous_hist=previous_hist,
                    )
                    builder.record_iteration(record)
                    if tracer.enabled:
                        iter_span_id = new_span_id()
                        tracer.record(
                            "train.iteration",
                            span=iter_span_id,
                            ts=iteration_ts,
                            duration=stage_seconds["iteration"],
                            iteration=len(log_likelihoods),
                            log_likelihood=total_ll,
                        )
                        offset = iteration_ts
                        for stage in ("table_build", "assign", "reduce", "cell_fit"):
                            seconds = stage_seconds[stage]
                            if seconds:
                                tracer.record(
                                    f"train.{stage}",
                                    parent=iter_span_id,
                                    ts=offset,
                                    duration=seconds,
                                )
                                offset += seconds
                    if cfg.on_iteration is not None:
                        cfg.on_iteration(record)
                    previous_hist = level_hist
                    if converged:
                        break

                pool_events = (
                    dict(pool.event_counts)
                    if pool is not None
                    else {"rebuilds": 0, "degraded": 0, "chunk_timeouts": 0}
                )
                telemetry = builder.build(
                    log_likelihoods=tuple(log_likelihoods),
                    pool_events=pool_events,
                    converged=converged,
                    total_seconds=clock() - fit_start,
                    resources=sampler.sample(),
                )
                _log.info(
                    "fit complete",
                    extra={
                        "obs": {
                            "iterations": len(log_likelihoods),
                            "converged": converged,
                            "shards": num_shards,
                            "log_likelihood": (
                                round(log_likelihoods[-1], 3)
                                if log_likelihoods
                                else None
                            ),
                            "seconds": round(telemetry.total_seconds, 6),
                        }
                    },
                )
                trace = TrainingTrace(
                    log_likelihoods=tuple(log_likelihoods),
                    converged=converged,
                    num_iterations=len(log_likelihoods),
                )
                if not materialize:
                    return ShardedFitResult(
                        parameters=parameters,
                        trace=trace,
                        telemetry=telemetry,
                        num_users=store.num_users,
                        num_actions=store.num_actions,
                        num_shards=num_shards,
                    )
                assert final_iteration_levels_on_disk
                assignments: dict = {}
                times: dict = {}
                for index in range(num_shards):
                    shard = store.shard(index, eager=True)
                    levels = np.load(
                        scratch / f"prev-{index}.npy", allow_pickle=False
                    )
                    for k, user in enumerate(shard.users):
                        lo, hi = int(shard.offsets[k]), int(shard.offsets[k + 1])
                        assignments[user] = (levels[lo:hi] + 1).astype(np.int64)
                        times[user] = np.asarray(shard.times[lo:hi], dtype=np.float64)
                return SkillModel(
                    parameters=parameters,
                    encoded=encoded,
                    assignments=assignments,
                    trace=trace,
                    _assignment_times=times,
                    telemetry=telemetry,
                )
        finally:
            if pool is not None:
                pool.close()

    # ----------------------------------------------------------- map helper

    def _map_shards(
        self,
        store: ActionStore,
        scratch: Path,
        code_major: np.ndarray,
        penalties: np.ndarray | None,
        pool: ShardPool | None,
        registry,
    ) -> list[np.ndarray]:
        """Run the E-step over every shard; write each shard's new levels
        to scratch and return the per-shard log-likelihood arrays."""
        cfg = self.config
        store_path = str(store.path)
        num_shards = store.num_shards
        shard_seconds = registry.histogram("train.shard_seconds")

        def _store_result(index: int, result) -> np.ndarray:
            levels, lls, seconds = result
            shard_seconds.observe(seconds)
            # int32 halves scratch I/O; levels are < num_levels, and every
            # consumer re-widens to int64 (exactly) on load.
            np.save(
                scratch / f"new-{index}.npy",
                np.asarray(levels, dtype=np.int32),
                allow_pickle=False,
            )
            return lls

        def _plain_task(index: int):
            return (
                store_path,
                index,
                code_major,
                cfg.num_levels,
                cfg.max_step,
                penalties,
            )

        if pool is None or pool._serial_fallback:
            return [
                _store_result(index, _estep_shard_impl(_plain_task(index)))
                for index in range(num_shards)
            ]
        shm, ref = publish_item_major(code_major)
        try:
            table_ref = ref if ref is not None else code_major
            tasks = [
                (store_path, index, table_ref, cfg.num_levels, cfg.max_step, penalties)
                for index in range(num_shards)
            ]
            status, results = pool._run_with_recovery(tasks, registry)
            if status == "serial":
                # The pool degraded mid-iteration; rerun every shard with
                # the real worker body (tasks are pure, reruns are safe).
                return [
                    _store_result(index, _estep_shard_impl(_plain_task(index)))
                    for index in range(num_shards)
                ]
            return [
                _store_result(index, result) for index, result in enumerate(results)
            ]
        finally:
            if shm is not None:
                for finalize in (shm.close, shm.unlink):
                    try:
                        finalize()
                    except FileNotFoundError:  # pragma: no cover
                        pass

    # --------------------------------------------------------------- stages

    @staticmethod
    def _observe_iteration(
        registry,
        stage_seconds: dict[str, float],
        *,
        total_ll: float,
        improvement: float | None,
        iteration_number: int,
        unchanged: int | None,
        level_hist: np.ndarray,
        previous_hist: np.ndarray | None,
    ) -> IterationRecord:
        """Publish one iteration's diagnostics (the sharded counterpart of
        ``Trainer._observe_iteration`` — same metric names, plus the
        ``reduce`` stage histogram)."""
        for stage, seconds in stage_seconds.items():
            registry.histogram(f"train.{stage}_seconds").observe(seconds)
        drift = (
            float(
                np.abs(level_hist - previous_hist).sum()
                / max(1, int(level_hist.sum()))
            )
            if previous_hist is not None
            else None
        )
        registry.counter("train.iterations").inc()
        registry.gauge("train.log_likelihood").set(total_ll)
        if improvement is not None:
            registry.gauge("train.improvement").set(improvement)
        if unchanged is not None:
            registry.gauge("train.unchanged_users").set(unchanged)
        if drift is not None:
            registry.gauge("train.level_drift").set(drift)
        record = IterationRecord(
            iteration=iteration_number,
            log_likelihood=total_ll,
            improvement=improvement,
            stage_seconds=stage_seconds,
            unchanged_users=unchanged,
            level_histogram=tuple(int(v) for v in level_hist),
            level_drift=drift,
        )
        _log.info(
            "iteration",
            extra={
                "obs": {
                    "iteration": iteration_number,
                    "log_likelihood": round(total_ll, 3),
                    "improvement": (
                        None if improvement is None else round(improvement, 6)
                    ),
                    "ms": round(stage_seconds["iteration"] * 1000.0, 3),
                }
            },
        )
        return record

    # ------------------------------------------------------- initialization

    def _initialize(
        self,
        store: ActionStore,
        encoded,
        vocab_rows: np.ndarray,
        cell_fitter,
    ) -> SkillParameters:
        """Uniform-segment initialization streamed one shard at a time.

        Statistics for the qualifying users (``U_{≥N}``) accumulate by
        exact integer addition, so the initial parameters are bit-identical
        to the in-RAM trainer's concatenate-then-fit over the same users
        (``fit_from_assignments`` itself reduces to ``fit_from_stats``).
        """
        cfg = self.config

        def _accumulate(min_actions: int) -> tuple[SkillStats, bool]:
            stats = SkillStats(encoded, cfg.num_levels)
            any_user = False
            for shard in store.iter_shards(eager=True):
                rows_chunks: list[np.ndarray] = []
                level_chunks: list[np.ndarray] = []
                for k in range(shard.num_users):
                    lo, hi = int(shard.offsets[k]), int(shard.offsets[k + 1])
                    if hi - lo >= min_actions:
                        rows_chunks.append(vocab_rows[shard.codes[lo:hi]])
                        level_chunks.append(
                            uniform_segment_levels(hi - lo, cfg.num_levels)
                        )
                if rows_chunks:
                    any_user = True
                    stats.add(
                        np.concatenate(rows_chunks), np.concatenate(level_chunks)
                    )
            return stats, any_user

        stats, any_user = _accumulate(cfg.init_min_actions)
        if not any_user:
            # Small-data fallback: no user reaches N actions, use everyone.
            stats, _ = _accumulate(0)
        return SkillParameters.fit_from_stats(
            stats, smoothing=cfg.smoothing, cell_fitter=cell_fitter
        )
