"""Item-prediction task (paper Section VI-E, Tables X/XI).

Protocol, following the paper exactly:

1. Hold one action out per user — at a random position ("missing data
   recovery") or the last position ("forecasting").
2. Fit a skill model on the remaining actions.
3. For each held-out action, infer the user's skill level from the
   chronologically closest *training* action, take the model's item-ID
   categorical distribution at that level, and rank all items by
   probability.
4. Score the rank of the true item with top-10 accuracy (Acc@10) and
   reciprocal rank (RR).

Ties — ubiquitous among items never seen at a level, which all share the
smoothing floor — are scored with *mid-ranks* (the expected rank under
random shuffling of tied items), so results don't depend on sort order.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.model import SkillModel
from repro.data.splits import HeldOutAction
from repro.exceptions import DataError

__all__ = ["ItemPredictionResult", "predict_items", "random_guess_expectation"]


@dataclass(frozen=True)
class ItemPredictionResult:
    """Per-action ranks and the two aggregate measures."""

    ranks: np.ndarray  # mid-rank of the true item per held-out action
    num_items: int

    @property
    def acc_at_10(self) -> float:
        """Fraction of held-out actions whose true item mid-ranks in the top 10."""
        return float(np.mean(self.ranks <= 10))

    @property
    def mean_reciprocal_rank(self) -> float:
        return float(np.mean(1.0 / self.ranks))

    @property
    def reciprocal_ranks(self) -> np.ndarray:
        """Per-action RR values, e.g. for significance testing."""
        return 1.0 / self.ranks

    def accuracy_at(self, k: int) -> float:
        """Fraction of true items mid-ranking within the top ``k``."""
        return float(np.mean(self.ranks <= k))


def predict_items(
    model: SkillModel, held: Sequence[HeldOutAction]
) -> ItemPredictionResult:
    """Run the ranking protocol for a list of held-out actions.

    The model must expose the item-ID feature (all Table X/XI models do);
    held-out items must exist in the training catalog — the split
    functions guarantee this because the catalog covers the whole domain.
    """
    if not held:
        raise DataError("no held-out actions to evaluate")
    vocab = model.encoded.vocabulary("__item_id__")
    code_of = {item_id: code for code, item_id in enumerate(vocab)}

    levels = np.empty(len(held), dtype=np.int64)
    codes = np.empty(len(held), dtype=np.int64)
    for pos, held_action in enumerate(held):
        action = held_action.action
        levels[pos] = model.skill_at(action.user, action.time)
        code = code_of.get(action.item)
        if code is None:
            raise DataError(f"held-out item {action.item!r} missing from the catalog")
        codes[pos] = code

    # All actions at a level share its probability vector; one sort of it
    # plus two binary searches rank every true item at once.  For a true
    # item with probability p, ``n − searchsorted(right)`` items rank
    # strictly higher and ``searchsorted(right) − searchsorted(left)`` tie
    # with it (including itself), giving the same mid-rank arithmetic as
    # counting per action.
    ranks = np.empty(len(held), dtype=np.float64)
    for level in np.unique(levels):
        selected = levels == level
        probs = model.item_probabilities(int(level))
        sorted_probs = np.sort(probs)
        p = probs[codes[selected]]
        right = np.searchsorted(sorted_probs, p, side="right")
        left = np.searchsorted(sorted_probs, p, side="left")
        ranks[selected] = (len(probs) - right) + (right - left + 1) / 2.0
    return ItemPredictionResult(ranks=ranks, num_items=len(vocab))


def random_guess_expectation(num_items: int, k: int = 10) -> tuple[float, float]:
    """Expected (Acc@k, RR) of uniform random ranking over ``num_items``.

    The paper quotes these as ``k/|I|`` and ``(1/|I|)·Σ_i 1/i``; our models
    should beat them by a wide margin.
    """
    if num_items < 1:
        raise DataError("num_items must be >= 1")
    acc = min(k, num_items) / num_items
    rr = float(np.sum(1.0 / np.arange(1, num_items + 1)) / num_items)
    return acc, rr
