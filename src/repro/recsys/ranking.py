"""Item-prediction task (paper Section VI-E, Tables X/XI) and re-ranking.

Protocol, following the paper exactly:

1. Hold one action out per user — at a random position ("missing data
   recovery") or the last position ("forecasting").
2. Fit a skill model on the remaining actions.
3. For each held-out action, infer the user's skill level from the
   chronologically closest *training* action, take the model's item-ID
   categorical distribution at that level, and rank all items by
   probability.
4. Score the rank of the true item with top-10 accuracy (Acc@10) and
   reciprocal rank (RR).

Ties — ubiquitous among items never seen at a level, which all share the
smoothing floor — are scored with *mid-ranks* (the expected rank under
random shuffling of tied items), so results don't depend on sort order.
The registered experiments ``table10`` / ``table11`` reproduce the
paper's two tables from this module; ``repro.recsys.metrics`` re-scores
the same rank arrays at other cutoffs.

Beyond the paper's protocol, :func:`rerank_recommendations` folds the two
Section VII extension signals — skip-level progression
(``extension_skip``: users rarely leap several levels at once, so
recommending far above the user's level mostly produces skips) and
satisfaction weighting (``extension_satisfaction``: actions the user did
not enjoy should not pull recommendations) — into an upskilling
recommendation list *after* scoring, as a composable post-pass rather
than new model machinery, in the same spirit as
``repro.recsys.upskill``.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence
from dataclasses import dataclass, replace

import numpy as np

from repro.core.model import SkillModel
from repro.data.splits import HeldOutAction
from repro.exceptions import ConfigurationError, DataError
from repro.recsys.upskill import Recommendation

__all__ = [
    "ItemPredictionResult",
    "predict_items",
    "random_guess_expectation",
    "rerank_recommendations",
]


@dataclass(frozen=True)
class ItemPredictionResult:
    """Per-action ranks and the two aggregate measures."""

    ranks: np.ndarray  # mid-rank of the true item per held-out action
    num_items: int

    @property
    def acc_at_10(self) -> float:
        """Fraction of held-out actions whose true item mid-ranks in the top 10."""
        return float(np.mean(self.ranks <= 10))

    @property
    def mean_reciprocal_rank(self) -> float:
        return float(np.mean(1.0 / self.ranks))

    @property
    def reciprocal_ranks(self) -> np.ndarray:
        """Per-action RR values, e.g. for significance testing."""
        return 1.0 / self.ranks

    def accuracy_at(self, k: int) -> float:
        """Fraction of true items mid-ranking within the top ``k``."""
        return float(np.mean(self.ranks <= k))


def predict_items(
    model: SkillModel, held: Sequence[HeldOutAction]
) -> ItemPredictionResult:
    """Run the ranking protocol for a list of held-out actions.

    The model must expose the item-ID feature (all Table X/XI models do);
    held-out items must exist in the training catalog — the split
    functions guarantee this because the catalog covers the whole domain.
    """
    if not held:
        raise DataError("no held-out actions to evaluate")
    vocab = model.encoded.vocabulary("__item_id__")
    code_of = {item_id: code for code, item_id in enumerate(vocab)}

    levels = np.empty(len(held), dtype=np.int64)
    codes = np.empty(len(held), dtype=np.int64)
    for pos, held_action in enumerate(held):
        action = held_action.action
        levels[pos] = model.skill_at(action.user, action.time)
        code = code_of.get(action.item)
        if code is None:
            raise DataError(f"held-out item {action.item!r} missing from the catalog")
        codes[pos] = code

    # All actions at a level share its probability vector; one sort of it
    # plus two binary searches rank every true item at once.  For a true
    # item with probability p, ``n − searchsorted(right)`` items rank
    # strictly higher and ``searchsorted(right) − searchsorted(left)`` tie
    # with it (including itself), giving the same mid-rank arithmetic as
    # counting per action.
    ranks = np.empty(len(held), dtype=np.float64)
    for level in np.unique(levels):
        selected = levels == level
        probs = model.item_probabilities(int(level))
        sorted_probs = np.sort(probs)
        p = probs[codes[selected]]
        right = np.searchsorted(sorted_probs, p, side="right")
        left = np.searchsorted(sorted_probs, p, side="left")
        ranks[selected] = (len(probs) - right) + (right - left + 1) / 2.0
    return ItemPredictionResult(ranks=ranks, num_items=len(vocab))


def rerank_recommendations(
    recommendations: Sequence[Recommendation],
    *,
    level: float | None = None,
    max_jump: float | None = None,
    satisfaction: Mapping[Hashable, float] | None = None,
    satisfaction_weight: float = 1.0,
) -> list[Recommendation]:
    """Skip- and satisfaction-aware post-pass over an upskilling list.

    Two adjustments, both off by default:

    - **skip cap** (``extension_skip``): with ``level`` and ``max_jump``
      set, items whose difficulty exceeds ``level + max_jump`` are
      dropped — the skip-level experiment shows monotone progressions
      rarely leap levels, so such items are overwhelmingly skipped, not
      attempted.
    - **satisfaction blend** (``extension_satisfaction``): with a
      ``satisfaction`` map (item → expected satisfaction in ``[0, 1]``,
      e.g. mean observed rating rescaled), each score is multiplied by
      ``satisfaction ** satisfaction_weight``.  Items absent from the map
      keep their score (neutral 1.0) — partial satisfaction data must
      not zero out the rest of the catalog.

    Re-sorting is stable on the adjusted score, so untouched scores keep
    their upstream (challenge/interest) order.  Returns new
    :class:`~repro.recsys.upskill.Recommendation` rows with the adjusted
    ``score``; the decomposition fields are preserved as computed by the
    recommender.
    """
    if (max_jump is None) != (level is None):
        raise ConfigurationError(
            "the skip cap needs both level and max_jump (or neither)"
        )
    if satisfaction_weight < 0:
        raise ConfigurationError("satisfaction_weight must be >= 0")
    kept: list[Recommendation] = []
    for rec in recommendations:
        if max_jump is not None and rec.difficulty > level + max_jump:
            continue
        score = rec.score
        if satisfaction is not None:
            value = satisfaction.get(rec.item)
            if value is not None:
                if not 0.0 <= value <= 1.0:
                    raise ConfigurationError(
                        f"satisfaction for {rec.item!r} is {value}; expected [0, 1]"
                    )
                score = score * value**satisfaction_weight
        kept.append(rec if score == rec.score else replace(rec, score=score))
    kept.sort(key=lambda rec: -rec.score)
    return kept


def random_guess_expectation(num_items: int, k: int = 10) -> tuple[float, float]:
    """Expected (Acc@k, RR) of uniform random ranking over ``num_items``.

    The paper quotes these as ``k/|I|`` and ``(1/|I|)·Σ_i 1/i``; our models
    should beat them by a wide margin.
    """
    if num_items < 1:
        raise DataError("num_items must be >= 1")
    acc = min(k, num_items) / num_items
    rr = float(np.sum(1.0 / np.arange(1, num_items + 1)) / num_items)
    return acc, rr
