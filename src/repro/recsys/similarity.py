"""Performance-based item similarity (the Kappa Learning construction).

Kappa Learning builds item-to-item similarity not from content features
but from *performance profiles*: two exercises are similar when the same
population succeeds (or struggles) on both.  The analogue in this
repository's generative model is the skill posterior ``P(s | i)``
(Equation 10): each item's column of per-level posterior mass is its
performance profile, and cosine similarity between profiles says "these
two items are selected by users at the same stage of progression".

:func:`build_similarity_index` precomputes, for every catalog item, its
top-``k`` neighbours under that cosine — an ``(n, k)`` ``int32`` neighbour
table plus an ``(n, k)`` ``float64`` score table.  The index is meant to
be built **once at model-publish time** (the arrays ride inside the model
artifact / shared-memory segment via ``core.serialize``, so prefork
workers map one physical copy) and queried at serve time in O(k):
:meth:`ItemSimilarityIndex.neighbors` for raw lookup, and
:func:`similar_harder` for the upskilling retrieval mode — "items like
this one, but harder" — which filters the anchor's neighbour list down to
items whose difficulty exceeds the anchor's.

Determinism matters here: the serve layer asserts byte-identical
responses between batched and sequential dispatch, and the bench asserts
parity between in-process and prefork serving, so neighbour order must
not depend on how the index was built.  Ties in cosine are broken by
ascending item position (``np.lexsort``), never by partition order.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.model import SkillModel
from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "ItemSimilarityIndex",
    "build_similarity_index",
    "similar_harder",
    "SimilarItem",
]

#: Rows of the profile matrix are processed in blocks of this many items,
#: bounding the transient ``block x n`` cosine slab (a 50k-item catalog
#: never materialises the full 20GB ``n x n`` matrix).
_BLOCK_ROWS = 512


@dataclass(frozen=True)
class SimilarItem:
    """One neighbour from the index, with its difficulty attached."""

    item: Hashable
    similarity: float
    difficulty: float


@dataclass(frozen=True)
class ItemSimilarityIndex:
    """Precomputed top-``k`` cosine neighbours over skill-posterior profiles.

    ``items`` fixes the row order (the model's item vocabulary);
    ``neighbors[i, j]`` is the position in ``items`` of item ``i``'s
    ``j``-th nearest neighbour, ``scores[i, j]`` its cosine in ``[0, 1]``
    (profiles are non-negative).  ``meta`` records how the index was
    built (``k``, metric, prior) so artifacts stay self-describing.
    """

    items: Sequence[Hashable]
    neighbors: np.ndarray  # int32 (n, k) positions into ``items``
    scores: np.ndarray  # float64 (n, k) cosine similarities
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.neighbors.ndim != 2 or self.neighbors.shape != self.scores.shape:
            raise ConfigurationError(
                "neighbors and scores must be matching (n, k) tables"
            )
        if self.neighbors.shape[0] != len(self.items):
            raise ConfigurationError(
                f"index has {self.neighbors.shape[0]} rows for "
                f"{len(self.items)} items"
            )
        object.__setattr__(
            self, "_position", {item: pos for pos, item in enumerate(self.items)}
        )

    @property
    def k(self) -> int:
        return int(self.neighbors.shape[1])

    @property
    def nbytes(self) -> int:
        """Resident footprint of the two tables (for LRU accounting)."""
        return int(self.neighbors.nbytes + self.scores.nbytes)

    def position(self, item: Hashable) -> int:
        try:
            return self._position[item]  # type: ignore[attr-defined]
        except KeyError:
            raise DataError(f"item {item!r} is not in the similarity index") from None

    def neighbors_of(self, item: Hashable) -> list[tuple[Hashable, float]]:
        """The stored ``(neighbour, cosine)`` list for ``item``, best first."""
        row = self.position(item)
        return [
            (self.items[pos], float(score))
            for pos, score in zip(self.neighbors[row], self.scores[row])
            if pos >= 0
        ]

    # ------------------------------------------------------------ payloads

    def to_payload(self) -> dict:
        """The serialization-layer view: raw arrays + meta, no item ids.

        Item ids are *not* stored — the index row order is defined to be
        the model's item vocabulary, which the model artifact already
        carries, so the payload stays pure arrays (shm-friendly).
        """
        return {
            "neighbors": self.neighbors,
            "scores": self.scores,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_payload(cls, payload: dict, items: Sequence[Hashable]) -> ItemSimilarityIndex:
        """Rebuild from a ``core.serialize`` payload and the model's vocab."""
        return cls(
            items=list(items),
            neighbors=np.asarray(payload["neighbors"], dtype=np.int32),
            scores=np.asarray(payload["scores"], dtype=np.float64),
            meta=dict(payload.get("meta", {})),
        )


def build_similarity_index(
    model: SkillModel,
    *,
    k: int = 20,
    prior: str = "empirical",
) -> ItemSimilarityIndex:
    """Build the Kappa-style index from a fitted model's skill posteriors.

    ``prior`` selects the skill prior for Equation 10 (``"empirical"``
    matches the difficulty estimates the recommender pairs it with;
    ``"uniform"`` is also accepted).  ``k`` is clamped to ``n - 1`` — an
    item is never its own neighbour.  Rows with a zero profile (cannot
    happen with smoothed categorical cells, but guarded anyway) get
    zero-similarity neighbours in position order.
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    if prior == "empirical":
        prior_vector = model.empirical_skill_prior()
    elif prior == "uniform":
        prior_vector = None
    else:
        raise ConfigurationError(f"unknown prior {prior!r}")
    profiles = model.posterior_skill_given_item(prior=prior_vector)  # (n, S)
    items = list(model.encoded.vocabulary("__item_id__"))
    n = profiles.shape[0]
    if n < 2:
        raise DataError("a similarity index needs at least two items")
    k = min(int(k), n - 1)
    norms = np.linalg.norm(profiles, axis=1)
    unit = profiles / np.maximum(norms, 1e-300)[:, None]

    neighbors = np.empty((n, k), dtype=np.int32)
    scores = np.empty((n, k), dtype=np.float64)
    positions = np.arange(n)
    for start in range(0, n, _BLOCK_ROWS):
        stop = min(start + _BLOCK_ROWS, n)
        block = unit[start:stop] @ unit.T  # (block, n)
        block[positions[start:stop] - start, positions[start:stop]] = -np.inf
        for offset in range(stop - start):
            row = block[offset]
            # Deterministic top-k: primary key descending cosine, tie-break
            # ascending item position (lexsort's last key is primary).
            order = np.lexsort((positions, -row))[:k]
            neighbors[start + offset] = order
            scores[start + offset] = row[order]
    # The self-similarity sentinel must never leak out as a score.
    scores[~np.isfinite(scores)] = 0.0
    return ItemSimilarityIndex(
        items=items,
        neighbors=neighbors,
        scores=scores,
        meta={"k": k, "metric": "cosine", "prior": prior, "profile": "P(s|i)"},
    )


def similar_harder(
    index: ItemSimilarityIndex,
    difficulty: np.ndarray,
    anchor: Hashable,
    *,
    k: int = 10,
    margin: float = 0.0,
) -> list[SimilarItem]:
    """"Items like ``anchor``, but harder" — the upskilling retrieval mode.

    Filters the anchor's precomputed neighbour list to items whose
    difficulty exceeds the anchor's by more than ``margin``, preserving
    similarity order, and returns at most ``k`` of them.  ``difficulty``
    must be aligned with ``index.items`` (the recommender's own
    difficulty vector is).  An anchor at the top of the difficulty scale
    legitimately returns an empty list — there is nothing harder.
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    if len(difficulty) != len(index.items):
        raise ConfigurationError(
            f"difficulty vector has {len(difficulty)} entries for "
            f"{len(index.items)} indexed items"
        )
    row = index.position(anchor)
    floor = float(difficulty[row]) + margin
    picks: list[SimilarItem] = []
    for pos, score in zip(index.neighbors[row], index.scores[row]):
        if pos < 0:
            continue
        if float(difficulty[pos]) > floor:
            picks.append(
                SimilarItem(
                    item=index.items[pos],
                    similarity=float(score),
                    difficulty=float(difficulty[pos]),
                )
            )
            if len(picks) >= k:
                break
    return picks
