"""Ranking metrics beyond the paper's Acc@10 / RR.

The paper evaluates item prediction with top-10 accuracy and reciprocal
rank (Tables X/XI, reproduced by the ``table10`` / ``table11``
experiments).  Practitioners comparing against modern
sequential-recommendation baselines usually also want NDCG@k and
recall@k; these compute directly from the mid-rank arrays
:class:`~repro.recsys.ranking.ItemPredictionResult` already carries, so
any experiment's output can be re-scored without re-running models.  The
extension experiments lean on this: ``extension_markov`` compares the
skill model against the Markov baseline on the same cutoff grid, and
``extension_skip`` / ``extension_satisfaction`` report their
Section VII variants with the identical protocol so the deltas are
attributable to the modelling change, not the metric.

All functions take ranks (1-based, possibly fractional mid-ranks for tied
items) with one entry per evaluated action and a single relevant item per
action — the paper's protocol.  Fractional mid-ranks flow through every
formula (the NDCG discount interpolates), which keeps tied items' credit
independent of sort order — the same tie discipline
``repro.recsys.ranking`` uses to produce the ranks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.recsys.ranking import ItemPredictionResult

__all__ = ["ndcg_at_k", "recall_at_k", "mean_rank", "ranking_summary"]


def _check_ranks(ranks: np.ndarray) -> np.ndarray:
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.ndim != 1 or ranks.size == 0:
        raise ConfigurationError("ranks must be a non-empty 1-D array")
    if np.any(ranks < 1):
        raise ConfigurationError("ranks are 1-based; found a rank below 1")
    return ranks


def ndcg_at_k(ranks: np.ndarray, k: int = 10) -> float:
    """Mean NDCG@k with a single relevant item per action.

    With one relevant item the ideal DCG is 1, so per action
    ``NDCG@k = 1 / log2(rank + 1)`` if the item ranks within ``k``, else 0.
    Fractional mid-ranks interpolate the discount smoothly, which keeps
    tied items' credit fair.
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    ranks = _check_ranks(ranks)
    gains = np.where(ranks <= k, 1.0 / np.log2(ranks + 1.0), 0.0)
    return float(gains.mean())


def recall_at_k(ranks: np.ndarray, k: int = 10) -> float:
    """Fraction of actions whose relevant item ranks within ``k``.

    With one relevant item per action this equals hit-rate@k (and the
    paper's Acc@k).
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    ranks = _check_ranks(ranks)
    return float(np.mean(ranks <= k))


def mean_rank(ranks: np.ndarray) -> float:
    """Average (mid-)rank of the relevant item — lower is better."""
    return float(_check_ranks(ranks).mean())


def ranking_summary(result: ItemPredictionResult, *, ks: tuple[int, ...] = (1, 5, 10, 20)) -> dict:
    """All metrics of one prediction result in a flat dict.

    Keys: ``rr``, ``mean_rank``, and per cutoff ``recall@k`` / ``ndcg@k``.
    """
    ranks = result.ranks
    summary: dict[str, float] = {
        "rr": result.mean_reciprocal_rank,
        "mean_rank": mean_rank(ranks),
    }
    for k in ks:
        summary[f"recall@{k}"] = recall_at_k(ranks, k)
        summary[f"ndcg@{k}"] = ndcg_at_k(ranks, k)
    return summary
