"""The upskilling recommender (the paper's Figure 1 vision).

The paper stops at modelling skill and difficulty, leaving the
recommender itself as future work but sketching its shape: "estimate the
skill of a target user and recommend to him/her an item with appropriate
difficulty for upskilling ... e.g. d_i = 3.1 for s_ut = 3" (Sections I and
III-B), with interest coming from a conventional recommender (Section
VII).  This module assembles exactly that from the library's parts:

- **skill** — the fitted model's level for the user (at a given time),
- **challenge fit** — a window around the user's level: full credit for
  difficulty inside ``[s + window_low, s + window_high]``, exponentially
  decaying credit outside it,
- **interest** — the model's own item-selection distribution at the
  user's level, ``P(item | s)`` (what users like them actually pick), and
- a geometric blend of the two, skipping items the user already selected.

This is deliberately a *composition*, not new machinery: the point of the
paper is that once skill and difficulty live on one scale, recommendation
for upskilling is arithmetic.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.model import SkillModel
from repro.data.actions import ActionLog
from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "UpskillConfig",
    "Recommendation",
    "RecommendQuery",
    "UpskillRecommender",
]


@dataclass(frozen=True)
class UpskillConfig:
    """Shape of the challenge window and the interest/challenge blend.

    The default window ``(-0.25, +0.75]`` around the user's level targets
    "moderately challenging" items: mostly at or just above the user's
    ability, the zone where practice still stretches the user (the paper's
    ``d_i = 3.1 for s = 3`` example sits inside it).  ``interest_weight``
    is the geometric-mean exponent on interest (0 = challenge only,
    1 = interest only).  ``decay`` controls how fast credit falls off per
    unit of difficulty outside the window.
    """

    window_low: float = -0.25
    window_high: float = 0.75
    interest_weight: float = 0.5
    decay: float = 2.0
    exclude_seen: bool = True

    def __post_init__(self) -> None:
        if self.window_low > self.window_high:
            raise ConfigurationError("window_low must be <= window_high")
        if not 0.0 <= self.interest_weight <= 1.0:
            raise ConfigurationError("interest_weight must be in [0, 1]")
        if self.decay <= 0:
            raise ConfigurationError("decay must be positive")


@dataclass(frozen=True)
class Recommendation:
    """One recommended item with its score decomposition."""

    item: Hashable
    score: float
    difficulty: float
    challenge_fit: float
    interest: float


@dataclass(frozen=True)
class RecommendQuery:
    """One request in a vectorized :meth:`UpskillRecommender.recommend_batch`.

    ``level`` is the user's already-resolved 1-based skill level (the
    serve layer resolves users to levels before batching so the batch
    kernel stays pure array work); ``exclude`` lists item ids to drop
    (the caller-side stand-in for ``exclude_seen`` when no action log is
    at hand, e.g. over HTTP).
    """

    level: int
    k: int = 10
    exclude: frozenset = frozenset()


class UpskillRecommender:
    """Recommends items with appropriate difficulty for upskilling."""

    def __init__(
        self,
        model: SkillModel,
        difficulties: Mapping[Hashable, float],
        config: UpskillConfig | None = None,
    ):
        self.model = model
        self.config = config or UpskillConfig()
        vocab = model.encoded.vocabulary("__item_id__")
        missing = [item for item in vocab if item not in difficulties]
        if missing:
            raise DataError(
                f"{len(missing)} catalog items lack difficulty estimates "
                f"(e.g. {missing[0]!r}); use generation-based estimates"
            )
        self._items = list(vocab)
        self._difficulty = np.asarray([difficulties[item] for item in vocab])

    @property
    def items(self) -> list[Hashable]:
        """Catalog item ids in index order (the model's item vocabulary)."""
        return self._items

    @property
    def difficulty_vector(self) -> np.ndarray:
        """Per-item difficulty aligned with :attr:`items` (read-only view)."""
        return self._difficulty

    def challenge_fit(self, level: int) -> np.ndarray:
        """Per-item challenge credit in [0, 1] for a user at ``level``."""
        cfg = self.config
        low = level + cfg.window_low
        high = level + cfg.window_high
        distance = np.where(
            self._difficulty < low,
            low - self._difficulty,
            np.where(self._difficulty > high, self._difficulty - high, 0.0),
        )
        return np.exp(-cfg.decay * distance)

    def level_of(self, user: Hashable, time: float | None = None) -> int:
        """The user's 1-based level at ``time`` (default: their latest)."""
        if time is None:
            return int(self.model.skill_trajectory(user)[-1])
        return self.model.skill_at(user, time)

    def score_components(
        self, level: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(interest, challenge, blended score)`` per item at ``level``.

        This is the request-independent part of a recommendation: every
        query at the same level shares these three vectors, which is what
        the serve layer's micro-batched path reuses across a flush.
        """
        interest = self.model.item_probabilities(level)
        challenge = self.challenge_fit(level)
        w = self.config.interest_weight
        # Geometric blend; epsilon keeps log finite for zero-interest items.
        score = np.exp(
            w * np.log(np.maximum(interest, 1e-300))
            + (1.0 - w) * np.log(np.maximum(challenge, 1e-300))
        )
        return interest, challenge, score

    def recommend(
        self,
        user: Hashable,
        *,
        time: float | None = None,
        k: int = 10,
        log: ActionLog | None = None,
    ) -> list[Recommendation]:
        """Top-``k`` items for ``user`` at ``time`` (default: their latest).

        ``log`` supplies the user's history for seen-item exclusion when
        ``config.exclude_seen`` is set.
        """
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        level = self.level_of(user, time)
        if self.config.exclude_seen:
            if log is None:
                raise ConfigurationError(
                    "exclude_seen=True needs the action log to know what was seen"
                )
            exclude = log.sequence(user).unique_items
        else:
            exclude = frozenset()
        return self._recommend_at(level, k=k, exclude=exclude)

    def recommend_for_level(
        self, level: int, *, k: int = 10, exclude: frozenset = frozenset()
    ) -> list[Recommendation]:
        """Top-``k`` for an already-resolved ``level`` (the serve-layer entry).

        ``exclude`` replaces ``config.exclude_seen``'s log lookup with an
        explicit item-id set — over HTTP the server has no action log, so
        clients ship the history they want excluded.  Identical math to
        :meth:`recommend`; the two share one scoring path so offline and
        served recommendations can never drift.
        """
        if k < 1:
            raise ConfigurationError("k must be >= 1")
        return self._recommend_at(level, k=k, exclude=exclude)

    def recommend_batch(
        self, queries: list[RecommendQuery]
    ) -> list[list[Recommendation]]:
        """Vectorized batch path: one score evaluation per distinct level.

        Each query's answer is computed exactly as its singleton
        :meth:`recommend_for_level` call would — only the level-dependent
        vectors are shared — so batched dispatch stays byte-identical to
        sequential dispatch (the serve layer's parity contract).
        """
        by_level: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        results: list[list[Recommendation]] = []
        for query in queries:
            if query.k < 1:
                raise ConfigurationError("k must be >= 1")
            components = by_level.get(query.level)
            if components is None:
                components = self.score_components(query.level)
                by_level[query.level] = components
            results.append(
                self._recommend_at(
                    query.level,
                    k=query.k,
                    exclude=query.exclude,
                    components=components,
                )
            )
        return results

    def _recommend_at(
        self,
        level: int,
        *,
        k: int,
        exclude,
        components: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> list[Recommendation]:
        interest, challenge, base = (
            components if components is not None else self.score_components(level)
        )
        score = base
        if exclude:
            score = base.copy()
            for pos, item in enumerate(self._items):
                if item in exclude:
                    score[pos] = -np.inf
        order = np.argsort(-score)[:k]
        return [
            Recommendation(
                item=self._items[pos],
                score=float(score[pos]),
                difficulty=float(self._difficulty[pos]),
                challenge_fit=float(challenge[pos]),
                interest=float(interest[pos]),
            )
            for pos in order
            if np.isfinite(score[pos])
        ]
