"""Downstream recommendation tasks: item prediction, FFM rating prediction,
and the assembled upskilling recommender (+ its similarity index)."""

from repro.recsys.encoding import FFMSample, RatingEncoder, RatingInstance
from repro.recsys.ffm import FFMConfig, FFMModel
from repro.recsys.ranking import (
    ItemPredictionResult,
    predict_items,
    random_guess_expectation,
    rerank_recommendations,
)
from repro.recsys.markov import MarkovItemModel
from repro.recsys.metrics import mean_rank, ndcg_at_k, ranking_summary, recall_at_k
from repro.recsys.similarity import (
    ItemSimilarityIndex,
    SimilarItem,
    build_similarity_index,
    similar_harder,
)
from repro.recsys.upskill import (
    Recommendation,
    RecommendQuery,
    UpskillConfig,
    UpskillRecommender,
)
from repro.recsys.rating import VARIANTS, RatingTaskResult, build_instances, run_rating_task

__all__ = [
    "FFMSample",
    "RatingEncoder",
    "RatingInstance",
    "FFMConfig",
    "FFMModel",
    "ItemPredictionResult",
    "predict_items",
    "random_guess_expectation",
    "rerank_recommendations",
    "MarkovItemModel",
    "mean_rank",
    "ndcg_at_k",
    "ranking_summary",
    "recall_at_k",
    "ItemSimilarityIndex",
    "SimilarItem",
    "build_similarity_index",
    "similar_harder",
    "Recommendation",
    "RecommendQuery",
    "UpskillConfig",
    "UpskillRecommender",
    "VARIANTS",
    "RatingTaskResult",
    "build_instances",
    "run_rating_task",
]
