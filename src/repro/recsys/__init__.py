"""Downstream recommendation tasks: item prediction and FFM rating prediction."""

from repro.recsys.encoding import FFMSample, RatingEncoder, RatingInstance
from repro.recsys.ffm import FFMConfig, FFMModel
from repro.recsys.ranking import (
    ItemPredictionResult,
    predict_items,
    random_guess_expectation,
)
from repro.recsys.markov import MarkovItemModel
from repro.recsys.metrics import mean_rank, ndcg_at_k, ranking_summary, recall_at_k
from repro.recsys.upskill import Recommendation, UpskillConfig, UpskillRecommender
from repro.recsys.rating import VARIANTS, RatingTaskResult, build_instances, run_rating_task

__all__ = [
    "FFMSample",
    "RatingEncoder",
    "RatingInstance",
    "FFMConfig",
    "FFMModel",
    "ItemPredictionResult",
    "predict_items",
    "random_guess_expectation",
    "MarkovItemModel",
    "mean_rank",
    "ndcg_at_k",
    "ranking_summary",
    "recall_at_k",
    "Recommendation",
    "UpskillConfig",
    "UpskillRecommender",
    "VARIANTS",
    "RatingTaskResult",
    "build_instances",
    "run_rating_task",
]
