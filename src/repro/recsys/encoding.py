"""Field-aware feature encoding for the rating-prediction task.

Field-aware factorization machines (Juan et al., RecSys '16) take sparse
samples of ``(field, feature index, value)`` triples.  This module builds
them from rating actions:

- field ``user`` — one-hot user id,
- field ``item`` — one-hot item id,
- field ``skill`` — one-hot skill level (the ``+S`` variants of
  Table XII),
- field ``difficulty`` — a single numeric feature carrying the estimated
  item difficulty (the ``+D`` variants).

The encoder is fitted on training samples; unseen users/items at test time
map to a shared out-of-vocabulary index per field, mirroring how libffm
handles cold features (their latent vectors stay near initialization).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["FFMSample", "RatingInstance", "RatingEncoder", "FIELDS"]

FIELDS = ("user", "item", "skill", "difficulty")


@dataclass(frozen=True)
class FFMSample:
    """One encoded sample: parallel arrays of active features."""

    fields: np.ndarray  # int64, field index per active feature
    indices: np.ndarray  # int64, global feature index
    values: np.ndarray  # float64, feature value (1.0 for one-hots)
    target: float


@dataclass(frozen=True)
class RatingInstance:
    """One raw rating record before encoding."""

    user: Hashable
    item: Hashable
    rating: float
    skill: int | None = None
    difficulty: float | None = None


@dataclass
class RatingEncoder:
    """Maps rating instances to :class:`FFMSample` lists.

    ``include_skill`` / ``include_difficulty`` select the Table XII
    variant: U+I (both off), U+I+S, U+I+D, U+I+S+D.
    """

    include_skill: bool = False
    include_difficulty: bool = False
    _user_index: dict = field(default_factory=dict, repr=False)
    _item_index: dict = field(default_factory=dict, repr=False)
    _skill_index: dict = field(default_factory=dict, repr=False)
    _difficulty_feature: int | None = field(default=None, repr=False)
    _frozen: bool = field(default=False, repr=False)
    _num_features: int = field(default=0, repr=False)

    def fit(self, instances: Sequence[RatingInstance]) -> "RatingEncoder":
        """Build vocabularies from training instances.

        Reserves one out-of-vocabulary index per one-hot field.
        """
        if self._frozen:
            raise ConfigurationError("encoder is already fitted")
        for inst in instances:
            self._user_index.setdefault(inst.user, len(self._user_index))
            self._item_index.setdefault(inst.item, len(self._item_index))
            if self.include_skill:
                if inst.skill is None:
                    raise ConfigurationError("include_skill=True but instance lacks a skill")
                self._skill_index.setdefault(inst.skill, len(self._skill_index))
        # Global feature index layout: [users | user-OOV | items | item-OOV |
        # skills | skill-OOV | difficulty].
        offset = 0
        self._user_offset = offset
        offset += len(self._user_index) + 1
        self._item_offset = offset
        offset += len(self._item_index) + 1
        self._skill_offset = offset
        if self.include_skill:
            offset += len(self._skill_index) + 1
        if self.include_difficulty:
            self._difficulty_feature = offset
            offset += 1
        self._num_features = offset
        self._frozen = True
        return self

    @property
    def num_features(self) -> int:
        self._require_fitted()
        return self._num_features

    @property
    def num_fields(self) -> int:
        return 2 + int(self.include_skill) + int(self.include_difficulty)

    def encode(self, instances: Sequence[RatingInstance]) -> list[FFMSample]:
        """Encode instances (training or test) into samples."""
        self._require_fitted()
        samples = []
        for inst in instances:
            fields = [0, 1]
            indices = [
                self._user_offset
                + self._user_index.get(inst.user, len(self._user_index)),
                self._item_offset
                + self._item_index.get(inst.item, len(self._item_index)),
            ]
            values = [1.0, 1.0]
            next_field = 2
            if self.include_skill:
                if inst.skill is None:
                    raise ConfigurationError("include_skill=True but instance lacks a skill")
                fields.append(next_field)
                indices.append(
                    self._skill_offset
                    + self._skill_index.get(inst.skill, len(self._skill_index))
                )
                values.append(1.0)
                next_field += 1
            if self.include_difficulty:
                if inst.difficulty is None:
                    raise ConfigurationError(
                        "include_difficulty=True but instance lacks a difficulty"
                    )
                fields.append(next_field)
                indices.append(self._difficulty_feature)
                values.append(float(inst.difficulty))
            samples.append(
                FFMSample(
                    fields=np.asarray(fields, dtype=np.int64),
                    indices=np.asarray(indices, dtype=np.int64),
                    values=np.asarray(values, dtype=np.float64),
                    target=float(inst.rating),
                )
            )
        return samples

    def _require_fitted(self) -> None:
        if not self._frozen:
            raise ConfigurationError("encoder must be fitted before use")
