"""Rating-prediction task (paper Section VI-E, Table XII).

Pipeline, per holdout setting (random / last):

1. Hold one rated action out per user; fit a skill model on the rest.
2. Estimate item difficulties from the fitted model (empirical-prior
   generation estimates, the paper's best difficulty model).
3. Build FFM instances per variant — U+I (the matrix-factorization
   baseline), U+I+S, U+I+D, U+I+S+D — where S is the skill level at the
   action's time (nearest training action for test instances) and D the
   item's difficulty estimate.
4. Fit an FFM per variant on the training ratings and report held-out
   RMSE.

The paper normalizes all ratings to ``[0, 5]``; our simulators emit that
range natively.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.difficulty import PRIOR_EMPIRICAL, generation_difficulty
from repro.core.features import FeatureSet
from repro.core.model import SkillModel
from repro.core.training import Trainer, TrainerConfig
from repro.data.actions import Action, ActionLog
from repro.data.items import ItemCatalog
from repro.data.splits import HeldOutAction, holdout_last_position, holdout_random_position
from repro.exceptions import ConfigurationError, DataError
from repro.recsys.encoding import RatingEncoder, RatingInstance
from repro.recsys.ffm import FFMConfig, FFMModel

__all__ = ["VARIANTS", "RatingTaskResult", "build_instances", "run_rating_task"]

#: Table XII columns: which side features each variant includes.
VARIANTS: dict[str, tuple[bool, bool]] = {
    "U+I": (False, False),
    "U+I+S": (True, False),
    "U+I+D": (False, True),
    "U+I+S+D": (True, True),
}


@dataclass(frozen=True)
class RatingTaskResult:
    """Held-out RMSE per variant plus per-instance squared errors."""

    holdout: str
    rmse: Mapping[str, float]
    squared_errors: Mapping[str, np.ndarray]


def _instance_from_action(
    action: Action,
    model: SkillModel,
    difficulties: Mapping,
) -> RatingInstance:
    if action.rating is None:
        raise DataError(f"action on {action.item!r} by {action.user!r} has no rating")
    if action.item not in difficulties:
        raise DataError(f"no difficulty estimate for item {action.item!r}")
    return RatingInstance(
        user=action.user,
        item=action.item,
        rating=action.rating,
        skill=model.skill_at(action.user, action.time),
        difficulty=float(difficulties[action.item]),
    )


def build_instances(
    actions: Sequence[Action],
    model: SkillModel,
    difficulties: Mapping,
) -> list[RatingInstance]:
    """Rating instances carrying skill and difficulty side information.

    Each encoder variant then uses whichever of the two its flags enable.
    """
    return [_instance_from_action(action, model, difficulties) for action in actions]


def run_rating_task(
    log: ActionLog,
    catalog: ItemCatalog,
    feature_set: FeatureSet,
    num_levels: int,
    *,
    holdout: str = "random",
    variants: Sequence[str] = tuple(VARIANTS),
    seed: int = 0,
    ffm_config: FFMConfig | None = None,
    **trainer_kwargs,
) -> RatingTaskResult:
    """End-to-end Table XII experiment for one holdout setting."""
    if holdout == "random":
        rng = np.random.default_rng(seed)
        train_log, held = holdout_random_position(log, rng)
    elif holdout == "last":
        train_log, held = holdout_last_position(log)
    else:
        raise ConfigurationError(f"holdout must be 'random' or 'last', got {holdout!r}")
    unknown = set(variants) - set(VARIANTS)
    if unknown:
        raise ConfigurationError(f"unknown variants: {sorted(unknown)}")

    config = TrainerConfig(num_levels=num_levels, **trainer_kwargs)
    model = Trainer(config).fit(train_log, catalog, feature_set)
    difficulties = generation_difficulty(model, prior=PRIOR_EMPIRICAL)

    train_actions = list(train_log.actions())
    train_instances = build_instances(
        [a for a in train_actions if a.rating is not None], model, difficulties
    )
    test_instances = build_instances([h.action for h in held], model, difficulties)
    if not train_instances or not test_instances:
        raise DataError("rating task needs rated actions on both sides of the split")

    ffm_config = ffm_config or FFMConfig(seed=seed)
    rmse: dict[str, float] = {}
    squared_errors: dict[str, np.ndarray] = {}
    for variant in variants:
        include_skill, include_difficulty = VARIANTS[variant]
        encoder = RatingEncoder(
            include_skill=include_skill, include_difficulty=include_difficulty
        ).fit(train_instances)
        train_samples = encoder.encode(train_instances)
        test_samples = encoder.encode(test_instances)
        ffm = FFMModel(encoder.num_features, encoder.num_fields, ffm_config)
        ffm.fit(train_samples)
        predictions = ffm.predict(test_samples)
        targets = np.asarray([s.target for s in test_samples])
        errors = (predictions - targets) ** 2
        rmse[variant] = float(np.sqrt(errors.mean()))
        squared_errors[variant] = errors
    return RatingTaskResult(holdout=holdout, rmse=rmse, squared_errors=squared_errors)
