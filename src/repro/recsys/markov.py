"""First-order Markov-chain item predictor (sequential baseline).

The paper's related work contrasts progression modelling with *sequential
recommendation* (Markov chains, neural models): sequential models predict
the next item from recent items, progression models from the latent skill
state.  Yang et al. additionally report the ID progression model beating a
hidden Markov model on next-event prediction.  This module provides the
classic first-order baseline so the comparison is runnable here:

    P(i_next = j | i_prev = k) ∝ λ + count(k → j)

with additive smoothing and a popularity fallback for position-0
predictions (no previous item).  Evaluation mirrors
:mod:`repro.recsys.ranking`: mid-rank ties, Acc@10, reciprocal rank.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.data.actions import ActionLog
from repro.data.items import ItemCatalog
from repro.data.splits import HeldOutAction
from repro.exceptions import ConfigurationError, DataError
from repro.recsys.ranking import ItemPredictionResult

__all__ = ["MarkovItemModel"]


class MarkovItemModel:
    """Smoothed first-order Markov chain over item transitions."""

    def __init__(self, catalog: ItemCatalog, *, smoothing: float = 0.01):
        if smoothing <= 0:
            raise ConfigurationError("smoothing must be positive (rows must normalize)")
        self.smoothing = smoothing
        self._index: dict[Hashable, int] = {
            item_id: pos for pos, item_id in enumerate(catalog.ids)
        }
        self._num_items = len(self._index)
        if self._num_items == 0:
            raise ConfigurationError("catalog is empty")
        self._transitions: dict[int, np.ndarray] = {}
        self._popularity = np.zeros(self._num_items, dtype=np.float64)
        self._fitted = False

    @property
    def num_items(self) -> int:
        return self._num_items

    def fit(self, log: ActionLog) -> "MarkovItemModel":
        """Count item bigrams over every user's chronological sequence."""
        counts: dict[int, dict[int, float]] = {}
        for seq in log:
            rows = [self._row(item) for item in seq.items]
            for row in rows:
                self._popularity[row] += 1.0
            for prev, nxt in zip(rows, rows[1:]):
                counts.setdefault(prev, {})[nxt] = counts.get(prev, {}).get(nxt, 0.0) + 1.0
        for prev, row_counts in counts.items():
            dense = np.zeros(self._num_items, dtype=np.float64)
            for nxt, count in row_counts.items():
                dense[nxt] = count
            self._transitions[prev] = dense
        if self._popularity.sum() == 0:
            raise DataError("cannot fit a Markov model on an empty log")
        self._fitted = True
        return self

    def _row(self, item_id: Hashable) -> int:
        try:
            return self._index[item_id]
        except KeyError:
            raise DataError(f"item {item_id!r} not in the catalog") from None

    def next_item_probabilities(self, previous: Hashable | None) -> np.ndarray:
        """Distribution over the next item given the previous one.

        ``previous=None`` (sequence start) falls back to smoothed global
        popularity.
        """
        if not self._fitted:
            raise DataError("fit() the model first")
        if previous is None:
            weights = self._popularity + self.smoothing
        else:
            row = self._row(previous)
            counts = self._transitions.get(row)
            if counts is None:  # item never had a successor in training
                weights = self._popularity + self.smoothing
            else:
                weights = counts + self.smoothing
        return weights / weights.sum()

    def predict_items(
        self, train_log: ActionLog, held: Sequence[HeldOutAction]
    ) -> ItemPredictionResult:
        """Rank held-out items from each action's predecessor in training.

        The predecessor is the chronologically latest *training* action of
        the same user before the held-out time — the information a
        deployed next-item model would actually have.
        """
        if not held:
            raise DataError("no held-out actions to evaluate")
        ranks = np.empty(len(held), dtype=np.float64)
        for pos, held_action in enumerate(held):
            action = held_action.action
            previous = None
            best_time = -np.inf
            for train_action in train_log.sequence(action.user):
                if best_time < train_action.time <= action.time:
                    previous = train_action.item
                    best_time = train_action.time
            probs = self.next_item_probabilities(previous)
            p = probs[self._row(action.item)]
            greater = int(np.count_nonzero(probs > p))
            equal = int(np.count_nonzero(probs == p))
            ranks[pos] = greater + (equal + 1) / 2.0
        return ItemPredictionResult(ranks=ranks, num_items=self._num_items)
