"""Field-aware Factorization Machine (Juan et al., RecSys '16).

Used for the rating-prediction task (paper Table XII).  The model is

    ŷ(x) = w₀ + Σ_j w_j x_j + Σ_{j1<j2} ⟨v_{j1,f(j2)}, v_{j2,f(j1)}⟩ x_{j1} x_{j2}

where every feature ``j`` keeps one latent vector *per field* it can
interact with.  With only user and item fields this collapses to matrix
factorization with biases — exactly the paper's U+I baseline (Koren et
al.) — so a single implementation covers every Table XII column.

Training is mini-batch stochastic gradient descent on squared loss with
per-parameter AdaGrad step sizes and L2 regularization, following the
libffm recipe.  Because every sample produced by one
:class:`~repro.recsys.encoding.RatingEncoder` has the same active-field
pattern (user, item[, skill][, difficulty]), whole batches vectorize into
a handful of NumPy gathers and ``np.add.at`` scatters — no per-sample
Python loop.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.recsys.encoding import FFMSample

__all__ = ["FFMConfig", "FFMModel"]


@dataclass(frozen=True)
class FFMConfig:
    """FFM hyper-parameters (defaults follow Juan et al.'s guidance)."""

    num_factors: int = 8
    epochs: int = 15
    learning_rate: float = 0.1
    regularization: float = 2e-5
    init_scale: float = 0.05
    batch_size: int = 256
    clip_range: tuple[float, float] | None = (0.0, 5.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_factors < 1:
            raise ConfigurationError("num_factors must be >= 1")
        if self.epochs < 1:
            raise ConfigurationError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if self.regularization < 0:
            raise ConfigurationError("regularization must be >= 0")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")


def _stack(samples: Sequence[FFMSample]) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stack samples into (fields, indices, values, targets) arrays.

    All samples must share the same active-field pattern, which every
    encoder in this package guarantees.
    """
    if not samples:
        raise ConfigurationError("need at least one sample")
    fields = samples[0].fields
    for sample in samples:
        if len(sample.fields) != len(fields) or not np.array_equal(sample.fields, fields):
            raise ConfigurationError(
                "all samples must share one active-field pattern; "
                "encode train and test with the same RatingEncoder"
            )
    indices = np.stack([s.indices for s in samples])
    values = np.stack([s.values for s in samples])
    targets = np.asarray([s.target for s in samples], dtype=np.float64)
    return fields, indices, values, targets


class FFMModel:
    """An FFM fitted on encoded samples."""

    def __init__(self, num_features: int, num_fields: int, config: FFMConfig | None = None):
        if num_features < 1 or num_fields < 1:
            raise ConfigurationError("num_features and num_fields must be >= 1")
        self.config = config or FFMConfig()
        self.num_features = num_features
        self.num_fields = num_fields
        rng = np.random.default_rng(self.config.seed)
        k = self.config.num_factors
        self._bias = 0.0
        self._linear = np.zeros(num_features, dtype=np.float64)
        # latent[j, f] is feature j's vector for interactions with field f.
        self._latent = rng.normal(
            0.0, self.config.init_scale, size=(num_features, num_fields, k)
        )
        self._grad_linear = np.ones(num_features, dtype=np.float64)
        self._grad_latent = np.ones((num_features, num_fields, k), dtype=np.float64)
        self._fitted = False

    # ------------------------------------------------------------- scoring

    def _raw_scores(
        self, fields: np.ndarray, indices: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Model scores for a stacked batch, shape ``(B,)``."""
        scores = self._bias + np.einsum("bn,bn->b", self._linear[indices], values)
        n = indices.shape[1]
        for a in range(n):
            for b in range(a + 1, n):
                va = self._latent[indices[:, a], fields[b]]  # (B, k)
                vb = self._latent[indices[:, b], fields[a]]
                scores += np.einsum("bk,bk->b", va, vb) * values[:, a] * values[:, b]
        return scores

    def predict(self, samples: Sequence[FFMSample]) -> np.ndarray:
        """Predicted ratings, clipped to the configured range."""
        if not self._fitted:
            raise NotFittedError("call fit() before predicting")
        fields, indices, values, _ = _stack(samples)
        scores = self._raw_scores(fields, indices, values)
        if self.config.clip_range is not None:
            low, high = self.config.clip_range
            scores = np.clip(scores, low, high)
        return scores

    def predict_one(self, sample: FFMSample) -> float:
        """Predicted rating for a single sample."""
        return float(self.predict([sample])[0])

    # ------------------------------------------------------------ training

    def fit(self, samples: Sequence[FFMSample]) -> "FFMModel":
        """Mini-batch AdaGrad SGD on squared loss, reshuffled per epoch."""
        cfg = self.config
        fields, indices, values, targets = _stack(samples)
        rng = np.random.default_rng(cfg.seed + 1)
        # Bias starts at the global mean — removes most of the loss upfront.
        self._bias = float(targets.mean())
        order = np.arange(len(samples))
        for _ in range(cfg.epochs):
            rng.shuffle(order)
            for start in range(0, len(order), cfg.batch_size):
                batch = order[start : start + cfg.batch_size]
                self._batch_step(fields, indices[batch], values[batch], targets[batch])
        self._fitted = True
        return self

    def _batch_step(
        self,
        fields: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        cfg = self.config
        errors = self._raw_scores(fields, indices, values) - targets  # (B,)
        # Bias (unregularized, plain SGD with a damped rate).
        self._bias -= cfg.learning_rate * 0.1 * float(errors.mean())

        # Linear terms: accumulate AdaGrad state first, then apply the
        # update with the freshened state (duplicates within a batch fold
        # together via np.add.at, standard mini-batch semantics).
        g_lin = errors[:, None] * values + cfg.regularization * self._linear[indices]
        np.add.at(self._grad_linear, indices, g_lin**2)
        np.add.at(
            self._linear,
            indices,
            -cfg.learning_rate * g_lin / np.sqrt(self._grad_linear[indices]),
        )

        # Pairwise latent terms.
        n = indices.shape[1]
        for a in range(n):
            for b in range(a + 1, n):
                ia, ib = indices[:, a], indices[:, b]
                fa, fb = fields[a], fields[b]
                va = self._latent[ia, fb]  # (B, k)
                vb = self._latent[ib, fa]
                coeff = (errors * values[:, a] * values[:, b])[:, None]
                ga = coeff * vb + cfg.regularization * va
                gb = coeff * va + cfg.regularization * vb
                np.add.at(self._grad_latent, (ia, fb), ga**2)
                np.add.at(self._grad_latent, (ib, fa), gb**2)
                np.add.at(
                    self._latent,
                    (ia, fb),
                    -cfg.learning_rate * ga / np.sqrt(self._grad_latent[ia, fb]),
                )
                np.add.at(
                    self._latent,
                    (ib, fa),
                    -cfg.learning_rate * gb / np.sqrt(self._grad_latent[ib, fa]),
                )

    # ---------------------------------------------------------- evaluation

    def rmse(self, samples: Sequence[FFMSample]) -> float:
        """Root mean squared error on a sample set."""
        predictions = self.predict(samples)
        targets = np.asarray([s.target for s in samples])
        return float(np.sqrt(np.mean((predictions - targets) ** 2)))
