"""Action-sequence dataset structures.

The paper's input is a set of *action sequences*: each user ``u`` has a
chronologically ordered list of actions, and each action is a triple
``(t, u, i)`` of time, user, and selected item (Section III).  This module
provides the three corresponding containers:

- :class:`Action` — one ``(t, u, i)`` triple, optionally carrying a rating
  (used only by the rating-prediction task, never by the skill model).
- :class:`ActionSequence` — one user's actions, sorted by time.
- :class:`ActionLog` — the full dataset ``A = ∪_u A_u``.

These types are deliberately independent of the model's feature schema:
they store opaque, hashable user and item identifiers.  Encoding items into
model-ready arrays happens in :mod:`repro.core.features`.
"""

from __future__ import annotations

import itertools
from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from repro.exceptions import DataError

__all__ = ["Action", "ActionSequence", "ActionLog"]

UserId = Hashable
ItemId = Hashable


@dataclass(frozen=True, slots=True)
class Action:
    """One user action: user ``user`` selected item ``item`` at time ``time``.

    ``rating`` is an optional user-provided score attached to the action
    (e.g. a beer review score).  The skill model ignores it; the
    rating-prediction task (paper Table XII) consumes it.
    """

    time: float
    user: UserId
    item: ItemId
    rating: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.time, (int, float)):
            raise DataError(f"action time must be numeric, got {type(self.time).__name__}")


@dataclass(frozen=True)
class ActionSequence:
    """One user's chronologically sorted actions.

    Construction validates that every action belongs to ``user`` and that
    times are non-decreasing; pass ``presorted=False`` (the default) to have
    the constructor sort for you.
    """

    user: UserId
    actions: tuple[Action, ...]

    def __init__(self, user: UserId, actions: Iterable[Action], *, presorted: bool = False):
        acts = tuple(actions) if presorted else tuple(sorted(actions, key=lambda a: a.time))
        for action in acts:
            if action.user != user:
                raise DataError(
                    f"action for user {action.user!r} placed in sequence of user {user!r}"
                )
        if presorted:
            for prev, cur in itertools.pairwise(acts):
                if cur.time < prev.time:
                    raise DataError(f"sequence of user {user!r} is not sorted by time")
        object.__setattr__(self, "user", user)
        object.__setattr__(self, "actions", acts)

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)

    def __getitem__(self, index: int) -> Action:
        return self.actions[index]

    @property
    def items(self) -> tuple[ItemId, ...]:
        """Item ids in chronological order (with repetitions)."""
        return tuple(a.item for a in self.actions)

    @property
    def unique_items(self) -> frozenset[ItemId]:
        """Distinct items this user has ever selected."""
        return frozenset(a.item for a in self.actions)

    @property
    def times(self) -> tuple[float, ...]:
        # Sequences are immutable, and trainers read every sequence's times
        # once per fit — cache the tuple outside the dataclass fields so
        # equality and serialization are unaffected.
        cached = self.__dict__.get("_times")
        if cached is None:
            cached = tuple(a.time for a in self.actions)
            object.__setattr__(self, "_times", cached)
        return cached

    def without_index(self, index: int) -> "ActionSequence":
        """A copy of the sequence with the action at ``index`` removed.

        Used by the item-prediction harness to hold one action out.
        """
        if not -len(self.actions) <= index < len(self.actions):
            raise DataError(f"hold-out index {index} out of range for length {len(self.actions)}")
        index %= len(self.actions)
        remaining = self.actions[:index] + self.actions[index + 1 :]
        return ActionSequence(self.user, remaining, presorted=True)


@dataclass(frozen=True)
class ActionLog:
    """The full dataset: one :class:`ActionSequence` per user.

    Iterating an :class:`ActionLog` yields the sequences; ``len`` is the
    total number of *actions* (``|A|`` in the paper), matching the row
    counts reported in Table I.
    """

    sequences: tuple[ActionSequence, ...]
    _by_user: Mapping[UserId, ActionSequence] = field(repr=False, compare=False)

    def __init__(self, sequences: Iterable[ActionSequence]):
        seqs = tuple(sequences)
        by_user: dict[UserId, ActionSequence] = {}
        for seq in seqs:
            if seq.user in by_user:
                raise DataError(f"duplicate sequence for user {seq.user!r}")
            by_user[seq.user] = seq
        object.__setattr__(self, "sequences", seqs)
        object.__setattr__(self, "_by_user", by_user)

    @classmethod
    def from_actions(cls, actions: Iterable[Action]) -> "ActionLog":
        """Group a flat iterable of actions into per-user sorted sequences."""
        by_user: dict[UserId, list[Action]] = {}
        for action in actions:
            by_user.setdefault(action.user, []).append(action)
        return cls(ActionSequence(user, acts) for user, acts in by_user.items())

    def __len__(self) -> int:
        return sum(len(seq) for seq in self.sequences)

    def __iter__(self) -> Iterator[ActionSequence]:
        return iter(self.sequences)

    def __contains__(self, user: UserId) -> bool:
        return user in self._by_user

    @property
    def num_users(self) -> int:
        return len(self.sequences)

    @property
    def num_actions(self) -> int:
        return len(self)

    @property
    def users(self) -> tuple[UserId, ...]:
        return tuple(seq.user for seq in self.sequences)

    @property
    def selected_items(self) -> frozenset[ItemId]:
        """All items that occur in at least one action."""
        return frozenset(
            item for seq in self.sequences for item in seq.unique_items
        )

    def sequence(self, user: UserId) -> ActionSequence:
        """The sequence of ``user``; raises :class:`DataError` if absent."""
        try:
            return self._by_user[user]
        except KeyError:
            raise DataError(f"no sequence for user {user!r}") from None

    def actions(self) -> Iterator[Action]:
        """All actions, grouped by user, chronological within each user."""
        for seq in self.sequences:
            yield from seq

    def item_counts(self) -> dict[ItemId, int]:
        """Number of actions selecting each item."""
        counts: dict[ItemId, int] = {}
        for seq in self.sequences:
            for item in seq.items:
                counts[item] = counts.get(item, 0) + 1
        return counts

    def item_user_counts(self) -> dict[ItemId, int]:
        """Number of *distinct users* that selected each item.

        This is the quantity the paper's filtering thresholds on ("items
        selected by less than 50 unique users", Section VI-B).
        """
        counts: dict[ItemId, int] = {}
        for seq in self.sequences:
            for item in seq.unique_items:
                counts[item] = counts.get(item, 0) + 1
        return counts

    def restrict_users(self, keep: Iterable[UserId]) -> "ActionLog":
        """A new log containing only the sequences of ``keep`` users."""
        keep_set = set(keep)
        return ActionLog(seq for seq in self.sequences if seq.user in keep_set)

    def restrict_items(self, keep: Iterable[ItemId]) -> "ActionLog":
        """A new log with actions on items outside ``keep`` removed.

        Users whose sequences become empty are dropped entirely.
        """
        keep_set = set(keep)
        pruned = []
        for seq in self.sequences:
            acts = tuple(a for a in seq if a.item in keep_set)
            if acts:
                pruned.append(ActionSequence(seq.user, acts, presorted=True))
        return ActionLog(pruned)

    def earliest_time(self) -> float:
        """``min_{(t,u,i) ∈ A} t`` — used by the lastness preprocessing."""
        times = [seq.actions[0].time for seq in self.sequences if len(seq)]
        if not times:
            raise DataError("cannot take earliest time of an empty log")
        return min(times)
