"""Dataset layer: action sequences, item catalogs, filtering, splits, IO."""

from repro.data.actions import Action, ActionLog, ActionSequence
from repro.data.items import Item, ItemCatalog
from repro.data.filtering import FilterStats, filter_log
from repro.data.splits import (
    HeldOutAction,
    holdout_fraction,
    holdout_last_position,
    holdout_random_position,
)
from repro.data.io import iter_actions, load_catalog, load_log, save_catalog, save_log
from repro.data.stats import LogStatistics, describe_log, popularity_gini
from repro.data.store import (
    ActionStore,
    StoreShard,
    StoreWriter,
    convert_log_file,
    is_store,
)
from repro.data.validation import ValidationIssue, ValidationReport, validate_inputs

__all__ = [
    "Action",
    "ActionLog",
    "ActionSequence",
    "Item",
    "ItemCatalog",
    "FilterStats",
    "filter_log",
    "HeldOutAction",
    "holdout_fraction",
    "holdout_last_position",
    "holdout_random_position",
    "iter_actions",
    "load_catalog",
    "load_log",
    "save_catalog",
    "save_log",
    "ActionStore",
    "StoreShard",
    "StoreWriter",
    "convert_log_file",
    "is_store",
    "LogStatistics",
    "describe_log",
    "popularity_gini",
    "ValidationIssue",
    "ValidationReport",
    "validate_inputs",
]
