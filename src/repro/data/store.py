"""Out-of-core columnar action store.

An :class:`~repro.data.actions.ActionLog` materializes every action as a
Python object — fine for the paper's filtered corpora, a wall at the
ROADMAP's millions-of-users scale.  The store keeps the same data as plain
``numpy`` columns on disk, bucketed into per-shard files that training
reads one shard at a time, so corpus size is bounded by disk, not RAM:

``store/``
    ``manifest.json``   — shard index + per-file byte sizes and SHA-256s
    ``items.json``      — item ids in code order (the store's vocabulary)
    ``shard-00000/``
        ``users.json``  — user ids of this shard, in order
        ``offsets.npy`` — int64 ``(U+1,)`` action prefix sums per user
        ``time.npy``    — float64 action times, user-contiguous
        ``item.npy``    — int64 item *codes* (indices into ``items.json``)
        ``rating.npy``  — float64 ratings, ``NaN`` = absent (file omitted
        when no action in the shard carries a rating)

Item ids are interned once into a store-level vocabulary so the hot
columns are pure integers; training maps codes to catalog rows with one
vectorized gather.  Users are bucketed into shards in first-appearance
order, so a store converted from a JSONL log preserves the log's user
order exactly — the property that makes sharded fits bit-identical to
in-RAM fits (see :mod:`repro.core.shard`).

Crash safety follows :mod:`repro.core.serialize`'s staged commit: shard
files are written and fsynced first, then ``items.json`` and
``manifest.json`` are staged to ``.tmp`` siblings and moved into place
together.  A directory without a committed manifest is not a store; a
torn shard file is caught by the manifest's size/checksum report
(:meth:`ActionStore.verify`).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.actions import Action, ActionLog, ActionSequence
from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "ActionStore",
    "StoreShard",
    "StoreWriter",
    "convert_log_file",
    "is_store",
]

#: Manifest ``format`` tag; bump on incompatible layout changes.
STORE_FORMAT = "repro-store/1"
MANIFEST_NAME = "manifest.json"
ITEMS_NAME = "items.json"

_JSON_ID_TYPES = (str, int, float, bool)

#: Shard column files in manifest order; ``rating.npy`` is optional.
_COLUMN_FILES = ("users.json", "offsets.npy", "time.npy", "item.npy", "rating.npy")


def is_store(path: str | Path) -> bool:
    """True when ``path`` is a directory with a committed store manifest."""
    return (Path(path) / MANIFEST_NAME).is_file()


# --------------------------------------------------------------------------
# Staged atomic commit — the same pattern as repro.core.serialize (the data
# layer sits below core, so the helpers live here rather than import up).
# --------------------------------------------------------------------------


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _write_bytes(path: Path, data: bytes) -> None:
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


def _replace(src: Path, dst: Path) -> None:
    os.replace(src, dst)


def _atomic_commit(writes: list[tuple[Path, bytes]]) -> None:
    """Stage every payload to a ``.tmp`` sibling, then move all into place."""
    staged: list[tuple[Path, Path]] = []
    try:
        for final, data in writes:
            tmp = final.with_name(final.name + ".tmp")
            _write_bytes(tmp, data)
            staged.append((tmp, final))
        for tmp, final in staged:
            _replace(tmp, final)
    except BaseException:
        for tmp, _final in staged:
            tmp.unlink(missing_ok=True)
        raise


def _write_npy(path: Path, array: np.ndarray) -> None:
    """Write one column as a plain ``.npy`` file and fsync it.

    Raw ``.npy`` (not NPZ) because NPZ is a zip container and cannot be
    memory-mapped; ``np.load(..., mmap_mode="r")`` on these files is a
    zero-copy window into the shard.
    """
    with open(path, "wb") as handle:
        np.lib.format.write_array(
            handle, np.ascontiguousarray(array), allow_pickle=False
        )
        handle.flush()
        os.fsync(handle.fileno())


def _check_id(value, what: str):
    if not isinstance(value, _JSON_ID_TYPES):
        raise DataError(
            f"{what} {value!r} of type {type(value).__name__} is not "
            "JSON-serializable; use str/int/float/bool identifiers for "
            "persisted data"
        )
    return value


# --------------------------------------------------------------------------
# Reading
# --------------------------------------------------------------------------


@dataclass
class StoreShard:
    """One shard's columns, loaded lazily by :meth:`ActionStore.shard`.

    ``times``/``codes``/``ratings`` are memmaps by default (random access
    without residency) or plain arrays with ``eager=True`` (the training
    path: one bounded copy per shard keeps peak RSS independent of corpus
    size, since memmapped pages a fit touches would otherwise stay
    resident and count against the process).
    """

    index: int
    name: str
    users: list
    offsets: np.ndarray
    times: np.ndarray
    codes: np.ndarray
    ratings: np.ndarray | None

    @property
    def num_users(self) -> int:
        return len(self.users)

    @property
    def num_actions(self) -> int:
        return int(self.offsets[-1])

    @property
    def lengths(self) -> np.ndarray:
        """Actions per user, in shard user order."""
        return np.diff(self.offsets)

    def user_rows(self) -> list[np.ndarray]:
        """Per-user item-code arrays, in shard user order."""
        return [
            self.codes[self.offsets[k] : self.offsets[k + 1]]
            for k in range(self.num_users)
        ]


class ActionStore:
    """Reader over a committed store directory (see module docstring)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.is_file():
            raise DataError(
                f"{self.path} is not an action store (no {MANIFEST_NAME}); "
                f"create one with StoreWriter, convert_log_file, or `repro convert`"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise DataError(f"{manifest_path}: unreadable store manifest ({exc})") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != STORE_FORMAT:
            raise DataError(
                f"{manifest_path}: not a {STORE_FORMAT} manifest "
                f"(format={manifest.get('format') if isinstance(manifest, dict) else None!r})"
            )
        self.manifest = manifest
        self._item_ids: list | None = None

    # ------------------------------------------------------------- properties

    @property
    def num_users(self) -> int:
        return int(self.manifest["num_users"])

    @property
    def num_actions(self) -> int:
        return int(self.manifest["num_actions"])

    @property
    def num_items(self) -> int:
        """Distinct items referenced by the store (vocabulary size)."""
        return int(self.manifest["num_items"])

    @property
    def num_shards(self) -> int:
        return len(self.manifest["shards"])

    @property
    def total_bytes(self) -> int:
        """Bytes of all shard column files plus the item vocabulary."""
        total = int(self.manifest["items_file"]["bytes"])
        for shard in self.manifest["shards"]:
            total += sum(int(f["bytes"]) for f in shard["files"].values())
        return total

    @property
    def item_ids(self) -> list:
        """Item ids in code order (code ``c`` names ``item_ids[c]``)."""
        if self._item_ids is None:
            data = (self.path / ITEMS_NAME).read_bytes()
            if _sha256_hex(data) != self.manifest["items_file"]["sha256"]:
                raise DataError(
                    f"{self.path / ITEMS_NAME}: checksum mismatch against the "
                    "manifest — the store vocabulary is torn or corrupted"
                )
            self._item_ids = json.loads(data.decode("utf-8"))
        return self._item_ids

    # --------------------------------------------------------------- reading

    def shard(self, index: int, *, eager: bool = False) -> StoreShard:
        """Load shard ``index``'s columns (memmapped, or copies with
        ``eager=True`` — see :class:`StoreShard`)."""
        if not 0 <= index < self.num_shards:
            raise ConfigurationError(
                f"shard index {index} outside [0, {self.num_shards})"
            )
        entry = self.manifest["shards"][index]
        shard_dir = self.path / entry["name"]
        mmap_mode = None if eager else "r"

        def _load(name: str) -> np.ndarray:
            try:
                return np.load(shard_dir / name, mmap_mode=mmap_mode, allow_pickle=False)
            except (OSError, ValueError) as exc:
                raise DataError(f"{shard_dir / name}: unreadable shard column ({exc})") from exc

        try:
            users = json.loads((shard_dir / "users.json").read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise DataError(f"{shard_dir / 'users.json'}: unreadable user index ({exc})") from exc
        ratings = _load("rating.npy") if "rating.npy" in entry["files"] else None
        return StoreShard(
            index=index,
            name=entry["name"],
            users=users,
            offsets=np.load(shard_dir / "offsets.npy", allow_pickle=False),
            times=_load("time.npy"),
            codes=_load("item.npy"),
            ratings=ratings,
        )

    def shard_codes(self, index: int) -> np.ndarray:
        """Just shard ``index``'s item-code column, read eagerly."""
        entry = self.manifest["shards"][index]
        return np.load(self.path / entry["name"] / "item.npy", allow_pickle=False)

    def iter_shards(self, *, eager: bool = False) -> Iterator[StoreShard]:
        for index in range(self.num_shards):
            yield self.shard(index, eager=eager)

    def users(self) -> Iterator:
        """All user ids in store (= shard, = first-appearance) order."""
        for shard in self.iter_shards():
            yield from shard.users

    def iter_actions(self) -> Iterator[Action]:
        """Stream the store back as :class:`~repro.data.actions.Action`
        objects, one shard resident at a time."""
        item_ids = self.item_ids
        for shard in self.iter_shards(eager=True):
            for k, user in enumerate(shard.users):
                lo, hi = int(shard.offsets[k]), int(shard.offsets[k + 1])
                for j in range(lo, hi):
                    rating = None
                    if shard.ratings is not None and not np.isnan(shard.ratings[j]):
                        rating = float(shard.ratings[j])
                    yield Action(
                        time=float(shard.times[j]),
                        user=user,
                        item=item_ids[int(shard.codes[j])],
                        rating=rating,
                    )

    def to_log(self) -> ActionLog:
        """Materialize the whole store as an in-RAM action log.

        Only sensible at test/debug scale — it rebuilds every Python
        ``Action`` object the store exists to avoid.
        """
        sequences: list[ActionSequence] = []
        item_ids = self.item_ids
        for shard in self.iter_shards(eager=True):
            for k, user in enumerate(shard.users):
                lo, hi = int(shard.offsets[k]), int(shard.offsets[k + 1])
                actions = []
                for j in range(lo, hi):
                    rating = None
                    if shard.ratings is not None and not np.isnan(shard.ratings[j]):
                        rating = float(shard.ratings[j])
                    actions.append(
                        Action(
                            time=float(shard.times[j]),
                            user=user,
                            item=item_ids[int(shard.codes[j])],
                            rating=rating,
                        )
                    )
                sequences.append(ActionSequence(user, actions, presorted=True))
        return ActionLog(sequences)

    # ------------------------------------------------------------ integrity

    def verify(self, *, deep: bool = False) -> dict:
        """Check every manifest-listed file against its recorded size (and,
        with ``deep=True``, its SHA-256).  Returns a report dict."""
        problems: list[str] = []
        checked = 0

        def _check(path: Path, entry: dict) -> None:
            nonlocal checked
            checked += 1
            if not path.is_file():
                problems.append(f"{path.relative_to(self.path)}: missing")
                return
            size = path.stat().st_size
            if size != int(entry["bytes"]):
                problems.append(
                    f"{path.relative_to(self.path)}: {size} bytes on disk, "
                    f"manifest says {entry['bytes']}"
                )
                return
            if deep and _sha256_file(path) != entry["sha256"]:
                problems.append(f"{path.relative_to(self.path)}: checksum mismatch")

        _check(self.path / ITEMS_NAME, self.manifest["items_file"])
        for shard in self.manifest["shards"]:
            for name, entry in shard["files"].items():
                _check(self.path / shard["name"] / name, entry)
        return {
            "ok": not problems,
            "deep": deep,
            "files_checked": checked,
            "problems": problems,
        }

    # --------------------------------------------------------- construction

    @classmethod
    def from_log(
        cls, log: ActionLog, path: str | Path, *, users_per_shard: int = 4096
    ) -> "ActionStore":
        """Write an in-RAM log out as a store (user order preserved)."""
        writer = StoreWriter(path, users_per_shard=users_per_shard)
        for sequence in log:
            times = np.asarray(sequence.times, dtype=np.float64)
            ratings = [action.rating for action in sequence]
            writer.add_user(
                sequence.user,
                times,
                item_ids=list(sequence.items),
                ratings=ratings if any(r is not None for r in ratings) else None,
                presorted=True,
            )
        return writer.finalize()


# --------------------------------------------------------------------------
# Writing
# --------------------------------------------------------------------------


class StoreWriter:
    """Streaming store builder: feed users one at a time, then commit.

    Buffers at most one shard in RAM (``users_per_shard`` users or
    ``max_shard_actions`` actions, whichever seals first — a single user
    always lands whole in one shard, so a pathological user can exceed the
    action threshold).  :meth:`finalize` commits ``items.json`` and the
    checksummed manifest atomically; until then the directory is not a
    store and readers refuse it.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        users_per_shard: int = 4096,
        max_shard_actions: int = 2_000_000,
    ):
        if users_per_shard < 1:
            raise ConfigurationError("users_per_shard must be >= 1")
        if max_shard_actions < 1:
            raise ConfigurationError("max_shard_actions must be >= 1")
        self.path = Path(path)
        if is_store(self.path):
            raise DataError(
                f"{self.path} already holds a committed store; refusing to overwrite"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        self.users_per_shard = users_per_shard
        self.max_shard_actions = max_shard_actions
        self._item_codes: dict = {}
        self._item_ids: list = []
        self._seen_users: set = set()
        self._shards: list[dict] = []
        self._finalized = False
        self._reset_buffers()

    def _reset_buffers(self) -> None:
        self._users: list = []
        self._times: list[np.ndarray] = []
        self._codes: list[np.ndarray] = []
        self._ratings: list[np.ndarray | None] = []
        self._buffered_actions = 0

    # ------------------------------------------------------------ vocabulary

    def register_item(self, item_id) -> int:
        """Intern one item id; returns its stable store code."""
        code = self._item_codes.get(item_id)
        if code is None:
            _check_id(item_id, "item id")
            code = len(self._item_ids)
            self._item_codes[item_id] = code
            self._item_ids.append(item_id)
        return code

    def register_items(self, item_ids: Iterable) -> np.ndarray:
        """Intern many item ids; returns their codes as int64."""
        return np.fromiter(
            (self.register_item(i) for i in item_ids), dtype=np.int64
        )

    # --------------------------------------------------------------- writing

    def add_user(
        self,
        user,
        times: Sequence[float] | np.ndarray,
        item_ids: Sequence | None = None,
        *,
        item_codes: np.ndarray | None = None,
        ratings: Sequence | np.ndarray | None = None,
        presorted: bool = False,
    ) -> None:
        """Append one user's whole sequence.

        Pass ``item_ids`` (interned here) or pre-interned ``item_codes``
        from :meth:`register_items`.  Actions are sorted by time (stably)
        unless ``presorted``.  Each user may be added exactly once — the
        store's user order is its shard order, and split users would break
        the per-user assignment DP.
        """
        if self._finalized:
            raise ConfigurationError("store writer already finalized")
        _check_id(user, "user id")
        if user in self._seen_users:
            raise DataError(
                f"user {user!r} was already written; a store holds each "
                "user's sequence whole, so input must arrive grouped by user"
            )
        if (item_ids is None) == (item_codes is None):
            raise ConfigurationError("pass exactly one of item_ids / item_codes")
        times = np.asarray(times, dtype=np.float64)
        if item_codes is not None:
            codes = np.asarray(item_codes, dtype=np.int64)
            if len(codes) and (codes.min() < 0 or codes.max() >= len(self._item_ids)):
                raise ConfigurationError(
                    "item code outside the registered vocabulary"
                )
        else:
            codes = self.register_items(item_ids)
        if times.shape != codes.shape or times.ndim != 1:
            raise ConfigurationError("times and items must be equal-length 1-D")
        if ratings is not None:
            rating_col = np.asarray(
                [np.nan if r is None else float(r) for r in ratings], dtype=np.float64
            )
            if rating_col.shape != times.shape:
                raise ConfigurationError("ratings must align with times")
        else:
            rating_col = None
        if not presorted and len(times) > 1 and np.any(np.diff(times) < 0):
            order = np.argsort(times, kind="stable")
            times = times[order]
            codes = codes[order]
            if rating_col is not None:
                rating_col = rating_col[order]
        self._seen_users.add(user)
        self._users.append(user)
        self._times.append(times)
        self._codes.append(codes)
        self._ratings.append(rating_col)
        self._buffered_actions += len(times)
        if (
            len(self._users) >= self.users_per_shard
            or self._buffered_actions >= self.max_shard_actions
        ):
            self._seal_shard()

    def _seal_shard(self) -> None:
        if not self._users:
            return
        name = f"shard-{len(self._shards):05d}"
        shard_dir = self.path / name
        shard_dir.mkdir(exist_ok=True)
        lengths = np.fromiter(
            (len(t) for t in self._times), dtype=np.int64, count=len(self._times)
        )
        offsets = np.zeros(len(lengths) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        times = (
            np.concatenate(self._times) if self._times else np.empty(0, np.float64)
        )
        codes = np.concatenate(self._codes) if self._codes else np.empty(0, np.int64)
        has_ratings = any(
            r is not None and np.any(~np.isnan(r)) for r in self._ratings
        )
        files: dict[str, dict] = {}

        def _record(file_name: str) -> None:
            path = shard_dir / file_name
            files[file_name] = {
                "bytes": path.stat().st_size,
                "sha256": _sha256_file(path),
            }

        users_payload = json.dumps(self._users, ensure_ascii=False).encode("utf-8")
        _write_bytes(shard_dir / "users.json", users_payload)
        _record("users.json")
        _write_npy(shard_dir / "offsets.npy", offsets)
        _record("offsets.npy")
        _write_npy(shard_dir / "time.npy", times)
        _record("time.npy")
        _write_npy(shard_dir / "item.npy", codes)
        _record("item.npy")
        if has_ratings:
            rating_col = np.concatenate(
                [
                    r if r is not None else np.full(n, np.nan)
                    for r, n in zip(self._ratings, lengths)
                ]
            )
            _write_npy(shard_dir / "rating.npy", rating_col)
            _record("rating.npy")
        self._shards.append(
            {
                "name": name,
                "num_users": len(self._users),
                "num_actions": int(offsets[-1]),
                "files": files,
            }
        )
        self._reset_buffers()

    def finalize(self) -> ActionStore:
        """Seal the trailing shard and atomically commit the manifest."""
        if self._finalized:
            raise ConfigurationError("store writer already finalized")
        self._seal_shard()
        self._finalized = True
        items_payload = json.dumps(self._item_ids, ensure_ascii=False).encode("utf-8")
        manifest = {
            "format": STORE_FORMAT,
            "num_users": sum(s["num_users"] for s in self._shards),
            "num_actions": sum(s["num_actions"] for s in self._shards),
            "num_items": len(self._item_ids),
            "users_per_shard": self.users_per_shard,
            "items_file": {
                "bytes": len(items_payload),
                "sha256": _sha256_hex(items_payload),
            },
            "shards": self._shards,
        }
        manifest_payload = json.dumps(
            manifest, ensure_ascii=False, indent=2
        ).encode("utf-8")
        _atomic_commit(
            [
                (self.path / ITEMS_NAME, items_payload),
                (self.path / MANIFEST_NAME, manifest_payload),
            ]
        )
        return ActionStore(self.path)


# --------------------------------------------------------------------------
# JSONL → store conversion
# --------------------------------------------------------------------------

_NO_USER = object()


def convert_log_file(
    log_path: str | Path,
    store_path: str | Path,
    *,
    users_per_shard: int = 4096,
) -> ActionStore:
    """Convert a :func:`~repro.data.io.save_log` JSONL file into a store.

    Streams one user at a time — peak memory is the longest single
    sequence, never the corpus.  The input must be grouped by user (which
    ``save_log`` output always is); within a user, actions in any time
    order are accepted and sorted on write.
    """
    from repro.data.io import iter_actions

    writer = StoreWriter(store_path, users_per_shard=users_per_shard)
    current: object = _NO_USER
    times: list[float] = []
    items: list = []
    ratings: list = []

    def _flush() -> None:
        if current is not _NO_USER:
            writer.add_user(
                current,
                np.asarray(times, dtype=np.float64),
                item_ids=items,
                ratings=ratings if any(r is not None for r in ratings) else None,
            )

    for action in iter_actions(log_path):
        if action.user != current or current is _NO_USER:
            _flush()
            current = action.user
            times, items, ratings = [], [], []
        times.append(action.time)
        items.append(action.item)
        ratings.append(action.rating)
    _flush()
    return writer.finalize()
