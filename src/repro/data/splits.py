"""Train/test splits of action logs.

Three split shapes back the paper's quantitative experiments:

- :func:`holdout_fraction` — hold out a random fraction of *actions*
  (Section VI-B, the 90/10 split used to select the skill count ``S``).
- :func:`holdout_random_position` — one action at a random position per
  user (Table X, "missing data recovery").
- :func:`holdout_last_position` — each user's final action (Table XI,
  "forecast the future").

All splits leave the training side chronologically sorted and never
produce empty training sequences: a user must keep at least one training
action to appear in the test set, since every evaluation protocol infers
the test-time skill level from the nearest *training* action.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.actions import Action, ActionLog, ActionSequence
from repro.exceptions import ConfigurationError

__all__ = ["HeldOutAction", "holdout_fraction", "holdout_random_position", "holdout_last_position"]


@dataclass(frozen=True)
class HeldOutAction:
    """One held-out test action plus where it sat in its user's sequence."""

    action: Action
    position: int
    sequence_length: int


def holdout_fraction(
    log: ActionLog, fraction: float, rng: np.random.Generator
) -> tuple[ActionLog, list[HeldOutAction]]:
    """Hold out ``fraction`` of each user's actions uniformly at random.

    Per-user sampling (rather than global) guarantees every tested user
    retains training actions.  Users with a single action contribute no
    test actions.
    """
    if not 0 < fraction < 1:
        raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
    train_sequences = []
    held: list[HeldOutAction] = []
    for seq in log:
        n = len(seq)
        if n <= 1:
            train_sequences.append(seq)
            continue
        num_test = min(n - 1, max(1, round(n * fraction))) if n * fraction >= 0.5 else 0
        if num_test == 0:
            train_sequences.append(seq)
            continue
        test_positions = set(rng.choice(n, size=num_test, replace=False).tolist())
        train_actions = tuple(
            action for pos, action in enumerate(seq) if pos not in test_positions
        )
        train_sequences.append(ActionSequence(seq.user, train_actions, presorted=True))
        held.extend(
            HeldOutAction(action=seq[pos], position=pos, sequence_length=n)
            for pos in sorted(test_positions)
        )
    return ActionLog(train_sequences), held


def holdout_random_position(
    log: ActionLog, rng: np.random.Generator
) -> tuple[ActionLog, list[HeldOutAction]]:
    """Hold out one action at a uniformly random position per user.

    Users with fewer than two actions are passed through untested.
    """
    return _holdout_one(log, lambda n: int(rng.integers(n)))


def holdout_last_position(log: ActionLog) -> tuple[ActionLog, list[HeldOutAction]]:
    """Hold out each user's chronologically last action."""
    return _holdout_one(log, lambda n: n - 1)


def _holdout_one(log: ActionLog, pick) -> tuple[ActionLog, list[HeldOutAction]]:
    train_sequences = []
    held: list[HeldOutAction] = []
    for seq in log:
        n = len(seq)
        if n < 2:
            train_sequences.append(seq)
            continue
        position = pick(n)
        train_sequences.append(seq.without_index(position))
        held.append(HeldOutAction(action=seq[position], position=position, sequence_length=n))
    return ActionLog(train_sequences), held
