"""Pre-flight validation of training inputs.

Real logs arrive with problems the trainer would otherwise surface one
exception at a time: actions on unknown items, users too short to carry
signal, unrated actions in a rating pipeline, time anomalies.
:func:`validate_inputs` audits a (log, catalog, feature set) triple in one
pass and returns a structured report, so callers can decide what to fix,
what to filter, and what to ignore *before* spending a training run.

The report never mutates anything and validation problems are not
exceptions here — the caller asked "what's wrong with this data", and the
answer to that question is data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.data.actions import ActionLog
from repro.data.items import ItemCatalog
from repro.exceptions import SchemaError

if TYPE_CHECKING:  # layering: the data layer never imports core at runtime
    from repro.core.features import FeatureSet

__all__ = ["ValidationIssue", "ValidationReport", "validate_inputs"]

#: Issue severities, in escalating order.
INFO = "info"
WARNING = "warning"
ERROR = "error"


@dataclass(frozen=True)
class ValidationIssue:
    """One finding: a severity, a machine-usable code, and a description."""

    severity: str
    code: str
    message: str


@dataclass(frozen=True)
class ValidationReport:
    """All findings for one input triple."""

    issues: tuple[ValidationIssue, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True when nothing blocks training (no ERROR-severity issue)."""
        return not any(issue.severity == ERROR for issue in self.issues)

    def by_severity(self, severity: str) -> list[ValidationIssue]:
        """All issues of one severity."""
        return [issue for issue in self.issues if issue.severity == severity]

    def to_text(self) -> str:
        """One line per issue, severity-tagged."""
        if not self.issues:
            return "no issues found"
        return "\n".join(
            f"[{issue.severity.upper():7s}] {issue.code}: {issue.message}"
            for issue in self.issues
        )


def validate_inputs(
    log: ActionLog,
    catalog: ItemCatalog,
    feature_set: "FeatureSet | None" = None,
    *,
    min_actions_hint: int = 2,
    expect_ratings: bool = False,
) -> ValidationReport:
    """Audit a training triple; see module docstring for the philosophy.

    ERRORs block training outright (empty log, unknown items, unencodable
    features); WARNINGs flag quality risks (very short sequences, items
    never selected, missing ratings when ``expect_ratings``); INFO notes
    scale facts worth knowing.
    """
    issues: list[ValidationIssue] = []

    if log.num_users == 0:
        issues.append(ValidationIssue(ERROR, "empty-log", "the action log has no users"))
        return ValidationReport(tuple(issues))
    if len(catalog) == 0:
        issues.append(ValidationIssue(ERROR, "empty-catalog", "the item catalog is empty"))
        return ValidationReport(tuple(issues))

    unknown = sorted(
        {str(item) for item in log.selected_items if item not in catalog}
    )
    if unknown:
        shown = ", ".join(unknown[:5]) + ("..." if len(unknown) > 5 else "")
        issues.append(
            ValidationIssue(
                ERROR,
                "unknown-items",
                f"{len(unknown)} selected items missing from the catalog ({shown})",
            )
        )

    if feature_set is not None:
        try:
            feature_set.encode(catalog)
        except SchemaError as exc:
            issues.append(ValidationIssue(ERROR, "schema-violation", str(exc)))

    short = [seq.user for seq in log if len(seq) < min_actions_hint]
    if short:
        issues.append(
            ValidationIssue(
                WARNING,
                "short-sequences",
                f"{len(short)}/{log.num_users} users have fewer than "
                f"{min_actions_hint} actions; their skill cannot progress",
            )
        )

    selected = log.selected_items
    never_selected = len(catalog) - sum(1 for item in catalog if item.id in selected)
    if never_selected:
        issues.append(
            ValidationIssue(
                WARNING,
                "never-selected-items",
                f"{never_selected}/{len(catalog)} catalog items never appear in "
                "the log; assignment-based difficulty will not cover them",
            )
        )

    if expect_ratings:
        unrated = sum(1 for action in log.actions() if action.rating is None)
        if unrated == log.num_actions:
            issues.append(
                ValidationIssue(
                    ERROR, "no-ratings", "no action carries a rating; the rating "
                    "pipeline cannot run"
                )
            )
        elif unrated:
            issues.append(
                ValidationIssue(
                    WARNING,
                    "partial-ratings",
                    f"{unrated}/{log.num_actions} actions lack ratings",
                )
            )

    lengths = [len(seq) for seq in log]
    issues.append(
        ValidationIssue(
            INFO,
            "scale",
            f"{log.num_users} users, {len(catalog)} items, {log.num_actions} actions; "
            f"sequence length {min(lengths)}–{max(lengths)}",
        )
    )
    return ValidationReport(tuple(issues))
