"""Item catalog: multi-faceted feature storage for items.

The paper represents every item as a tuple of ``F`` features
``i = (i_1, ..., i_F)`` (Section III).  :class:`ItemCatalog` stores those
tuples keyed by item id, along with optional per-item metadata that the
model never sees (display names, ground-truth difficulty in synthetic data,
release years for the film lastness analysis).

The catalog is schema-light on purpose: it records feature *names* and raw
values only.  What distribution each feature follows — and therefore how it
is validated and encoded — is declared separately in
:class:`repro.core.features.FeatureSet`, keeping the data layer independent
of the modeling layer.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import DataError

__all__ = ["Item", "ItemCatalog"]

ItemId = Hashable


@dataclass(frozen=True)
class Item:
    """One item: an id, its feature values by name, and free-form metadata."""

    id: ItemId
    features: Mapping[str, Any]
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "features", dict(self.features))
        object.__setattr__(self, "metadata", dict(self.metadata))

    def feature(self, name: str) -> Any:
        try:
            return self.features[name]
        except KeyError:
            raise DataError(f"item {self.id!r} has no feature {name!r}") from None


class ItemCatalog:
    """All items of a domain, with uniform feature names.

    Every item in a catalog must carry exactly the same set of feature
    names; this mirrors the paper's fixed-width feature tuple and lets the
    encoder build dense arrays without missing-value handling.
    """

    def __init__(self, items: Iterable[Item]):
        self._items: dict[ItemId, Item] = {}
        self._feature_names: tuple[str, ...] | None = None
        for item in items:
            if item.id in self._items:
                raise DataError(f"duplicate item id {item.id!r}")
            names = tuple(sorted(item.features))
            if self._feature_names is None:
                self._feature_names = names
            elif names != self._feature_names:
                raise DataError(
                    f"item {item.id!r} has features {names}, "
                    f"expected {self._feature_names}"
                )
            self._items[item.id] = item
        if self._feature_names is None:
            self._feature_names = ()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items.values())

    def __contains__(self, item_id: ItemId) -> bool:
        return item_id in self._items

    def __getitem__(self, item_id: ItemId) -> Item:
        try:
            return self._items[item_id]
        except KeyError:
            raise DataError(f"unknown item id {item_id!r}") from None

    @property
    def feature_names(self) -> tuple[str, ...]:
        """Feature names shared by every item, sorted alphabetically."""
        assert self._feature_names is not None
        return self._feature_names

    @property
    def ids(self) -> tuple[ItemId, ...]:
        return tuple(self._items)

    def get(self, item_id: ItemId, default: Item | None = None) -> Item | None:
        return self._items.get(item_id, default)

    def feature_values(self, name: str) -> list[Any]:
        """The value of feature ``name`` for every item, in catalog order."""
        if name not in self.feature_names:
            raise DataError(f"catalog has no feature {name!r}")
        return [item.features[name] for item in self]

    def restrict(self, keep: Iterable[ItemId]) -> "ItemCatalog":
        """A new catalog containing only the items in ``keep``."""
        keep_set = set(keep)
        return ItemCatalog(item for item in self if item.id in keep_set)

    def subset_where(self, predicate) -> "ItemCatalog":
        """A new catalog of the items for which ``predicate(item)`` is true."""
        return ItemCatalog(item for item in self if predicate(item))
