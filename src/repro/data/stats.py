"""Descriptive statistics of action logs.

Backs Table I style reporting and the sparsity discussion (Sections VI-A,
VI-D): sequence-length distributions, item-popularity concentration, and
rare-item counts are the quantities the paper reasons with when explaining
*where* the multi-faceted model pays off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.actions import ActionLog
from repro.exceptions import DataError

__all__ = ["LogStatistics", "describe_log", "popularity_gini"]


@dataclass(frozen=True)
class LogStatistics:
    """Summary of one action log."""

    num_users: int
    num_items: int
    num_actions: int
    actions_per_user_mean: float
    actions_per_user_median: float
    actions_per_user_max: int
    actions_per_item_mean: float
    rare_items: int  # selected <= 2 times, the paper's rare-item cutoff
    popularity_gini: float

    def as_row(self) -> tuple:
        """The headline columns as a table row."""
        return (
            self.num_users,
            self.num_items,
            self.num_actions,
            self.actions_per_user_mean,
            self.actions_per_item_mean,
            self.rare_items,
            self.popularity_gini,
        )


def popularity_gini(counts: np.ndarray) -> float:
    """Gini coefficient of item-selection counts (0 = uniform, →1 = head-heavy).

    Real catalogs are strongly head-skewed; the simulators plant that skew
    (see the popularity knobs), and this measures it.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0:
        raise DataError("cannot compute Gini of an empty count vector")
    if np.any(counts < 0):
        raise DataError("counts must be non-negative")
    total = counts.sum()
    if total == 0:
        return 0.0
    sorted_counts = np.sort(counts)
    n = len(sorted_counts)
    cumulative = np.cumsum(sorted_counts)
    # Standard formula: 1 + 1/n − 2·Σ cum_i / (n·total)
    return float(1.0 + 1.0 / n - 2.0 * cumulative.sum() / (n * total))


def describe_log(log: ActionLog) -> LogStatistics:
    """All summary statistics of a log in one pass."""
    if log.num_users == 0:
        raise DataError("cannot describe an empty log")
    lengths = np.asarray([len(seq) for seq in log], dtype=np.float64)
    counts = np.asarray(list(log.item_counts().values()), dtype=np.float64)
    return LogStatistics(
        num_users=log.num_users,
        num_items=len(counts),
        num_actions=log.num_actions,
        actions_per_user_mean=float(lengths.mean()),
        actions_per_user_median=float(np.median(lengths)),
        actions_per_user_max=int(lengths.max()),
        actions_per_item_mean=float(counts.mean()),
        rare_items=int(np.count_nonzero(counts <= 2)),
        popularity_gini=popularity_gini(counts),
    )
