"""Dataset filtering (paper Section VI-B).

For the dense-domain datasets (Beer, Film) the paper removes, with
thresholds taken from Yang et al.:

- users whose sequences contain fewer than 50 *unique items*, and
- items selected by fewer than 50 *unique users*.

Removing items can push users back under their threshold and vice versa,
so :func:`filter_log` iterates the two rules to a fixpoint by default.
The sparse domains (Language, Cooking, Synthetic) skip this filter and
instead restrict only the *initialization* to long sequences, which is the
trainer's ``init_min_actions`` knob — no separate code needed here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.actions import ActionLog
from repro.exceptions import ConfigurationError

__all__ = ["FilterStats", "filter_log"]


@dataclass(frozen=True)
class FilterStats:
    """What filtering kept and dropped, for Table I style reporting."""

    users_before: int
    users_after: int
    items_before: int
    items_after: int
    actions_before: int
    actions_after: int
    rounds: int


def filter_log(
    log: ActionLog,
    *,
    min_unique_items_per_user: int = 50,
    min_unique_users_per_item: int = 50,
    iterate: bool = True,
) -> tuple[ActionLog, FilterStats]:
    """Apply the user/item thresholds, optionally to a fixpoint.

    ``iterate=False`` performs a single pass of each rule (user rule first,
    matching the paper's description order); the default keeps alternating
    until neither rule removes anything.
    """
    if min_unique_items_per_user < 1 or min_unique_users_per_item < 1:
        raise ConfigurationError("filter thresholds must be >= 1")

    users_before = log.num_users
    items_before = len(log.selected_items)
    actions_before = log.num_actions

    rounds = 0
    current = log
    while True:
        rounds += 1
        keep_users = [
            seq.user
            for seq in current
            if len(seq.unique_items) >= min_unique_items_per_user
        ]
        after_users = current.restrict_users(keep_users)
        item_counts = after_users.item_user_counts()
        keep_items = [
            item for item, count in item_counts.items() if count >= min_unique_users_per_item
        ]
        after_items = after_users.restrict_items(keep_items)
        changed = (
            after_items.num_users != current.num_users
            or len(after_items.selected_items) != len(current.selected_items)
        )
        current = after_items
        if not iterate or not changed:
            break

    stats = FilterStats(
        users_before=users_before,
        users_after=current.num_users,
        items_before=items_before,
        items_after=len(current.selected_items),
        actions_before=actions_before,
        actions_after=current.num_actions,
        rounds=rounds,
    )
    return current, stats
