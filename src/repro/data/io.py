"""Serialization of action logs and item catalogs.

JSON Lines is the interchange format: one JSON object per line, so logs
stream without loading everything twice and diffs stay line-oriented.

- Action records: ``{"time": ..., "user": ..., "item": ..., "rating": ...}``
  (``rating`` omitted when absent).
- Item records: ``{"id": ..., "features": {...}, "metadata": {...}}``.

Identifiers survive a round-trip as written for JSON-representable types
(strings, ints, floats, bools); exotic hashables are rejected at save time
rather than silently stringified.
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path

from repro.data.actions import Action, ActionLog
from repro.data.items import Item, ItemCatalog
from repro.exceptions import DataError

__all__ = ["save_log", "load_log", "iter_actions", "save_catalog", "load_catalog"]

_JSON_ID_TYPES = (str, int, float, bool)

#: ``save_log`` flushes its line buffer at this size; one syscall per
#: ~64 KiB instead of one per action.
_WRITE_BUFFER_BYTES = 1 << 16


def _check_id(value, what: str):
    if not isinstance(value, _JSON_ID_TYPES):
        raise DataError(
            f"{what} {value!r} of type {type(value).__name__} is not JSON-serializable; "
            "use str/int/float/bool identifiers for persisted data"
        )
    return value


def save_log(log: ActionLog, path: str | Path) -> None:
    """Write an action log as JSONL, one action per line, grouped by user."""
    path = Path(path)
    buffer: list[str] = []
    buffered = 0
    with path.open("w", encoding="utf-8") as handle:
        for seq in log:
            for action in seq:
                record = {
                    "time": action.time,
                    "user": _check_id(action.user, "user id"),
                    "item": _check_id(action.item, "item id"),
                }
                if action.rating is not None:
                    record["rating"] = action.rating
                line = json.dumps(record, ensure_ascii=False) + "\n"
                buffer.append(line)
                buffered += len(line)
                if buffered >= _WRITE_BUFFER_BYTES:
                    handle.write("".join(buffer))
                    buffer.clear()
                    buffered = 0
        if buffer:
            handle.write("".join(buffer))


def iter_actions(path: str | Path) -> Iterator[Action]:
    """Stream actions from a :func:`save_log` JSONL file, one at a time.

    This is the streaming substrate under :func:`load_log` and the
    JSONL→store converter (:func:`repro.data.store.convert_log_file`):
    consumers that group or bucket on the fly never hold the full corpus.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                yield Action(
                    time=record["time"],
                    user=record["user"],
                    item=record["item"],
                    rating=record.get("rating"),
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise DataError(f"{path}:{line_number}: malformed action record ({exc})") from exc


def load_log(path: str | Path) -> ActionLog:
    """Read an action log written by :func:`save_log`."""
    return ActionLog.from_actions(iter_actions(path))


def save_catalog(catalog: ItemCatalog, path: str | Path) -> None:
    """Write an item catalog as JSONL, one item per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for item in catalog:
            record = {
                "id": _check_id(item.id, "item id"),
                "features": dict(item.features),
                "metadata": dict(item.metadata),
            }
            try:
                handle.write(json.dumps(record, ensure_ascii=False) + "\n")
            except TypeError as exc:
                raise DataError(f"item {item.id!r} has non-JSON feature values: {exc}") from exc


def load_catalog(path: str | Path) -> ItemCatalog:
    """Read an item catalog written by :func:`save_catalog`.

    JSON turns feature tuples into lists; categorical values used as dict
    keys elsewhere must therefore be scalars, which
    :class:`~repro.core.features.FeatureSet` enforces at encode time.
    """
    path = Path(path)
    items = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                items.append(
                    Item(
                        id=record["id"],
                        features=record["features"],
                        metadata=record.get("metadata", {}),
                    )
                )
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise DataError(f"{path}:{line_number}: malformed item record ({exc})") from exc
    return ItemCatalog(items)
