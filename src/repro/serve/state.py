"""Serving model state: atomic hot-reload of saved model artifacts.

A serving process must outlive any one model: training re-saves the
``<prefix>.json`` / ``<prefix>.npz`` pair periodically, and the server
picks the new pair up without dropping requests.  :class:`ModelState`
holds one immutable :class:`ServingModel` bundle at a time and swaps it
behind a single attribute assignment — readers that grabbed the previous
bundle keep a fully consistent (model, difficulty tables, metadata)
snapshot until they finish.

The watch/validate/swap cycle leans entirely on PR 1's staged-commit
writer and checksumming reader (:mod:`repro.core.serialize`):

1. *watch* — each poll stats both files; a changed ``(mtime_ns, size)``
   signature marks a candidate reload.
2. *validate* — :func:`~repro.core.serialize.load_model` verifies the
   JSON-carried SHA-256 of the NPZ payload, so a pair caught mid-commit
   (the window between the two ``os.replace`` calls) or torn by a crash
   is a typed :class:`~repro.exceptions.DataError`, never a bad model.
3. *swap or keep* — on success the new bundle replaces the old in one
   assignment (``serve.reloads``); on failure the old model keeps
   serving (``serve.reload_failures``) and the retry waits for the
   signature to change again — which the completing writer's final
   ``os.replace`` guarantees it will.

Each bundle precomputes what the endpoints gather from: the difficulty
estimates for both priors (so ``/difficulty`` is a pure
:func:`~repro.core.difficulty.difficulty_array` gather) and the artifact
metadata (checksum, format version, telemetry run id) that ``/healthz``
and ``repro inspect`` report, so operators can verify *which* artifact a
running server actually loaded.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.difficulty import PRIOR_EMPIRICAL, PRIOR_UNIFORM, generation_difficulty
from repro.core.model import SkillModel
from repro.core.serialize import artifact_metadata, load_model
from repro.exceptions import DataError, ReproError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = ["ModelState", "ServingModel"]

_log = get_logger("serve.state")

#: stat fields that change whenever `os.replace` lands a new artifact.
_Signature = tuple[tuple[int, int], tuple[int, int]]


class ServingModel:
    """One immutable, fully validated model bundle the server reads from."""

    __slots__ = ("model", "metadata", "difficulties", "version")

    def __init__(
        self,
        model: SkillModel,
        metadata: Mapping[str, Any],
        difficulties: Mapping[str, Mapping[Any, float]],
        version: int,
    ) -> None:
        self.model = model
        self.metadata = dict(metadata)
        self.difficulties = difficulties
        self.version = version


def _build_bundle(prefix: Path, version: int) -> ServingModel:
    model = load_model(prefix)
    metadata = artifact_metadata(prefix)
    difficulties = {
        PRIOR_UNIFORM: generation_difficulty(model, prior=PRIOR_UNIFORM),
        PRIOR_EMPIRICAL: generation_difficulty(model, prior=PRIOR_EMPIRICAL),
    }
    return ServingModel(model, metadata, difficulties, version)


class ModelState:
    """The current model plus the machinery to refresh it from disk.

    ``load()`` must succeed once before serving; ``maybe_reload()`` is
    then called by the server's watch task every ``poll_seconds`` and is
    also safe to call directly (tests, manual reload endpoints).

    Reload failures back off with capped exponential delay: a writer that
    keeps landing broken pairs (each with a *fresh* stat signature, so the
    failed-signature memo alone cannot help) would otherwise cost a full
    load-and-checksum every poll.  While inside the backoff window, polls
    are suppressed and counted in ``serve.reload_retry``; any successful
    swap resets the backoff.  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        path_prefix: str | Path,
        *,
        poll_seconds: float = 1.0,
        retry_base_seconds: float = 1.0,
        retry_cap_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.prefix = Path(path_prefix)
        self.poll_seconds = float(poll_seconds)
        self.retry_base_seconds = float(retry_base_seconds)
        self.retry_cap_seconds = float(retry_cap_seconds)
        self.clock = clock
        self.reloads = 0
        self.reload_failures = 0
        self._current: ServingModel | None = None
        self._signature: _Signature | None = None
        self._failed_signature: _Signature | None = None
        self._failures = 0
        self._retry_at = 0.0

    # ------------------------------------------------------------- access

    @property
    def loaded(self) -> bool:
        return self._current is not None

    @property
    def current(self) -> ServingModel:
        if self._current is None:
            raise DataError(f"no model loaded from {self.prefix}")
        return self._current

    # ------------------------------------------------------------ loading

    def _stat_signature(self) -> _Signature | None:
        try:
            json_stat = os.stat(self.prefix.with_suffix(".json"))
            npz_stat = os.stat(self.prefix.with_suffix(".npz"))
        except OSError:
            return None
        return (
            (json_stat.st_mtime_ns, json_stat.st_size),
            (npz_stat.st_mtime_ns, npz_stat.st_size),
        )

    def load(self) -> ServingModel:
        """Initial load; raises :class:`~repro.exceptions.DataError` when
        the artifact pair is missing or invalid."""
        # Signature first: if the pair is replaced mid-read the signatures
        # diverge and the next poll re-reads — never a silent stale serve.
        self._signature = self._stat_signature()
        bundle = _build_bundle(self.prefix, version=1)
        self._current = bundle
        _log.info(
            "model loaded for serving",
            extra={
                "obs": {
                    "prefix": str(self.prefix),
                    "checksum": bundle.metadata.get("npz_checksum", "")[:12],
                    "users": bundle.metadata.get("num_users"),
                    "items": bundle.metadata.get("num_items"),
                }
            },
        )
        return bundle

    def maybe_reload(self) -> bool:
        """Swap in a newly written artifact pair; returns True on a swap.

        The previous model keeps serving through every failure mode: a
        half-committed pair (checksum mismatch), a vanished file, or a
        malformed artifact only increments ``serve.reload_failures``.
        """
        if self._current is None:
            raise DataError("maybe_reload() before load()")
        signature = self._stat_signature()
        if signature is None or signature == self._signature:
            return False
        if signature == self._failed_signature:
            # This exact broken pair already failed validation; wait for
            # the writer's final os.replace to move the signature again.
            return False
        if self.clock() < self._retry_at:
            # Inside the failure backoff window: don't pay a fresh
            # load-and-checksum for every poll against a flapping writer.
            get_registry().counter("serve.reload_retry").inc()
            return False
        try:
            bundle = _build_bundle(self.prefix, version=self._current.version + 1)
        except (ReproError, OSError) as exc:
            self.reload_failures += 1
            self._failed_signature = signature
            self._failures += 1
            backoff = min(
                self.retry_cap_seconds,
                self.retry_base_seconds * (2 ** (self._failures - 1)),
            )
            self._retry_at = self.clock() + backoff
            get_registry().counter("serve.reload_failures").inc()
            _log.warning(
                "model reload failed; keeping previous model",
                extra={
                    "obs": {
                        "prefix": str(self.prefix),
                        "serving_version": self._current.version,
                        "error": str(exc),
                    }
                },
            )
            return False
        self._signature = signature
        self._failed_signature = None
        self._failures = 0
        self._retry_at = 0.0
        self._current = bundle  # the atomic swap: one attribute assignment
        self.reloads += 1
        get_registry().counter("serve.reloads").inc()
        tracer = get_tracer()
        if tracer.enabled:
            # The swap closes the ingest→fold→publish→swap loop: re-emit
            # the folded events' trace ids (journaled into the artifact's
            # foldin metadata by the worker) so a trace that started at
            # POST /ingest ends at the version now serving.
            extra = bundle.metadata.get("extra")
            foldin = extra.get("foldin") if isinstance(extra, dict) else None
            attrs: dict[str, Any] = {
                "version": bundle.version,
                "prefix": str(self.prefix),
            }
            if isinstance(foldin, dict):
                if isinstance(foldin.get("watermark_seq"), int):
                    attrs["watermark_seq"] = foldin["watermark_seq"]
                if isinstance(foldin.get("traces"), list):
                    attrs["traces"] = foldin["traces"]
            tracer.event("serve.swap", **attrs)
        _log.info(
            "model hot-reloaded",
            extra={
                "obs": {
                    "prefix": str(self.prefix),
                    "version": bundle.version,
                    "checksum": bundle.metadata.get("npz_checksum", "")[:12],
                }
            },
        )
        return True
