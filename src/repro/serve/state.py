"""Serving model state: atomic hot-reload of saved model artifacts.

A serving process must outlive any one model: training re-saves the
``<prefix>.json`` / ``<prefix>.npz`` pair periodically, and the server
picks the new pair up without dropping requests.  :class:`ModelState`
holds one immutable :class:`ServingModel` bundle at a time and swaps it
behind a single attribute assignment — readers that grabbed the previous
bundle keep a fully consistent (model, difficulty tables, metadata)
snapshot until they finish.

The watch/validate/swap cycle leans entirely on PR 1's staged-commit
writer and checksumming reader (:mod:`repro.core.serialize`):

1. *watch* — each poll stats both files; a changed ``(mtime_ns, size)``
   signature marks a candidate reload.
2. *validate* — :func:`~repro.core.serialize.load_model` verifies the
   JSON-carried SHA-256 of the NPZ payload, so a pair caught mid-commit
   (the window between the two ``os.replace`` calls) or torn by a crash
   is a typed :class:`~repro.exceptions.DataError`, never a bad model.
3. *swap or keep* — on success the new bundle replaces the old in one
   assignment (``serve.reloads``); on failure the old model keeps
   serving (``serve.reload_failures``) and the retry waits for the
   signature to change again — which the completing writer's final
   ``os.replace`` guarantees it will.

Each bundle precomputes what the endpoints gather from: the difficulty
estimates for both priors (so ``/difficulty`` is a pure
:func:`~repro.core.difficulty.difficulty_array` gather) and the artifact
metadata (checksum, format version, telemetry run id) that ``/healthz``
and ``repro inspect`` report, so operators can verify *which* artifact a
running server actually loaded.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.core.difficulty import PRIOR_EMPIRICAL, PRIOR_UNIFORM, generation_difficulty
from repro.core.model import SkillModel
from repro.core.serialize import (
    artifact_metadata,
    attach_model_shm,
    load_model,
    load_similarity_payload,
    model_resident_bytes,
    shm_similarity_payload,
)
from repro.exceptions import DataError, ReproError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.recsys.similarity import ItemSimilarityIndex, build_similarity_index
from repro.recsys.upskill import UpskillConfig, UpskillRecommender

__all__ = [
    "DEFAULT_TENANT",
    "ManifestModelState",
    "ModelState",
    "ServingModel",
    "TenantRegistry",
    "TenantSpec",
]

_log = get_logger("serve.state")

#: tenant the unprefixed routes (`/predict` vs `/t/<name>/predict`) map to.
DEFAULT_TENANT = "default"

#: stat fields that change whenever `os.replace` lands a new artifact.
_Signature = tuple[tuple[int, int], tuple[int, int]]


class _SegmentAttachment:
    """Keeps a shared-memory mapping alive as long as its bundle is live.

    Workers never unlink — the publisher owns segment lifecycle — but each
    attached bundle must hold its mapping open until the last reader of
    its zero-copy arrays is gone.  Tying the mapping to the bundle (and
    closing on GC) makes eviction and hot-swap safe without reference
    counting: an old generation's mapping dies exactly when the last
    in-flight request drops the old bundle.
    """

    __slots__ = ("segment",)

    def __init__(self, segment: Any) -> None:
        self.segment = segment

    def close(self) -> None:
        segment, self.segment = self.segment, None
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:
            # Views are still exported (in-flight readers); the interpreter
            # unmaps when the last view dies, so this is not a leak.
            pass

    def __del__(self) -> None:  # pragma: no cover - GC timing varies
        self.close()


class ServingModel:
    """One immutable, fully validated model bundle the server reads from.

    The recommendation surface hangs off the bundle too: ``similarity``
    holds the item-similarity index (zero-copy shm views in prefork
    workers, artifact arrays otherwise, built in-process on first use as
    a last resort) and ``recommender()`` memoizes one
    :class:`~repro.recsys.upskill.UpskillRecommender` per serve
    configuration.  Both caches die with the bundle on hot-swap or LRU
    eviction, so a reloaded tenant can never serve recommendations from
    a previous model's difficulty scale.
    """

    __slots__ = (
        "model",
        "metadata",
        "difficulties",
        "version",
        "resident_bytes",
        "similarity",
        "_attachment",
        "_recommenders",
    )

    def __init__(
        self,
        model: SkillModel,
        metadata: Mapping[str, Any],
        difficulties: Mapping[str, Mapping[Any, float]],
        version: int,
        *,
        resident_bytes: int = 0,
        similarity: ItemSimilarityIndex | None = None,
        attachment: _SegmentAttachment | None = None,
    ) -> None:
        self.model = model
        self.metadata = dict(metadata)
        self.difficulties = difficulties
        self.version = version
        self.resident_bytes = int(resident_bytes)
        self.similarity = similarity
        self._attachment = attachment
        self._recommenders: dict[tuple, UpskillRecommender] = {}

    def recommender(self, config: UpskillConfig) -> UpskillRecommender:
        """The bundle's recommender for ``config``, built once per config.

        Always blends against the empirical-prior difficulty estimates —
        the ones the paper recommends for serving (they cover
        never-selected items and are robust on rare ones).
        """
        key = (
            config.window_low,
            config.window_high,
            config.interest_weight,
            config.decay,
        )
        recommender = self._recommenders.get(key)
        if recommender is None:
            recommender = UpskillRecommender(
                self.model, self.difficulties[PRIOR_EMPIRICAL], config
            )
            self._recommenders[key] = recommender
        return recommender

    def similarity_index(self) -> ItemSimilarityIndex:
        """The bundle's similarity index, building it in-process if the
        artifact shipped without one (pre-index artifacts stay servable).

        The lazy build's footprint is added to ``resident_bytes`` so the
        tenant registry's LRU budget keeps charging honestly.
        """
        if self.similarity is None:
            self.similarity = build_similarity_index(self.model)
            self.resident_bytes += self.similarity.nbytes
            registry = get_registry()
            registry.counter("serve.recommend.index_builds").inc()
            registry.gauge("serve.recommend.index_items").set(
                float(len(self.similarity.items))
            )
        return self.similarity

    def close(self) -> None:
        """Release any shared-memory mapping this bundle holds open."""
        self._recommenders.clear()
        self.similarity = None
        if self._attachment is not None:
            self._attachment.close()


def _build_bundle(prefix: Path, version: int) -> ServingModel:
    model = load_model(prefix)
    metadata = artifact_metadata(prefix)
    difficulties = {
        PRIOR_UNIFORM: generation_difficulty(model, prior=PRIOR_UNIFORM),
        PRIOR_EMPIRICAL: generation_difficulty(model, prior=PRIOR_EMPIRICAL),
    }
    # Artifacts saved with a precomputed similarity index bring it along;
    # older pairs leave ``similarity`` None and the bundle builds one
    # in-process on the first /recommend that needs it.
    payload = load_similarity_payload(prefix)
    similarity = (
        ItemSimilarityIndex.from_payload(
            payload, model.encoded.vocabulary("__item_id__")
        )
        if payload is not None
        else None
    )
    return ServingModel(
        model,
        metadata,
        difficulties,
        version,
        resident_bytes=model_resident_bytes(model)
        + (similarity.nbytes if similarity is not None else 0),
        similarity=similarity,
    )


class ModelState:
    """The current model plus the machinery to refresh it from disk.

    ``load()`` must succeed once before serving; ``maybe_reload()`` is
    then called by the server's watch task every ``poll_seconds`` and is
    also safe to call directly (tests, manual reload endpoints).

    Reload failures back off with capped exponential delay: a writer that
    keeps landing broken pairs (each with a *fresh* stat signature, so the
    failed-signature memo alone cannot help) would otherwise cost a full
    load-and-checksum every poll.  While inside the backoff window, polls
    are suppressed and counted in ``serve.reload_retry``; any successful
    swap resets the backoff.  ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        path_prefix: str | Path,
        *,
        poll_seconds: float = 1.0,
        retry_base_seconds: float = 1.0,
        retry_cap_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.prefix = Path(path_prefix)
        self.poll_seconds = float(poll_seconds)
        self.retry_base_seconds = float(retry_base_seconds)
        self.retry_cap_seconds = float(retry_cap_seconds)
        self.clock = clock
        self.reloads = 0
        self.reload_failures = 0
        self._current: ServingModel | None = None
        self._signature: _Signature | None = None
        self._failed_signature: _Signature | None = None
        self._failures = 0
        self._retry_at = 0.0

    # ------------------------------------------------------------- access

    @property
    def loaded(self) -> bool:
        return self._current is not None

    @property
    def current(self) -> ServingModel:
        if self._current is None:
            raise DataError(f"no model loaded from {self.prefix}")
        return self._current

    # ------------------------------------------------------------ loading

    def _stat_signature(self) -> _Signature | None:
        try:
            json_stat = os.stat(self.prefix.with_suffix(".json"))
            npz_stat = os.stat(self.prefix.with_suffix(".npz"))
        except OSError:
            return None
        return (
            (json_stat.st_mtime_ns, json_stat.st_size),
            (npz_stat.st_mtime_ns, npz_stat.st_size),
        )

    def _build(self, version: int) -> ServingModel:
        """Build the next bundle; subclasses change *where* models come
        from (disk pair vs shm manifest) without touching the watch/swap
        protocol above."""
        return _build_bundle(self.prefix, version)

    def unload(self) -> None:
        """Drop the current bundle (LRU eviction); ``load()`` restores it."""
        bundle, self._current = self._current, None
        self._signature = None
        if bundle is not None:
            bundle.close()

    def close(self) -> None:
        self.unload()

    def load(self) -> ServingModel:
        """Initial load; raises :class:`~repro.exceptions.DataError` when
        the artifact pair is missing or invalid."""
        # Signature first: if the pair is replaced mid-read the signatures
        # diverge and the next poll re-reads — never a silent stale serve.
        self._signature = self._stat_signature()
        bundle = self._build(version=1)
        self._current = bundle
        _log.info(
            "model loaded for serving",
            extra={
                "obs": {
                    "prefix": str(self.prefix),
                    "checksum": bundle.metadata.get("npz_checksum", "")[:12],
                    "users": bundle.metadata.get("num_users"),
                    "items": bundle.metadata.get("num_items"),
                }
            },
        )
        return bundle

    def maybe_reload(self) -> bool:
        """Swap in a newly written artifact pair; returns True on a swap.

        The previous model keeps serving through every failure mode: a
        half-committed pair (checksum mismatch), a vanished file, or a
        malformed artifact only increments ``serve.reload_failures``.
        """
        if self._current is None:
            raise DataError("maybe_reload() before load()")
        signature = self._stat_signature()
        if signature is None or signature == self._signature:
            return False
        if signature == self._failed_signature:
            # This exact broken pair already failed validation; wait for
            # the writer's final os.replace to move the signature again.
            return False
        if self.clock() < self._retry_at:
            # Inside the failure backoff window: don't pay a fresh
            # load-and-checksum for every poll against a flapping writer.
            get_registry().counter("serve.reload_retry").inc()
            return False
        try:
            bundle = self._build(version=self._current.version + 1)
        except (ReproError, OSError) as exc:
            self.reload_failures += 1
            self._failed_signature = signature
            self._failures += 1
            backoff = min(
                self.retry_cap_seconds,
                self.retry_base_seconds * (2 ** (self._failures - 1)),
            )
            self._retry_at = self.clock() + backoff
            get_registry().counter("serve.reload_failures").inc()
            _log.warning(
                "model reload failed; keeping previous model",
                extra={
                    "obs": {
                        "prefix": str(self.prefix),
                        "serving_version": self._current.version,
                        "error": str(exc),
                    }
                },
            )
            return False
        self._signature = signature
        self._failed_signature = None
        self._failures = 0
        self._retry_at = 0.0
        self._current = bundle  # the atomic swap: one attribute assignment
        self.reloads += 1
        get_registry().counter("serve.reloads").inc()
        tracer = get_tracer()
        if tracer.enabled:
            # The swap closes the ingest→fold→publish→swap loop: re-emit
            # the folded events' trace ids (journaled into the artifact's
            # foldin metadata by the worker) so a trace that started at
            # POST /ingest ends at the version now serving.
            extra = bundle.metadata.get("extra")
            foldin = extra.get("foldin") if isinstance(extra, dict) else None
            attrs: dict[str, Any] = {
                "version": bundle.version,
                "prefix": str(self.prefix),
            }
            if isinstance(foldin, dict):
                if isinstance(foldin.get("watermark_seq"), int):
                    attrs["watermark_seq"] = foldin["watermark_seq"]
                if isinstance(foldin.get("traces"), list):
                    attrs["traces"] = foldin["traces"]
            tracer.event("serve.swap", **attrs)
        _log.info(
            "model hot-reloaded",
            extra={
                "obs": {
                    "prefix": str(self.prefix),
                    "version": bundle.version,
                    "checksum": bundle.metadata.get("npz_checksum", "")[:12],
                }
            },
        )
        return True


# ----------------------------------------------------------- shm generations


def _reattach_hook() -> None:
    """Fault seam: runs between reading a generation manifest and attaching
    its segment.  ``testing.faults`` patches this to kill a worker inside
    the re-attach window; forked workers inherit the patch."""


class ManifestModelState(ModelState):
    """Model state fed by a shared-memory generation manifest, not disk.

    In prefork mode the parent process owns the artifact watch: it loads
    each new pair once, publishes the arrays into one shm segment via
    :func:`~repro.core.serialize.publish_model_shm`, and atomically
    rewrites a per-tenant manifest JSON naming the segment, its SHA-256,
    and a monotonically increasing *generation*.  Workers run this class
    against the manifest file: the same watch/validate/swap protocol as
    the disk watcher, except *validate* is the attach-time checksum gate
    and *swap* maps zero-copy views instead of decompressing arrays.

    ``version`` always equals the manifest generation, so every worker
    reports the same version for the same physical segment — the parity
    discipline the cross-worker tests pin.  ``observed_generation``
    records the newest generation this process successfully attached
    (even if the bundle was later evicted); the worker publishes it as
    its ack, and the parent unlinks an old generation only once every
    live worker acks a newer one.
    """

    def __init__(self, manifest_path: str | Path, **kwargs: Any) -> None:
        super().__init__(manifest_path, **kwargs)
        self.manifest_path = Path(manifest_path)
        self.observed_generation = 0

    def _stat_signature(self) -> _Signature | None:
        try:
            stat = os.stat(self.manifest_path)
        except OSError:
            return None
        return ((stat.st_mtime_ns, stat.st_size), (0, 0))

    def _build(self, version: int) -> ServingModel:
        try:
            manifest = json.loads(self.manifest_path.read_text("utf-8"))
        except FileNotFoundError as exc:
            raise DataError(f"{self.manifest_path}: no generation manifest") from exc
        except (OSError, ValueError) as exc:
            raise DataError(f"{self.manifest_path}: unreadable manifest: {exc}") from exc
        descriptor = manifest.get("descriptor")
        if not isinstance(descriptor, Mapping):
            raise DataError(f"{self.manifest_path}: manifest has no segment descriptor")
        _reattach_hook()
        model, segment = attach_model_shm(descriptor)
        generation = int(manifest.get("generation", version))
        metadata = dict(manifest.get("metadata") or {})
        metadata.setdefault("npz_checksum", str(descriptor.get("sha256", "")))
        difficulties = {
            PRIOR_UNIFORM: generation_difficulty(model, prior=PRIOR_UNIFORM),
            PRIOR_EMPIRICAL: generation_difficulty(model, prior=PRIOR_EMPIRICAL),
        }
        # The publisher bakes the similarity index into the same segment;
        # attaching yields zero-copy views, so N workers share one physical
        # copy of the neighbor tables (the smaps/Pss property the prefork
        # bench asserts).  The mapping stays alive via the attachment.
        payload = shm_similarity_payload(segment)
        similarity = (
            ItemSimilarityIndex.from_payload(
                payload, model.encoded.vocabulary("__item_id__")
            )
            if payload is not None
            else None
        )
        self.observed_generation = max(self.observed_generation, generation)
        return ServingModel(
            model,
            metadata,
            difficulties,
            generation,
            resident_bytes=int(descriptor.get("bytes", 0)),
            similarity=similarity,
            attachment=_SegmentAttachment(segment),
        )


# -------------------------------------------------------------- multi-tenant


@dataclass(frozen=True)
class TenantSpec:
    """One named model a deployment serves.

    Exactly one of ``prefix`` (disk artifact pair) or ``manifest`` (shm
    generation manifest, prefork workers) names the model source.
    ``max_queue`` optionally overrides the deployment-wide admission
    queue bound for this tenant's endpoints.
    """

    name: str
    prefix: Path | None = None
    manifest: Path | None = None
    max_queue: int | None = None

    def __post_init__(self) -> None:
        if (self.prefix is None) == (self.manifest is None):
            raise DataError(
                f"tenant {self.name!r}: exactly one of prefix/manifest required"
            )


class TenantRegistry:
    """Many named :class:`ModelState`s behind one LRU residency budget.

    The registry is the single place serving code resolves a tenant name
    to a model bundle.  States load lazily on first request and stay
    resident until the byte budget (counted against
    ``ServingModel.resident_bytes`` — the shm segment size in prefork
    workers) forces the least-recently-used tenant out.  An evicted
    tenant is not an error: the next request reloads it, paying one
    load/attach.  A single model larger than the whole budget still
    serves (with a warning) — the budget bounds *aggregate* residency,
    it never bricks a tenant.

    Reload state — including the failure backoff in
    :meth:`ModelState.maybe_reload` — lives per tenant, so one tenant's
    corrupt artifact never stalls hot-reload for healthy ones;
    :meth:`maybe_reload_all` additionally fences unexpected per-tenant
    exceptions.
    """

    def __init__(
        self,
        specs: Iterable[TenantSpec],
        *,
        default: str = DEFAULT_TENANT,
        residency_budget_bytes: int | None = None,
        poll_seconds: float = 1.0,
        retry_base_seconds: float = 1.0,
        retry_cap_seconds: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.default = default
        self.residency_budget_bytes = (
            int(residency_budget_bytes) if residency_budget_bytes else None
        )
        self.evictions = 0
        self._specs: dict[str, TenantSpec] = {}
        self._states: "OrderedDict[str, ModelState]" = OrderedDict()
        for spec in specs:
            if spec.name in self._specs:
                raise DataError(f"duplicate tenant {spec.name!r}")
            self._specs[spec.name] = spec
            kwargs: dict[str, Any] = {
                "poll_seconds": poll_seconds,
                "retry_base_seconds": retry_base_seconds,
                "retry_cap_seconds": retry_cap_seconds,
                "clock": clock,
            }
            if spec.manifest is not None:
                state: ModelState = ManifestModelState(spec.manifest, **kwargs)
            else:
                state = ModelState(spec.prefix, **kwargs)
            self._states[spec.name] = state
        if self.default not in self._specs:
            raise DataError(f"default tenant {self.default!r} has no spec")

    @classmethod
    def single(cls, state: ModelState, *, name: str = DEFAULT_TENANT) -> "TenantRegistry":
        """Wrap an already-constructed state as a one-tenant registry —
        the adapter that keeps the original single-model server API."""
        registry = cls.__new__(cls)
        registry.default = name
        registry.residency_budget_bytes = None
        registry.evictions = 0
        if isinstance(state, ManifestModelState):
            spec = TenantSpec(name, manifest=state.manifest_path)
        else:
            spec = TenantSpec(name, prefix=state.prefix)
        registry._specs = {name: spec}
        registry._states = OrderedDict({name: state})
        return registry

    # ------------------------------------------------------------- access

    def names(self) -> list[str]:
        return list(self._specs)

    def spec(self, name: str) -> TenantSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise DataError(f"unknown tenant {name!r}") from None

    def state(self, name: str | None = None) -> ModelState:
        key = self.default if name is None else name
        try:
            return self._states[key]
        except KeyError:
            raise DataError(f"unknown tenant {key!r}") from None

    def resident_bytes(self) -> int:
        return sum(
            state.current.resident_bytes
            for state in self._states.values()
            if state.loaded
        )

    def loaded_names(self) -> list[str]:
        return [name for name, state in self._states.items() if state.loaded]

    def get(self, name: str | None = None) -> ServingModel:
        """Resolve a tenant to its current bundle, loading and evicting
        as the residency budget requires.  Raises
        :class:`~repro.exceptions.DataError` for unknown tenants and for
        tenants whose artifact cannot be loaded."""
        key = self.default if name is None else name
        state = self.state(key)
        if not state.loaded:
            state.load()
            get_registry().counter(f"serve.tenant.{key}.loads").inc()
            self._enforce_budget(keep=key)
        self._states.move_to_end(key)
        self._update_gauges()
        return state.current

    # ------------------------------------------------------------ budget

    def _enforce_budget(self, *, keep: str) -> None:
        budget = self.residency_budget_bytes
        if budget is None:
            return
        registry = get_registry()
        while self.resident_bytes() > budget:
            victim = next(
                (
                    name
                    for name, state in self._states.items()
                    if state.loaded and name != keep
                ),
                None,
            )
            if victim is None:
                _log.warning(
                    "tenant alone exceeds residency budget; serving anyway",
                    extra={
                        "obs": {
                            "tenant": keep,
                            "resident_bytes": self.resident_bytes(),
                            "budget_bytes": budget,
                        }
                    },
                )
                return
            self._states[victim].unload()
            self.evictions += 1
            registry.counter("serve.tenant.evictions").inc()
            registry.gauge(f"serve.tenant.{victim}.resident_bytes").set(0.0)
            _log.info(
                "tenant evicted for residency budget",
                extra={"obs": {"tenant": victim, "budget_bytes": budget}},
            )

    def _update_gauges(self) -> None:
        registry = get_registry()
        registry.gauge("serve.tenant.models").set(float(len(self.loaded_names())))
        registry.gauge("serve.tenant.resident_bytes").set(float(self.resident_bytes()))
        for name, state in self._states.items():
            if state.loaded:
                registry.gauge(f"serve.tenant.{name}.resident_bytes").set(
                    float(state.current.resident_bytes)
                )

    # ----------------------------------------------------------- reloads

    def maybe_reload_all(self) -> int:
        """Poll every resident tenant for a new artifact; returns swap
        count.  Failures (expected or not) are isolated per tenant."""
        swapped = 0
        for name, state in list(self._states.items()):
            if not state.loaded:
                continue
            try:
                if state.maybe_reload():
                    swapped += 1
            except Exception as exc:  # noqa: BLE001 - tenant isolation fence
                _log.warning(
                    "tenant reload raised; tenant keeps previous model",
                    extra={"obs": {"tenant": name, "error": str(exc)}},
                )
        if swapped:
            self._update_gauges()
        return swapped

    def observed_generations(self) -> dict[str, int]:
        """Per-tenant newest attached shm generation — the worker's ack
        payload.  Disk-backed tenants report their current version."""
        acks: dict[str, int] = {}
        for name, state in self._states.items():
            if isinstance(state, ManifestModelState):
                if state.observed_generation:
                    acks[name] = state.observed_generation
            elif state.loaded:
                acks[name] = state.current.version
        return acks

    # ----------------------------------------------------------- teardown

    def close(self) -> None:
        """Unload every tenant and release their shm mappings."""
        for state in self._states.values():
            state.close()
        self._update_gauges()
