"""The online prediction service: HTTP endpoints over a fitted model.

This is the top of the serving stack.  :class:`SkillServer` binds an
``asyncio.start_server`` socket and answers the queries the paper's
envisioned upskilling recommender needs online (Section VI's downstream
tasks), plus the operational endpoints a running service requires:

==========================  =================================================
``POST /predict``           skill-conditioned item ranking: infer the user's
                            level at a time, return the top-k items and —
                            when a candidate ``item`` is given — its
                            mid-rank and reciprocal rank (Tables X/XI math)
``POST /difficulty``        difficulty estimates for a list of items under a
                            uniform or empirical prior (Section V)
``POST /recommend``         difficulty-targeted next items (the paper's
                            Figure 1 recommender): the upskilling blend at
                            the user's level, or ``similar_harder``
                            neighbors from the precomputed item-similarity
                            index (see :mod:`repro.recsys.similarity`)
``GET /skill``              a user's inferred level at ``?user=&time=``
``GET /healthz``            liveness plus the loaded artifact's metadata
                            (checksum, format version, telemetry run id)
``GET /metrics``            the process metrics snapshot in the
                            ``repro-metrics/1`` schema that
                            ``tools/check_obs_output.py`` validates
==========================  =================================================

Request flow: parse → admission (429 when the bounded queue is full) →
micro-batcher (``/predict``, ``/difficulty``, and ``/recommend`` coalesce
into one ``predict_items`` / ``difficulty_array`` / ``recommend_batch``
call per flush; see
:mod:`repro.serve.batcher`) → deadline check (503 past the per-endpoint
timeout) → JSON response.  Model hot-reload runs as a background watch
task over :class:`~repro.serve.state.ModelState`; each batch flush reads
one immutable bundle, so a swap mid-traffic never mixes models within a
response.

Everything is standard library: the HTTP layer is a deliberately small
HTTP/1.1 subset (keep-alive, ``Content-Length`` bodies) — enough for load
balancers, ``curl``, and ``http.client``, with no framework dependency.
"""

from __future__ import annotations

import asyncio
import functools
import json
import queue
import socket as socket_module
import threading
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.features import ID_FEATURE
from repro.data.splits import HeldOutAction
from repro.data.actions import Action
from repro.exceptions import ConfigurationError, DataError, ReproError
from repro.obs.logging import current_run_id, get_logger
from repro.obs.metrics import get_registry
from repro.obs.resource import ResourceSampler
from repro.obs.trace import get_tracer
from repro.recsys.ranking import predict_items
from repro.recsys.similarity import similar_harder
from repro.recsys.upskill import RecommendQuery, UpskillConfig
from repro.core.difficulty import PRIOR_EMPIRICAL, PRIOR_UNIFORM, difficulty_array
from repro.serve.admission import AdmissionConfig, AdmissionController
from repro.serve.batcher import MicroBatcher, TenantBatchers
from repro.serve.foldin import FoldinWorker
from repro.serve.ingest import WriteAheadLog
from repro.serve.state import ModelState, ServingModel, TenantRegistry

__all__ = ["ServeConfig", "SkillServer", "ServerThread", "merge_snapshots"]

_log = get_logger("serve.server")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_PRIORS = (PRIOR_UNIFORM, PRIOR_EMPIRICAL)


@dataclass(frozen=True)
class ServeConfig:
    """Everything the serving subsystem can be tuned with."""

    host: str = "127.0.0.1"
    port: int = 8080  # 0 binds an ephemeral port (tests, benchmarks)
    max_batch: int = 64
    max_wait_ms: float = 2.0
    max_queue: int = 256
    timeout_seconds: float = 5.0
    endpoint_timeouts: Mapping[str, float] = field(default_factory=dict)
    poll_seconds: float = 1.0
    default_top_k: int = 10
    # /recommend knobs: the challenge window around the user's level and
    # the interest/challenge blend exponent (see recsys.upskill).
    recommend_window_low: float = -0.25
    recommend_window_high: float = 0.75
    interest_weight: float = 0.5
    recommend_decay: float = 2.0
    # Prefork workers bind N sockets to one address via SO_REUSEPORT, so
    # the kernel load-balances accepts across them without a proxy.
    reuse_port: bool = False

    def __post_init__(self) -> None:
        if self.default_top_k < 0:
            raise ConfigurationError("default_top_k must be >= 0")
        if self.poll_seconds <= 0:
            raise ConfigurationError("poll_seconds must be positive")
        self.recommend_config()  # validates the window/weight/decay knobs

    def recommend_config(self) -> UpskillConfig:
        """The serve knobs as an UpskillConfig; ``exclude_seen`` is off
        because the server has no action log — clients send an explicit
        ``exclude`` list instead."""
        return UpskillConfig(
            window_low=self.recommend_window_low,
            window_high=self.recommend_window_high,
            interest_weight=self.interest_weight,
            decay=self.recommend_decay,
            exclude_seen=False,
        )


class _HttpError(Exception):
    """A request-level failure with its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _RequestError(Exception):
    """A per-payload failure inside a batch flush (carries the status)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class _Request:
    method: str
    path: str
    params: Mapping[str, list[str]]
    headers: Mapping[str, str]
    body: bytes
    keep_alive: bool


class SkillServer:
    """Micro-batched asyncio HTTP server over a hot-reloadable model."""

    def __init__(
        self,
        state: ModelState | TenantRegistry,
        config: ServeConfig | None = None,
        *,
        wal: WriteAheadLog | None = None,
        foldin: FoldinWorker | None = None,
        sock: socket_module.socket | None = None,
        worker: Any | None = None,
    ) -> None:
        # A bare ModelState (the original single-model API, used by every
        # existing test and the classic CLI path) becomes a one-tenant
        # registry; ``self.state`` stays the default tenant's state so the
        # legacy surface keeps reading through it.
        if isinstance(state, TenantRegistry):
            self.registry = state
        else:
            self.registry = TenantRegistry.single(state)
        self.state = self.registry.state()
        self.config = config if config is not None else ServeConfig()
        self.wal = wal
        self.foldin = foldin
        # ``sock`` is a pre-bound listen socket inherited from a prefork
        # parent on platforms without SO_REUSEPORT; ``worker`` is the
        # prefork WorkerRuntime (duck-typed: index / register / peers /
        # prefork_info) — None outside prefork mode.
        self._sock = sock
        self.worker = worker
        self._admissions: dict[str, AdmissionController] = {}
        self._recommend_config = self.config.recommend_config()
        self.admission = self._admission_for(self.registry.default)
        self._batchers = TenantBatchers(
            self._batch_fn,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
        )
        self._server: asyncio.AbstractServer | None = None
        self._admin_server: asyncio.AbstractServer | None = None
        self.admin_port: int | None = None
        self._watch_task: asyncio.Task | None = None
        self._resources = ResourceSampler(get_registry())

    def _admission_for(self, tenant: str) -> AdmissionController:
        """Per-tenant admission: each tenant gets its own bounded queue so
        one tenant's burst can't starve the others.  The default tenant's
        controller is unlabelled — it owns the deployment-wide
        ``serve.queue_depth`` gauge, exactly as the single-tenant server
        always did; named tenants report ``serve.tenant.<name>.*``."""
        controller = self._admissions.get(tenant)
        if controller is None:
            spec = self.registry.spec(tenant)
            controller = AdmissionController(
                AdmissionConfig(
                    max_queue=spec.max_queue or self.config.max_queue,
                    default_timeout_seconds=self.config.timeout_seconds,
                    endpoint_timeouts=dict(self.config.endpoint_timeouts),
                ),
                label=None if tenant == self.registry.default else tenant,
            )
            self._admissions[tenant] = controller
        return controller

    def _batch_fn(self, tenant: str, endpoint: str):
        if endpoint == "predict":
            return functools.partial(self._predict_batch, tenant)
        if endpoint == "difficulty":
            return functools.partial(self._difficulty_batch, tenant)
        if endpoint == "recommend":
            return functools.partial(self._recommend_batch, tenant)
        # One fsync per flush: every /ingest request coalesced into a flush
        # shares a single WAL append + fsync, which is the durability/IOPS
        # trade the WAL's fsync-on-batch contract is about.  Ingest is not
        # tenant-scoped (the WAL feeds the default tenant's fold-in).
        if endpoint == "ingest":
            return self._ingest_batch
        raise ConfigurationError(f"no batch function for endpoint {endpoint!r}")

    def _bundle(self, tenant: str | None) -> ServingModel:
        """Resolve a tenant to its bundle; 503 when its artifact is sick."""
        try:
            return self.registry.get(tenant)
        except DataError as exc:
            raise _HttpError(503, f"tenant model unavailable: {exc}") from None

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> tuple[str, int]:
        """Load the model (unless preloaded), bind, and return the address."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        if not self.state.loaded:
            self.state.load()
        self._resources.install_gc_hooks()
        self._resources.sample()
        self._watch_task = asyncio.create_task(self._watch(), name="serve-watch")
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_client, sock=self._sock
            )
        elif self.config.reuse_port:
            self._server = await asyncio.start_server(
                self._handle_client,
                host=self.config.host,
                port=self.config.port,
                reuse_port=True,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.config.host, port=self.config.port
            )
        host, port = self._server.sockets[0].getsockname()[:2]
        if self.worker is not None:
            # A loopback admin listener (same handler, same routes) lets
            # peers and the parent scrape this worker without competing
            # with public traffic on the shared accept queue.
            self._admin_server = await asyncio.start_server(
                self._handle_client, host="127.0.0.1", port=0
            )
            self.admin_port = self._admin_server.sockets[0].getsockname()[1]
            self.worker.register(
                admin_port=self.admin_port,
                generations=self.registry.observed_generations(),
            )
            get_registry().gauge("serve.prefork.worker_index").set(
                float(self.worker.index)
            )
        if self.foldin is not None:
            self.foldin.start()
        _log.info(
            "serving",
            extra={
                "obs": {
                    "host": host,
                    "port": port,
                    "model": str(self.state.prefix),
                    "max_batch": self.config.max_batch,
                    "max_wait_ms": self.config.max_wait_ms,
                    "tenants": self.registry.names(),
                    "worker": getattr(self.worker, "index", None),
                }
            },
        )
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._watch_task is not None:
            self._watch_task.cancel()
            try:
                await self._watch_task
            except asyncio.CancelledError:
                pass
            self._watch_task = None
        for server in (self._server, self._admin_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._server = None
        self._admin_server = None
        await self._batchers.stop()
        if self.foldin is not None:
            self.foldin.stop()
        self._resources.uninstall_gc_hooks()
        self.registry.close()

    async def _watch(self) -> None:
        """Poll every resident tenant and hot-swap models as they change."""
        while True:
            await asyncio.sleep(self.state.poll_seconds)
            try:
                swapped = self.registry.maybe_reload_all()
            except Exception:  # the watcher must outlive any reload bug
                _log.exception("model watch iteration failed")
                continue
            if swapped and self.worker is not None and self.admin_port is not None:
                # Re-ack with the newest observed shm generations so the
                # parent can retire old segments once every worker moved.
                try:
                    self.worker.register(
                        admin_port=self.admin_port,
                        generations=self.registry.observed_generations(),
                    )
                except Exception:
                    _log.exception("worker ack update failed")

    # ------------------------------------------------------------ transport

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                # One root span per request: dispatch AND response
                # serialization happen inside it, so the trace id in the
                # X-Trace-Id header covers everything the client waited
                # on.  Head sampling decides span *detail* per request
                # (full spans cost ~tens of µs on a busy single-core
                # host); unsampled requests still mint and propagate a
                # trace id for the header, access log, and WAL journal.
                tracer = get_tracer()
                scope = (
                    # path+status only: the method is in the access log,
                    # and every root-span attr is serialized per request.
                    tracer.span("serve.request", path=request.path)
                    if tracer.sampled()
                    else tracer.trace_only()
                )
                with scope as root:
                    status, payload = await self._dispatch(request)
                    root.set(status=status)
                    if root.span:
                        ser_ts, ser_start = tracer.wall(), tracer.clock()
                    body = json.dumps(payload).encode("utf-8")
                    if root.span:
                        # record(), not span(): serialization never opens
                        # child spans, and record costs a fraction of the
                        # context churn on this per-request path.
                        tracer.record(
                            "serve.serialize",
                            trace=root.trace,
                            parent=root.span,
                            ts=ser_ts,
                            duration=tracer.clock() - ser_start,
                        )
                trace_header = (
                    f"X-Trace-Id: {root.trace}\r\n" if root.trace is not None else ""
                )
                worker_header = (
                    f"X-Serve-Worker: {self.worker.index}\r\n"
                    if self.worker is not None
                    else ""
                )
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"{trace_header}"
                    f"{worker_header}"
                    f"Connection: {'keep-alive' if request.keep_alive else 'close'}\r\n"
                    "\r\n"
                ).encode("latin-1")
                writer.write(head + body)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ValueError,  # oversized/garbled request line
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {line!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        return _Request(
            method=method.upper(),
            path=path,
            params=urllib.parse.parse_qs(query),
            headers=headers,
            body=body,
            keep_alive=keep_alive,
        )

    # ------------------------------------------------------------- routing

    #: endpoints reachable under a ``/t/<tenant>/`` prefix.
    _TENANT_ENDPOINTS = frozenset(
        {"predict", "difficulty", "recommend", "skill", "healthz"}
    )

    async def _dispatch(self, request: _Request) -> tuple[int, Any]:
        registry = get_registry()
        # ``/t/<tenant>/predict`` routes to the named tenant's model; the
        # unprefixed routes are the default tenant, byte-for-byte the
        # pre-multi-tenant behavior.
        tenant: str | None = None
        path = request.path
        if path.startswith("/t/"):
            name, slash, rest = path[3:].partition("/")
            if not name or not slash:
                registry.counter("serve.requests").inc()
                registry.counter("serve.errors").inc()
                return 404, {"error": "not found"}
            tenant, path = name, "/" + rest
        route = {
            ("GET", "/healthz"): ("healthz", self._handle_healthz),
            ("GET", "/metrics"): ("metrics", self._handle_metrics),
            ("GET", "/skill"): ("skill", self._handle_skill),
            ("POST", "/predict"): ("predict", self._handle_predict),
            ("POST", "/difficulty"): ("difficulty", self._handle_difficulty),
            ("POST", "/recommend"): ("recommend", self._handle_recommend),
            ("POST", "/ingest"): ("ingest", self._handle_ingest),
        }.get((request.method, path))
        if route is not None and tenant is not None:
            if route[0] not in self._TENANT_ENDPOINTS:
                route = None
            elif tenant not in self.registry.names():
                registry.counter("serve.requests").inc()
                registry.counter("serve.errors").inc()
                return 404, {"error": f"unknown tenant {tenant!r}"}
        if route is None:
            known_paths = {
                "/healthz", "/metrics", "/skill", "/predict", "/difficulty",
                "/recommend", "/ingest",
            }
            status = 405 if path in known_paths and tenant is None else 404
            registry.counter("serve.requests").inc()
            registry.counter("serve.errors").inc()
            return status, {"error": _REASONS[status].lower()}
        endpoint, handler = route
        tracer = get_tracer()
        trace_id = tracer.current_trace_id()
        registry.counter("serve.requests").inc()
        registry.counter(f"serve.requests.{endpoint}").inc()
        if tenant is not None:
            registry.counter(f"serve.tenant.{tenant}.requests").inc()
        start = registry.clock()
        try:
            status, payload = await handler(request, tenant)
        except _HttpError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except ReproError as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # never leak a traceback to the socket
            _log.exception("unhandled error serving %s", endpoint)
            status, payload = 500, {"error": f"internal error: {type(exc).__name__}"}
        elapsed = registry.clock() - start
        # observe() picks up the ambient trace id, so the slowest samples
        # surface as exemplars next to the histogram in /metrics.
        registry.histogram("serve.request_seconds").observe(elapsed)
        if status >= 400:
            registry.counter("serve.errors").inc()
        fields = {
            "endpoint": endpoint,
            "status": status,
            "ms": round(elapsed * 1000.0, 3),
        }
        if tenant is not None:
            fields["tenant"] = tenant
        if trace_id is not None:
            fields["trace"] = trace_id
        _log.info("request", extra={"obs": fields})
        return status, payload

    async def _admit_and_submit(
        self, tenant: str, endpoint: str, payload: Any
    ) -> Any:
        """Per-tenant admission + deadline around one batched request."""
        admission = self._admission_for(tenant)
        batcher = await self._batchers.get(tenant, endpoint)
        tracer = get_tracer()
        if tracer.enabled:
            # Admission is non-blocking (admit() answers immediately), so
            # the happy-path duration is sub-microsecond noise: record a
            # serve.admission span only when admitting measurably stalled
            # (ever >0.1ms, e.g. under lock contention) or was refused —
            # rejections also raise 429 below and surface as serve.shed
            # events.  Skipping the always-~0ms record keeps per-request
            # tracing inside the bench's <5% overhead budget.
            adm_ts, adm_start = tracer.wall(), tracer.clock()
            ticket = admission.admit(endpoint)
            adm_wait = tracer.clock() - adm_start
            if adm_wait >= 1e-4 or ticket is None:
                tracer.record("serve.admission", ts=adm_ts, duration=adm_wait)
        else:
            ticket = admission.admit(endpoint)
        if ticket is None:
            raise _HttpError(429, "queue full; retry with backoff")
        try:
            remaining = admission.remaining(ticket)
            if remaining <= 0:
                admission.shed_deadline()
                raise _HttpError(503, f"deadline exceeded for {endpoint}")
            try:
                # The wait on the batcher is not separately recorded: the
                # batcher reconstructs the same submit→flush interval as a
                # serve.batch.queue span in each request's trace.
                result = await asyncio.wait_for(batcher.submit(payload), remaining)
            except (TimeoutError, asyncio.TimeoutError):
                admission.shed_deadline()
                raise _HttpError(503, f"deadline exceeded for {endpoint}") from None
        finally:
            admission.release(ticket)
        if isinstance(result, _RequestError):
            raise _HttpError(result.status, str(result))
        return result

    # ------------------------------------------------------------ endpoints

    async def _handle_healthz(
        self, request: _Request, tenant: str | None = None
    ) -> tuple[int, Any]:
        name = self.registry.default if tenant is None else tenant
        state = self.registry.state(name)
        bundle = self._bundle(tenant)
        payload = {
            "status": "ok",
            "model": bundle.metadata,
            "model_version": bundle.version,
            "reloads": state.reloads,
            "reload_failures": state.reload_failures,
            "inflight": self._admission_for(name).inflight,
        }
        if tenant is not None:
            payload["tenant"] = tenant
        else:
            payload["tenants"] = {
                "names": self.registry.names(),
                "loaded": self.registry.loaded_names(),
                "resident_bytes": self.registry.resident_bytes(),
                "evictions": self.registry.evictions,
            }
        if self.worker is not None:
            payload["worker"] = self.worker.index
        if self.wal is not None:
            payload["ingest"] = {
                "last_seq": self.wal.last_seq,
                "durable_seq": self.wal.durable_seq,
                "segments": self.wal.segment_count,
            }
        if self.foldin is not None:
            foldin = self.foldin.health()
            payload["foldin"] = foldin
            if foldin["status"] != "ok":
                # Liveness stays 200: the last good model still serves —
                # but the top-level status names the degradation so probes
                # and operators see it without digging.
                payload["status"] = "degraded"
        return 200, payload

    async def _handle_metrics(
        self, request: _Request, tenant: str | None = None
    ) -> tuple[int, Any]:
        bundle = self.state.current
        telemetry = bundle.model.telemetry
        # Refresh proc.* gauges so every scrape sees current peak RSS and
        # open-fd counts, not the values from server start.
        self._resources.sample()
        local = {
            "schema": "repro-metrics/1",
            "run": current_run_id(),
            **get_registry().snapshot(),
            "telemetry": telemetry.to_json() if telemetry is not None else None,
        }
        scope = (request.params.get("scope") or [""])[0]
        if self.worker is None or scope == "local":
            return 200, local
        # Prefork deployment view: fan out to every registered peer's
        # admin listener for its local snapshot and merge, so any worker
        # answers /metrics for the whole deployment.
        snapshots = [local]
        peers = [
            peer
            for peer in self.worker.peers()
            if peer.get("admin_port") not in (None, self.admin_port)
        ]
        if peers:
            fetched = await asyncio.gather(
                *(self._fetch_peer_metrics(peer["admin_port"]) for peer in peers)
            )
            snapshots.extend(snapshot for snapshot in fetched if snapshot is not None)
        merged = merge_snapshots(snapshots)
        info = self.worker.prefork_info()
        gauges = merged.setdefault("gauges", {})
        gauges["serve.prefork.workers"] = float(len(snapshots))
        gauges["serve.prefork.configured"] = float(info.get("configured", len(snapshots)))
        gauges["serve.prefork.respawns"] = float(info.get("respawns", 0))
        gauges["serve.prefork.degraded"] = float(info.get("degraded", 0))
        return 200, merged

    async def _fetch_peer_metrics(self, port: int) -> dict | None:
        """One peer's local snapshot; ``None`` when the peer is mid-death
        (its registration file outlives its sockets by a moment)."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection("127.0.0.1", port), 0.5
            )
        except (OSError, asyncio.TimeoutError):
            return None
        try:
            writer.write(
                b"GET /metrics?scope=local HTTP/1.1\r\n"
                b"Host: localhost\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 2.0)
        except (OSError, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        head, _, body = raw.partition(b"\r\n\r\n")
        if b" 200 " not in head.split(b"\r\n", 1)[0]:
            return None
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    async def _handle_skill(
        self, request: _Request, tenant: str | None = None
    ) -> tuple[int, Any]:
        name = self.registry.default if tenant is None else tenant
        admission = self._admission_for(name)
        ticket = admission.admit("skill")
        if ticket is None:
            raise _HttpError(429, "queue full; retry with backoff")
        try:
            if admission.expired(ticket):
                admission.shed_deadline()
                raise _HttpError(503, "deadline exceeded for skill")
            bundle = self._bundle(tenant)
            user = self._resolve_user(bundle, _single_param(request, "user"))
            time = _as_number(_single_param(request, "time"), "time")
            level = bundle.model.skill_at(user, time)
            return 200, {
                "user": user,
                "time": time,
                "level": level,
                "model_version": bundle.version,
            }
        finally:
            admission.release(ticket)

    async def _handle_predict(
        self, request: _Request, tenant: str | None = None
    ) -> tuple[int, Any]:
        name = self.registry.default if tenant is None else tenant
        payload = self._validate_predict(_json_body(request), self._bundle(tenant))
        result = await self._admit_and_submit(name, "predict", payload)
        return 200, result

    async def _handle_difficulty(
        self, request: _Request, tenant: str | None = None
    ) -> tuple[int, Any]:
        name = self.registry.default if tenant is None else tenant
        payload = self._validate_difficulty(_json_body(request))
        result = await self._admit_and_submit(name, "difficulty", payload)
        return 200, result

    async def _handle_recommend(
        self, request: _Request, tenant: str | None = None
    ) -> tuple[int, Any]:
        name = self.registry.default if tenant is None else tenant
        # Explicit counter (on top of the dispatcher's auto
        # serve.requests.recommend) so dashboards and the CI gate can key
        # on the serve.recommend.* namespace alongside index_builds etc.
        get_registry().counter("serve.recommend.requests").inc()
        tracer = get_tracer()
        if tracer.sampled():
            # User→level resolution (and anchor validation) is the one
            # per-request model lookup on this path; record it under the
            # request's root span so slow resolves surface in traces.
            res_ts, res_start = tracer.wall(), tracer.clock()
            payload = self._validate_recommend(_json_body(request), self._bundle(tenant))
            tracer.record(
                "serve.recommend.resolve",
                ts=res_ts,
                duration=tracer.clock() - res_start,
            )
        else:
            payload = self._validate_recommend(_json_body(request), self._bundle(tenant))
        result = await self._admit_and_submit(name, "recommend", payload)
        return 200, result

    async def _handle_ingest(
        self, request: _Request, tenant: str | None = None
    ) -> tuple[int, Any]:
        if self.wal is None:
            raise _HttpError(
                503, "ingest is not configured; start the server with --ingest-wal"
            )
        events = self._validate_ingest(_json_body(request))
        trace_id = get_tracer().current_trace_id()
        if trace_id is not None:
            # Journal the request's trace id with each event: the WAL
            # payload is an open JSON object and fold-in ignores unknown
            # keys, so the id rides along to the cycle that applies the
            # event — the ingest→swap half of the end-to-end trace.
            for event in events:
                event["_trace"] = trace_id
        result = await self._admit_and_submit(
            self.registry.default, "ingest", events
        )
        first_seq, last_seq = result
        payload: dict[str, Any] = {
            "accepted": len(events),
            "first_seq": first_seq,
            "last_seq": last_seq,
            "durable": True,  # the 200 is only written after the batch fsync
        }
        if trace_id is not None:
            payload["trace"] = trace_id
        return 200, payload

    # ----------------------------------------------------------- validation

    def _resolve_user(self, bundle: ServingModel, user: Any) -> Any:
        """Map a request's user id onto a trained user (404 when unknown).

        Query-string ids arrive as strings; integer training ids are
        recovered by one int-coercion attempt, mirroring the JSONL id rule.
        """
        assignments = bundle.model.assignments
        if user in assignments:
            return user
        if isinstance(user, str):
            try:
                coerced = int(user)
            except ValueError:
                coerced = None
            if coerced is not None and coerced in assignments:
                return coerced
        raise _HttpError(404, f"user {user!r} was not in the training data")

    def _validate_predict(self, data: Any, bundle: ServingModel) -> dict[str, Any]:
        if not isinstance(data, dict):
            raise _HttpError(400, "request body must be a JSON object")
        if "user" not in data:
            raise _HttpError(400, "missing required field 'user'")
        user = self._resolve_user(bundle, data["user"])
        time = _as_number(data.get("time"), "time")
        k = data.get("k", self.config.default_top_k)
        if not isinstance(k, int) or isinstance(k, bool) or k < 0:
            raise _HttpError(400, "'k' must be a non-negative integer")
        item = data.get("item")
        if item is not None:
            if ID_FEATURE not in bundle.model.feature_set.names:
                raise _HttpError(
                    400, "model was trained without the item-id feature; "
                    "omit 'item' or serve an id-featured model"
                )
            if item not in bundle.model.encoded.index_of:
                raise _HttpError(404, f"item {item!r} not in the model's catalog")
        return {"user": user, "time": time, "item": item, "k": k}

    def _validate_difficulty(self, data: Any) -> dict[str, Any]:
        if not isinstance(data, dict):
            raise _HttpError(400, "request body must be a JSON object")
        items = data.get("items")
        if not isinstance(items, list) or not items:
            raise _HttpError(400, "'items' must be a non-empty list of item ids")
        prior = data.get("prior", PRIOR_EMPIRICAL)
        if prior not in _PRIORS:
            raise _HttpError(
                400, f"'prior' must be one of {list(_PRIORS)}, got {prior!r}"
            )
        return {"items": items, "prior": prior}

    def _validate_recommend(self, data: Any, bundle: ServingModel) -> dict[str, Any]:
        """Validate a /recommend body into a flush-ready payload.

        The user→level resolution happens *here*, in the handler
        coroutine, so the batch kernel is pure array work over
        already-resolved levels (:class:`~repro.recsys.upskill.RecommendQuery`)
        — the same shape the vectorized offline batch path takes.
        """
        if not isinstance(data, dict):
            raise _HttpError(400, "request body must be a JSON object")
        mode = data.get("mode", "upskill")
        if mode not in ("upskill", "similar_harder"):
            raise _HttpError(
                400, f"'mode' must be 'upskill' or 'similar_harder', got {mode!r}"
            )
        k = data.get("k", self.config.default_top_k or 10)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise _HttpError(400, "'k' must be a positive integer")
        payload: dict[str, Any] = {"mode": mode, "k": k}
        if mode == "similar_harder":
            item = data.get("item")
            if item is None:
                raise _HttpError(
                    400, "similar_harder needs 'item' (the anchor to grow from)"
                )
            if item not in bundle.model.encoded.index_of:
                raise _HttpError(404, f"item {item!r} not in the model's catalog")
            margin = data.get("margin", 0.0)
            if isinstance(margin, bool) or not isinstance(margin, (int, float)):
                raise _HttpError(400, "'margin' must be a number")
            payload["item"] = item
            payload["margin"] = float(margin)
            return payload
        if "user" not in data:
            raise _HttpError(400, "missing required field 'user'")
        user = self._resolve_user(bundle, data["user"])
        time = data.get("time")
        if time is not None:
            time = _as_number(time, "time")
        try:
            level = (
                bundle.model.skill_at(user, time)
                if time is not None
                else int(bundle.model.skill_trajectory(user)[-1])
            )
        except ReproError as exc:
            raise _HttpError(404, str(exc)) from None
        exclude = data.get("exclude", [])
        if not isinstance(exclude, list):
            raise _HttpError(400, "'exclude' must be a list of item ids")
        try:
            exclude_set = frozenset(exclude)
        except TypeError:
            raise _HttpError(400, "'exclude' entries must be item ids") from None
        payload.update(
            {"user": user, "time": time, "level": level, "exclude": exclude_set}
        )
        return payload

    def _validate_ingest(self, data: Any) -> list[dict[str, Any]]:
        """Validate an ingest request body into journal-ready event dicts.

        Users may be new (fold-in supports them); items must exist in the
        *current* model's catalog — a new item needs a full retrain, so
        rejecting it here keeps poison events out of the WAL entirely.
        """
        if not isinstance(data, dict):
            raise _HttpError(400, "request body must be a JSON object")
        events = data.get("events")
        if not isinstance(events, list) or not events:
            raise _HttpError(400, "'events' must be a non-empty list of event objects")
        bundle = self.state.current
        known_items = bundle.model.encoded.index_of
        validated: list[dict[str, Any]] = []
        for position, event in enumerate(events):
            if not isinstance(event, dict):
                raise _HttpError(400, f"events[{position}] is not a JSON object")
            for key in ("user", "item", "time"):
                if key not in event:
                    raise _HttpError(
                        400, f"events[{position}] missing required field {key!r}"
                    )
            time_value = event["time"]
            if isinstance(time_value, bool) or not isinstance(time_value, (int, float)):
                raise _HttpError(400, f"events[{position}]['time'] must be a number")
            if event["item"] not in known_items:
                raise _HttpError(
                    404,
                    f"events[{position}]: item {event['item']!r} not in the "
                    "model's catalog; new items require a full retrain",
                )
            record: dict[str, Any] = {
                "user": event["user"],
                "item": event["item"],
                "time": float(time_value),
            }
            rating = event.get("rating")
            if rating is not None:
                if isinstance(rating, bool) or not isinstance(rating, (int, float)):
                    raise _HttpError(
                        400, f"events[{position}]['rating'] must be a number or null"
                    )
                record["rating"] = float(rating)
            validated.append(record)
        return validated

    # -------------------------------------------------------- batched kernels

    def _predict_batch(self, tenant: str, payloads: list[dict[str, Any]]) -> list[Any]:
        """One flush of /predict requests against one model snapshot.

        The per-request answers are bit-identical to singleton dispatch:
        ``predict_items`` ranks each action from its own level's sorted
        probability vector, independent of which other actions share the
        batch, and the top-k list per (level, k) is the same
        ``top_items`` call either way (cached per flush, not recomputed
        per request).  Each flush gathers from exactly one tenant's
        bundle — batches never mix tenants (see TenantBatchers).
        """
        bundle = self.registry.get(tenant)
        model = bundle.model
        results: list[Any] = [None] * len(payloads)
        held: list[HeldOutAction] = []
        held_slots: list[int] = []
        top_cache: dict[tuple[int, int], list[dict[str, Any]]] = {}
        for slot, payload in enumerate(payloads):
            try:
                level = model.skill_at(payload["user"], payload["time"])
            except ReproError as exc:
                results[slot] = _RequestError(404, str(exc))
                continue
            body: dict[str, Any] = {
                "user": payload["user"],
                "time": payload["time"],
                "level": level,
                "model_version": bundle.version,
            }
            k = payload["k"]
            if k:
                key = (level, k)
                if key not in top_cache:
                    top_cache[key] = [
                        {"item": item, "probability": probability}
                        for item, probability in model.top_items(level, k)
                    ]
                body["top"] = top_cache[key]
            results[slot] = body
            if payload["item"] is not None:
                held.append(
                    HeldOutAction(
                        action=Action(
                            time=payload["time"],
                            user=payload["user"],
                            item=payload["item"],
                        ),
                        position=0,
                        sequence_length=1,
                    )
                )
                held_slots.append(slot)
        if held:
            try:
                ranks = predict_items(model, held).ranks
            except ReproError:
                # A request invalidated by a model swap between validation
                # and flush must not poison its batch-mates: rank each
                # held-out action alone (identical arithmetic) and fail
                # only the offending slots.
                for slot, one in zip(held_slots, held):
                    try:
                        self._attach_rank(
                            results[slot], one.action.item,
                            float(predict_items(model, [one]).ranks[0]),
                        )
                    except ReproError as exc:
                        results[slot] = _RequestError(404, str(exc))
            else:
                for slot, one, rank in zip(held_slots, held, ranks):
                    self._attach_rank(results[slot], one.action.item, float(rank))
        return results

    @staticmethod
    def _attach_rank(body: dict[str, Any], item: Any, rank: float) -> None:
        body["item"] = item
        body["rank"] = rank
        body["reciprocal_rank"] = 1.0 / rank

    def _difficulty_batch(
        self, tenant: str, payloads: list[dict[str, Any]]
    ) -> list[Any]:
        """One flush of /difficulty requests: a single gather per prior.

        ``difficulty_array`` over the concatenation of the flush's item
        lists returns exactly the per-request gathers, so splitting the
        result by request offsets is bit-identical to singleton dispatch.
        """
        bundle = self.registry.get(tenant)
        results: list[Any] = [None] * len(payloads)
        by_prior: dict[str, list[int]] = {}
        for slot, payload in enumerate(payloads):
            by_prior.setdefault(payload["prior"], []).append(slot)
        for prior, slots in by_prior.items():
            estimates = bundle.difficulties[prior]
            flat_ids = [
                item for slot in slots for item in payloads[slot]["items"]
            ]
            try:
                values = difficulty_array(estimates, flat_ids)
            except ReproError:
                # Unknown item somewhere in the flush: gather per request
                # so only the offending requests fail.
                for slot in slots:
                    try:
                        per_request = difficulty_array(
                            estimates, payloads[slot]["items"]
                        )
                    except ReproError as exc:
                        results[slot] = _RequestError(404, str(exc))
                    else:
                        results[slot] = self._difficulty_body(
                            bundle, prior, payloads[slot]["items"], per_request
                        )
                continue
            offset = 0
            for slot in slots:
                items = payloads[slot]["items"]
                results[slot] = self._difficulty_body(
                    bundle, prior, items, values[offset : offset + len(items)]
                )
                offset += len(items)
        return results

    def _recommend_batch(
        self, tenant: str, payloads: list[dict[str, Any]]
    ) -> list[Any]:
        """One flush of /recommend requests against one model snapshot.

        Upskill queries go through the recommender's vectorized
        ``recommend_batch``: the level-dependent score vectors are
        computed once per distinct level in the flush, but each answer is
        exactly what its singleton ``recommend_for_level`` call returns —
        batch composition never changes a response byte.
        ``similar_harder`` queries are pure gathers from the precomputed
        similarity index (shared zero-copy across prefork workers), so
        they are trivially batch-independent too.
        """
        bundle = self.registry.get(tenant)
        recommender = bundle.recommender(self._recommend_config)
        registry = get_registry()
        results: list[Any] = [None] * len(payloads)
        upskill_slots: list[int] = []
        queries: list[RecommendQuery] = []
        for slot, payload in enumerate(payloads):
            if payload["mode"] == "similar_harder":
                try:
                    similars = similar_harder(
                        bundle.similarity_index(),
                        recommender.difficulty_vector,
                        payload["item"],
                        k=payload["k"],
                        margin=payload["margin"],
                    )
                except ReproError as exc:
                    results[slot] = _RequestError(404, str(exc))
                    continue
                results[slot] = {
                    "mode": "similar_harder",
                    "item": payload["item"],
                    "margin": payload["margin"],
                    "recommendations": [
                        {
                            "item": one.item,
                            "similarity": one.similarity,
                            "difficulty": one.difficulty,
                        }
                        for one in similars
                    ],
                    "model_version": bundle.version,
                }
                registry.histogram("serve.recommend.returned").observe(
                    float(len(similars))
                )
            else:
                upskill_slots.append(slot)
                queries.append(
                    RecommendQuery(
                        level=payload["level"],
                        k=payload["k"],
                        exclude=payload["exclude"],
                    )
                )
        if queries:
            try:
                answers = recommender.recommend_batch(queries)
            except ReproError:
                # A level invalidated by a hot-swap between validation and
                # flush must not poison its batch-mates: answer each query
                # alone (identical arithmetic) and fail only the bad slots.
                answers = []
                for query in queries:
                    try:
                        answers.append(
                            recommender.recommend_for_level(
                                query.level, k=query.k, exclude=query.exclude
                            )
                        )
                    except ReproError as exc:
                        answers.append(_RequestError(404, str(exc)))
            for slot, answer in zip(upskill_slots, answers):
                if isinstance(answer, _RequestError):
                    results[slot] = answer
                    continue
                payload = payloads[slot]
                results[slot] = {
                    "mode": "upskill",
                    "user": payload["user"],
                    "time": payload["time"],
                    "level": payload["level"],
                    "recommendations": [
                        {
                            "item": rec.item,
                            "score": rec.score,
                            "difficulty": rec.difficulty,
                            "challenge_fit": rec.challenge_fit,
                            "interest": rec.interest,
                        }
                        for rec in answer
                    ],
                    "model_version": bundle.version,
                }
                registry.histogram("serve.recommend.returned").observe(
                    float(len(answer))
                )
        return results

    async def _ingest_batch(self, payloads: list[list[dict[str, Any]]]) -> list[Any]:
        """One flush of /ingest requests: one WAL append, one fsync.

        Every request in the flush is journaled by a single
        :meth:`~repro.serve.ingest.WriteAheadLog.append` call, so the
        durability cost is per *flush*, not per request.  The append runs
        in a worker thread (``asyncio.to_thread``): its fsync can take
        tens of milliseconds on a busy disk, and blocking the event loop
        for that long would stall /predict, /healthz, and the reload
        watcher — exactly the latency the micro-batching SLOs exist to
        protect.  The batcher serializes flushes, so WAL batch ordering
        is unchanged.  A failed append fails every request in the flush —
        none of their events were acknowledged, which is exactly what the
        WAL's failed-append rollback assumes.
        """
        assert self.wal is not None
        flat: list[dict[str, Any]] = [
            event for events in payloads for event in events
        ]
        first_seq, _last_seq = await asyncio.to_thread(self.wal.append, flat)
        results: list[Any] = []
        offset = first_seq
        for events in payloads:
            results.append((offset, offset + len(events) - 1))
            offset += len(events)
        return results

    @staticmethod
    def _difficulty_body(
        bundle: ServingModel, prior: str, items: list[Any], values
    ) -> dict[str, Any]:
        return {
            "prior": prior,
            "items": items,
            "difficulties": [float(value) for value in values],
            "model_version": bundle.version,
        }


# ---------------------------------------------------------------- threading


class ServerThread:
    """Run a :class:`SkillServer` on a private event loop in a daemon thread.

    For in-process embedding: tests and ``tools/bench_serve.py`` start a
    real socket server without blocking the caller.  ``start()`` returns
    the bound ``(host, port)``; ``stop()`` shuts the loop down cleanly.
    """

    def __init__(self, server: SkillServer) -> None:
        self.server = server
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started: queue.Queue = queue.Queue(maxsize=1)

    def start(self) -> tuple[str, int]:
        if self._thread is not None:
            raise ConfigurationError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        outcome = self._started.get()
        if isinstance(outcome, BaseException):
            self._thread.join()
            self._thread = None
            raise outcome
        return outcome

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        try:
            address = loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surfaced to start() in the caller
            loop.close()
            self._started.put(exc)
            return
        self._loop = loop
        self._started.put(address)
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            loop.close()

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join()
        self._thread = None
        self._loop = None


# ---------------------------------------------------------------- helpers


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Merge per-worker ``/metrics`` snapshots into one deployment view.

    Counters and gauges sum (queue depths, request totals, RSS: the
    deployment-wide figures); histograms sum ``count``/``total`` exactly
    and recompute the mean, while the quantile fields take the per-worker
    max — the deployment's p95 is not derivable from per-worker p95s, so
    the merge reports the most pessimistic worker, which is the honest
    bound for alerting.  Exemplars are per-worker samples and don't
    survive the merge.  Schema/run/telemetry come from the first (local)
    snapshot, so the merged payload still validates as
    ``repro-metrics/1``.
    """
    if not snapshots:
        return {}
    merged: dict[str, Any] = {
        key: value
        for key, value in snapshots[0].items()
        if key not in ("counters", "gauges", "histograms")
    }
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for snapshot in snapshots:
        for name, value in (snapshot.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (snapshot.get("gauges") or {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, summary in (snapshot.get("histograms") or {}).items():
            if not isinstance(summary, dict):
                continue
            into = histograms.get(name)
            if into is None:
                histograms[name] = {
                    key: value
                    for key, value in summary.items()
                    if isinstance(value, (int, float))
                }
                continue
            for key, value in summary.items():
                if not isinstance(value, (int, float)):
                    continue
                if key in ("count", "total"):
                    into[key] = into.get(key, 0) + value
                elif key in ("min",):
                    into[key] = min(into.get(key, value), value)
                else:
                    into[key] = max(into.get(key, value), value)
    for summary in histograms.values():
        if summary.get("count"):
            summary["mean"] = summary.get("total", 0.0) / summary["count"]
    merged["counters"] = counters
    merged["gauges"] = gauges
    merged["histograms"] = histograms
    return merged


def _json_body(request: _Request) -> Any:
    if not request.body:
        raise _HttpError(400, "request body is required")
    try:
        return json.loads(request.body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _HttpError(400, f"malformed JSON body ({exc})") from None


def _single_param(request: _Request, name: str) -> str:
    values = request.params.get(name)
    if not values:
        raise _HttpError(400, f"missing required query parameter {name!r}")
    return values[0]


def _as_number(value: Any, name: str) -> float:
    if isinstance(value, bool) or value is None:
        raise _HttpError(400, f"'{name}' must be a number")
    try:
        return float(value)
    except (TypeError, ValueError):
        raise _HttpError(400, f"'{name}' must be a number") from None
