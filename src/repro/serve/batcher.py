"""Request coalescing: micro-batching for the serving hot paths.

The serving kernels (`predict_items`, `difficulty_array`, and the
recommender's `recommend_batch`) are vectorized — their cost is dominated
by per-call work that is shared across requests (one sort of the level's
probability vector ranks *every* item in the batch; one score evaluation
per distinct level answers every /recommend query at it).  A server
answering each request with its own kernel call throws that sharing
away.  :class:`MicroBatcher` buys it back: requests queue on
an asyncio future, and a flusher drains the queue into one batched call
whenever ``max_batch`` requests have accumulated or ``max_wait_ms`` has
elapsed since the first queued request — whichever comes first.

Batching is a pure throughput/latency concern, never a semantic one: the
batch function receives the payloads in arrival order and must return one
result per payload computed exactly as a singleton call would (the serve
endpoints guarantee this — `tools/bench_serve.py` asserts byte-identical
responses between coalesced and sequential dispatch).

``max_batch=1`` degenerates to sequential per-request dispatch through
the identical code path, which is what the benchmark's baseline mode and
the ``--max-batch 1`` CLI knob use.

Observability: every flush observes its size into the ``serve.batch_size``
histogram and its duration into ``serve.batch_flush_seconds``.  With
tracing enabled, each request's span context is captured at ``submit``
time (contextvars do not follow work to the flusher task), and the flush
emits one ``serve.batch.queue`` span per request — how long it sat
coalescing — plus a ``serve.batch.flush`` span for the batched call
itself, parented into the first queued request's trace and annotated
with every coalesced trace id.
"""

from __future__ import annotations

import asyncio
import inspect
from collections.abc import Callable, Sequence
from typing import Any

from repro.exceptions import ConfigurationError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = ["MicroBatcher", "TenantBatchers"]

_log = get_logger("serve.batcher")


class MicroBatcher:
    """Coalesce awaited ``submit`` calls into batched function calls.

    ``batch_fn(payloads)`` runs on the event-loop thread and must return a
    sequence with one result per payload, in order.  A raising ``batch_fn``
    fails every request of that flush with the same exception.

    ``batch_fn`` may also be a coroutine function: its flush is awaited,
    which lets a batch that does blocking I/O (the ingest WAL's
    append+fsync) offload it with ``asyncio.to_thread`` instead of
    stalling every other endpoint on the loop.  Flushes are serialized
    either way — the flusher task awaits one flush before draining the
    next batch — so an async ``batch_fn`` keeps strict batch ordering,
    which the WAL's sequence numbering relies on.

    The batcher must be started (``await start()``) on the loop that will
    submit to it; ``stop()`` flushes whatever is still queued.
    """

    def __init__(
        self,
        batch_fn: Callable[[list[Any]], Sequence[Any]],
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        name: str = "batch",
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ConfigurationError("max_wait_ms must be >= 0")
        self._batch_fn = batch_fn
        self.max_batch = int(max_batch)
        self.max_wait_seconds = float(max_wait_ms) / 1000.0
        self.name = name
        self.flushes = 0
        # The third slot is Tracer.snapshot()'s (trace, span, wall, mono)
        # tuple (or None when tracing is off).
        self._pending: list[tuple[Any, asyncio.Future, tuple | None]] = []
        self._wake: asyncio.Event | None = None
        self._full: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closed = False

    async def start(self) -> None:
        """Create the flusher task on the running loop."""
        if self._task is not None:
            raise ConfigurationError(f"batcher {self.name!r} already started")
        self._wake = asyncio.Event()
        self._full = asyncio.Event()
        self._task = asyncio.create_task(self._run(), name=f"batcher-{self.name}")

    async def stop(self) -> None:
        """Flush the remaining queue and retire the flusher task."""
        if self._task is None:
            return
        self._closed = True
        assert self._wake is not None
        self._wake.set()
        await self._task
        self._task = None

    async def submit(self, payload: Any) -> Any:
        """Queue ``payload`` and await its result from the next flush."""
        if self._closed or self._task is None:
            raise ConfigurationError(f"batcher {self.name!r} is not running")
        assert self._wake is not None and self._full is not None
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append((payload, future, get_tracer().snapshot()))
        self._wake.set()
        if len(self._pending) >= self.max_batch:
            self._full.set()
        return await future

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    async def _run(self) -> None:
        assert self._wake is not None and self._full is not None
        while True:
            await self._wake.wait()
            if not self._pending:
                if self._closed:
                    return
                self._wake.clear()
                continue
            # Linger for the rest of the coalescing window unless the
            # batch is already full (or we are draining at shutdown).
            if (
                len(self._pending) < self.max_batch
                and self.max_wait_seconds > 0
                and not self._closed
            ):
                try:
                    await asyncio.wait_for(self._full.wait(), self.max_wait_seconds)
                except (TimeoutError, asyncio.TimeoutError):
                    pass
            self._full.clear()
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            if len(self._pending) >= self.max_batch:
                self._full.set()
            if not self._pending and not self._closed:
                self._wake.clear()
            await self._flush(batch)

    async def _flush(self, batch: list[tuple[Any, asyncio.Future, Any]]) -> None:
        registry = get_registry()
        tracer = get_tracer()
        registry.histogram("serve.batch_size").observe(len(batch))
        self.flushes += 1
        payloads = [payload for payload, _future, _ctx in batch]
        contexts = [ctx for _payload, _future, ctx in batch if ctx is not None]
        if contexts:
            # Per-request coalescing delay, reconstructed from the context
            # captured at submit time and parented into each request's own
            # trace.  Attr-free on purpose: the flush span names the
            # batcher, and one attrs dict per queued request is measurable
            # against the serve tracing budget.
            now = tracer.clock()
            for ctx in contexts:
                tracer.record(
                    "serve.batch.queue",
                    trace=ctx[0],
                    parent=ctx[1],
                    ts=ctx[2],
                    duration=max(0.0, now - ctx[3]),
                )
        first_ctx = contexts[0] if contexts else None
        start = registry.clock()
        flush_ts = tracer.wall() if first_ctx is not None else 0.0
        try:
            results = self._batch_fn(payloads)
            if inspect.isawaitable(results):
                results = await results
        except Exception as exc:  # fail the whole flush, not the server
            elapsed = registry.clock() - start
            registry.histogram("serve.batch_flush_seconds").observe(
                elapsed, trace=first_ctx[0] if first_ctx else None
            )
            registry.counter("serve.batch_errors").inc()
            self._record_flush(
                tracer,
                first_ctx,
                contexts,
                flush_ts,
                elapsed,
                len(batch),
                error=type(exc).__name__,
            )
            _log.warning(
                "batch flush failed",
                extra={"obs": {"batcher": self.name, "size": len(batch), "error": str(exc)}},
            )
            for _payload, future, _ctx in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        elapsed = registry.clock() - start
        registry.histogram("serve.batch_flush_seconds").observe(
            elapsed, trace=first_ctx[0] if first_ctx else None
        )
        self._record_flush(tracer, first_ctx, contexts, flush_ts, elapsed, len(batch))
        if len(results) != len(batch):
            mismatch = ConfigurationError(
                f"batch function for {self.name!r} returned {len(results)} "
                f"results for {len(batch)} payloads"
            )
            for _payload, future, _ctx in batch:
                if not future.done():
                    future.set_exception(mismatch)
            return
        for (_payload, future, _ctx), result in zip(batch, results):
            # A future may already be cancelled by a deadline timeout;
            # its requester has been answered with 503 and moved on.
            if not future.done():
                future.set_result(result)

    def _record_flush(
        self,
        tracer,
        first_ctx,
        contexts,
        ts: float,
        elapsed: float,
        size: int,
        *,
        error: str | None = None,
    ) -> None:
        """One flush span, parented into the first queued request's trace.

        The batched call serves many traces at once; the span lives in the
        first requester's trace (so at least one trace shows the full
        critical path) and names every coalesced trace id in its attrs.
        """
        if first_ctx is None:
            return
        attrs: dict[str, Any] = {
            "batcher": self.name,
            "size": size,
            "traces": sorted({ctx[0] for ctx in contexts}),
        }
        if error is not None:
            attrs["error"] = error
        tracer.record(
            "serve.batch.flush",
            trace=first_ctx[0],
            parent=first_ctx[1],
            ts=ts,
            duration=elapsed,
            **attrs,
        )


class TenantBatchers:
    """One :class:`MicroBatcher` per (tenant, endpoint), created lazily.

    Multi-tenant serving must never coalesce requests *across* tenants —
    a batch gathers from exactly one model bundle — so each tenant gets
    its own queue per endpoint.  Batchers spin up on a tenant's first
    request (an idle tenant costs nothing, which matters once the
    registry holds many models) and are all drained by ``stop()``.

    ``factory(tenant, endpoint)`` returns the batch function for that
    pair; batch sizing is shared across tenants.
    """

    def __init__(
        self,
        factory: Callable[[str, str], Callable[[list[Any]], Sequence[Any]]],
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
    ) -> None:
        self._factory = factory
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self._batchers: dict[tuple[str, str], MicroBatcher] = {}
        self._closed = False

    async def get(self, tenant: str, endpoint: str) -> MicroBatcher:
        """The (started) batcher for this tenant/endpoint pair."""
        if self._closed:
            raise ConfigurationError("tenant batchers are stopped")
        key = (tenant, endpoint)
        batcher = self._batchers.get(key)
        if batcher is None:
            batcher = MicroBatcher(
                self._factory(tenant, endpoint),
                max_batch=self.max_batch,
                max_wait_ms=self.max_wait_ms,
                name=f"{endpoint}:{tenant}",
            )
            await batcher.start()
            self._batchers[key] = batcher
        return batcher

    async def stop(self) -> None:
        """Drain and retire every tenant batcher."""
        self._closed = True
        batchers, self._batchers = list(self._batchers.values()), {}
        for batcher in batchers:
            await batcher.stop()
