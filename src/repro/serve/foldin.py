"""Background fold-in: drain the ingest WAL into the serving model.

The other half of the streaming loop started by :mod:`repro.serve.ingest`:
a :class:`FoldinWorker` thread periodically takes the durable events past
its *watermark*, folds them into the model with
:func:`~repro.core.incremental.extend_model` (frozen ``Θ`` — one DP per
touched user), optionally re-solves idle users under the forgetting
lattice (:func:`~repro.core.forgetting.decay_reassign`), and republishes
the artifact pair through the staged
:func:`~repro.core.serialize.save_model` — which the server's
:class:`~repro.serve.state.ModelState` watch task then hot-swaps in
mid-traffic, exactly like any retrained model.

Exactly-once without a transaction log
--------------------------------------

The consumed-offset watermark rides *inside* the artifact JSON
(``save_model(..., extra={"foldin": {...}})``).  The JSON replace is
already the commit point of the two-file model save, so the model and the
watermark describing it become durable in the same atomic rename — there
is no window where one exists without the other.  A crash anywhere
re-runs fold-in from the last published watermark; because
``extend_model`` under frozen ``Θ`` re-assigns each touched user from
their *full* merged sequence, replaying the same events is idempotent and
the final model is a pure function of the final merged log, independent
of how the stream was cut into batches.  That is the bit-identical
restart guarantee ``tests/test_serve_faults.py`` asserts.

Restart needs the folded events themselves, not just the watermark:
``bootstrap()`` reconstructs the merged log the published model
corresponds to.  Pruned WAL segments cannot be its only source, so after
every publish the worker writes a **snapshot** of all *applied* events
(``foldin.snapshot.json`` next to the WAL, atomic tmp+rename), and only
then prunes segments the snapshot covers.  Bootstrap replays snapshot
events first and tops up from the WAL between the snapshot's sequence
and the artifact's watermark — covering the crash window between the
artifact publish and the snapshot write, during which pruning has not
yet advanced.  Segment pruning under the default config is therefore
safe: everything a future bootstrap can need is always readable from
snapshot ∪ WAL.

A side file (``foldin.watermark.json`` next to the WAL) is written after
the snapshot for operators (``repro wal inspect``); it is advisory only —
on restart the artifact's embedded watermark wins.

Degraded mode
-------------

Transient publish/fold failures are retried with capped exponential
backoff; after ``max_retries`` consecutive failures the worker enters a
degraded *serve-stale, keep-journaling* state: the last good model keeps
serving, ``POST /ingest`` keeps journaling durably, ``/healthz`` reports
``"degraded"``, and the worker keeps retrying at the capped interval — so
recovery (disk back, permissions fixed) needs no operator action.

Drift gauges
------------

Each fold scores the recently folded events under the *current* frozen
parameters and publishes the mean log-likelihood per action next to the
training-time baseline (``foldin.ll_per_action_recent`` /
``foldin.ll_per_action_training`` / ``foldin.ll_drift``).  A widening gap
means fold-in's frozen-``Θ`` assumption is going stale and a full retrain
should be scheduled — the signal the paper's offline formulation cannot
provide by itself.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.forgetting import decay_reassign
from repro.core.incremental import extend_model, merge_actions
from repro.core.model import ScoreTableCache, SkillModel
from repro.core.serialize import artifact_metadata, load_model, save_model
from repro.data.actions import Action, ActionLog
from repro.exceptions import ConfigurationError, DataError, ReproError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.serve.ingest import WriteAheadLog

__all__ = ["FoldinConfig", "FoldinWorker", "SNAPSHOT_FILENAME", "WATERMARK_FILENAME"]

_log = get_logger("serve.foldin")

WATERMARK_FILENAME = "foldin.watermark.json"
SNAPSHOT_FILENAME = "foldin.snapshot.json"

#: Upper bound on originating-event trace ids carried per fold — in the
#: cycle's span attrs and the published artifact's foldin metadata.  A
#: pointer set, not a data store; large folds keep the earliest ids.
_FOLD_TRACE_CAP = 256


def _event_traces(entries: list[dict[str, Any]]) -> list[str]:
    """Unique ``_trace`` ids journaled with the drained events, in seq order."""
    traces: list[str] = []
    seen: set[str] = set()
    for entry in entries:
        event = entry.get("event")
        trace = event.get("_trace") if isinstance(event, dict) else None
        if isinstance(trace, str) and trace and trace not in seen:
            seen.add(trace)
            traces.append(trace)
            if len(traces) >= _FOLD_TRACE_CAP:
                break
    return traces


@dataclass(frozen=True)
class FoldinConfig:
    """Tuning for the fold-in worker.

    Decay is off by default; setting both ``decay_half_life`` and
    ``decay_stale_after`` re-solves users idle for more than
    ``decay_stale_after`` time units (relative to the newest action in the
    log) under the forgetting lattice on every fold.
    """

    interval_seconds: float = 5.0
    max_events_per_fold: int = 1024
    retry_base_seconds: float = 0.5
    retry_cap_seconds: float = 30.0
    max_retries: int = 5
    drift_window: int = 256
    prune_segments: bool = True
    decay_half_life: float | None = None
    decay_stale_after: float | None = None
    decay_down_floor: float = 1e-6

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ConfigurationError("interval_seconds must be positive")
        if self.max_events_per_fold < 1:
            raise ConfigurationError("max_events_per_fold must be >= 1")
        if self.retry_base_seconds <= 0 or self.retry_cap_seconds <= 0:
            raise ConfigurationError("retry backoff seconds must be positive")
        if self.max_retries < 1:
            raise ConfigurationError("max_retries must be >= 1")
        if self.drift_window < 1:
            raise ConfigurationError("drift_window must be >= 1")
        if (self.decay_half_life is None) != (self.decay_stale_after is None):
            raise ConfigurationError(
                "decay_half_life and decay_stale_after must be set together"
            )


def _atomic_json_write(path: Path, payload: dict[str, Any]) -> None:
    tmp = path.with_name(path.name + ".tmp")
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _write_watermark(path: Path, payload: dict[str, Any]) -> None:
    """Write the advisory side-file watermark (tmp + atomic rename).

    A module function so fault injection can crash the process *between*
    the artifact publish (the real commit) and this write — the gap the
    chaos tests prove is benign.
    """
    _atomic_json_write(path, payload)


def _write_snapshot(path: Path, payload: dict[str, Any]) -> None:
    """Write the applied-events snapshot (tmp + atomic rename).

    A module function so fault injection can crash the process between
    the artifact publish and this write; the WAL still holds everything
    past the *previous* snapshot (pruning never outruns the snapshot), so
    bootstrap replays the gap from the WAL and the crash is benign.
    """
    _atomic_json_write(path, payload)


def _read_snapshot(wal_directory: str | Path) -> tuple[int, list[dict[str, Any]]]:
    """Load ``(snapshot_seq, applied entries)``; absent snapshot is (0, []).

    Entries are ``{"seq": int, "event": {...}}`` in sequence order.  A
    snapshot that exists but does not parse is real corruption (the write
    is atomic, so a crash cannot tear it): raise a typed error rather
    than silently rebuilding a wrong merged log from a pruned WAL.
    """
    path = Path(wal_directory) / SNAPSHOT_FILENAME
    if not path.exists():
        return 0, []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise DataError(f"{path}: unreadable fold-in snapshot ({exc})") from exc
    if (
        not isinstance(payload, dict)
        or not isinstance(payload.get("watermark_seq"), int)
        or not isinstance(payload.get("events"), list)
    ):
        raise DataError(f"{path}: malformed fold-in snapshot")
    entries: list[dict[str, Any]] = []
    for entry in payload["events"]:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("seq"), int)
            or not isinstance(entry.get("event"), dict)
        ):
            raise DataError(f"{path}: malformed fold-in snapshot entry")
        entries.append(entry)
    return payload["watermark_seq"], entries


def _event_to_action(event: Any) -> Action:
    """Decode one WAL event payload into an :class:`Action` (or raise
    :class:`~repro.exceptions.DataError` for a malformed one)."""
    if not isinstance(event, dict):
        raise DataError("ingest event must be a JSON object")
    for key in ("user", "item", "time"):
        if key not in event:
            raise DataError(f"ingest event missing required field {key!r}")
    time_value = event["time"]
    if isinstance(time_value, bool) or not isinstance(time_value, (int, float)):
        raise DataError("ingest event 'time' must be a number")
    rating = event.get("rating")
    if rating is not None and (
        isinstance(rating, bool) or not isinstance(rating, (int, float))
    ):
        raise DataError("ingest event 'rating' must be a number or null")
    return Action(
        time=float(time_value),
        user=event["user"],
        item=event["item"],
        rating=float(rating) if rating is not None else None,
    )


def read_watermark(prefix: str | Path, wal_directory: str | Path) -> int:
    """The sequence number up to which events are already in the artifact.

    Authority order: the artifact's embedded ``extra["foldin"]`` record
    (atomic with the model it describes) wins; the advisory side file is
    the fallback for artifacts that predate it; an absent watermark means
    nothing has been folded (0).
    """
    try:
        extra = artifact_metadata(prefix).get("extra")
    except ReproError:
        extra = None
    if isinstance(extra, dict):
        foldin = extra.get("foldin")
        if isinstance(foldin, dict) and isinstance(foldin.get("watermark_seq"), int):
            return foldin["watermark_seq"]
    side = Path(wal_directory) / WATERMARK_FILENAME
    if side.exists():
        try:
            payload = json.loads(side.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return 0
        if isinstance(payload, dict) and isinstance(payload.get("watermark_seq"), int):
            return payload["watermark_seq"]
    return 0


class FoldinWorker:
    """Drains durable WAL events into the published model artifact.

    ``bootstrap()`` (called lazily by the first :meth:`run_once`, or
    explicitly) loads the artifact, reads the watermark, and replays every
    already-folded WAL event into the in-memory log so model and log agree.
    :meth:`run_once` performs one drain → fold → decay → publish cycle and
    *raises* on failure — the chaos tests drive it directly so injected
    crashes surface.  :meth:`attempt` wraps it with the retry/degraded
    accounting, and the background thread (:meth:`start`) calls
    :meth:`attempt` on the configured interval.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        prefix: str | Path,
        base_log: ActionLog,
        *,
        config: FoldinConfig | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.wal = wal
        self.prefix = Path(prefix)
        self.base_log = base_log
        self.config = config if config is not None else FoldinConfig()
        self.clock = clock
        self._model: SkillModel | None = None
        self._log: ActionLog | None = None
        self._table_cache = ScoreTableCache()
        self._watermark = 0
        #: Every event actually folded (``{"seq", "event"}`` in order) —
        #: the snapshot body that keeps pruned WAL segments replayable.
        self._applied: list[dict[str, Any]] = []
        self._folds = 0
        self._events_applied = 0
        self._events_dropped = 0
        self._failures = 0
        self._retry_at = 0.0
        self._degraded = False
        self._last_error: str | None = None
        self._training_ll_per_action: float | None = None
        self._recent_lls: deque[float] = deque(maxlen=self.config.drift_window)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------ bootstrap

    @property
    def watermark(self) -> int:
        with self._lock:
            return self._watermark

    def _decode_foldable(self, model: SkillModel, seq: int, event: Any) -> Action | None:
        """Decode one journaled event, dropping what cannot be folded.

        Malformed events and events for items outside the model's catalog
        are *dropped* (counted, logged) rather than retried forever — a
        poison event must not wedge the whole stream into degraded mode.
        The same rule runs during bootstrap replay, so the reconstructed
        log matches what the live worker actually applied.
        """
        try:
            action = _event_to_action(event)
            if action.item not in model.encoded.index_of:
                raise DataError(f"item {action.item!r} is not in the model's catalog")
        except DataError as exc:
            with self._lock:
                self._events_dropped += 1
            get_registry().counter("foldin.events_dropped").inc()
            _log.warning(
                "dropping unfoldable ingest event",
                extra={"obs": {"seq": seq, "error": str(exc)}},
            )
            return None
        return action

    def bootstrap(self) -> None:
        """Load the artifact and replay already-folded events into the log.

        Events with ``seq <= watermark`` are part of the published model's
        assignments; merging them into the base log reconstructs the
        merged log that model corresponds to, so the next fold extends
        from a consistent (model, log) pair.  The snapshot is the primary
        source (it survives segment pruning and holds exactly the events
        that were *applied*); the WAL covers the tail between the
        snapshot's sequence and the artifact's watermark — the window a
        crash between publish and snapshot write leaves open.
        """
        model = load_model(self.prefix)
        watermark = read_watermark(self.prefix, self.wal.directory)
        _snapshot_seq, entries = _read_snapshot(self.wal.directory)
        applied = [entry for entry in entries if entry["seq"] <= watermark]
        replay_after = applied[-1]["seq"] if applied else 0
        for record in self.wal.read(after_seq=replay_after, upto_seq=watermark):
            if self._decode_foldable(model, record.seq, record.event) is not None:
                applied.append({"seq": record.seq, "event": record.event})
        folded = [_event_to_action(entry["event"]) for entry in applied]
        log = merge_actions(self.base_log, folded) if folded else self.base_log
        trace_lls = model.trace.log_likelihoods
        registry = get_registry()
        with self._lock:
            if trace_lls and self.base_log.num_actions:
                # Baseline drift anchor: training LL per action at convergence.
                self._training_ll_per_action = (
                    trace_lls[-1] / self.base_log.num_actions
                )
            self._model = model
            self._log = log
            self._watermark = watermark
            self._applied = applied
        if self._training_ll_per_action is not None:
            registry.gauge("foldin.ll_per_action_training").set(
                self._training_ll_per_action
            )
        registry.gauge("foldin.watermark_seq").set(watermark)
        _log.info(
            "fold-in worker bootstrapped",
            extra={
                "obs": {
                    "prefix": str(self.prefix),
                    "watermark_seq": watermark,
                    "replayed_events": len(folded),
                    "snapshot_events": len(entries),
                    "wal_last_seq": self.wal.last_seq,
                }
            },
        )

    # ----------------------------------------------------------- one cycle

    def pending(self) -> int:
        """Durable events not yet folded into the published artifact."""
        with self._lock:
            watermark = self._watermark
        return max(0, self.wal.durable_seq - watermark)

    def _drain(self) -> tuple[list[Action], list[dict[str, Any]], int]:
        """Decode the next batch of durable events past the watermark.

        Returns the decoded actions, their ``{"seq", "event"}`` snapshot
        entries, and the new watermark.  Unfoldable events are dropped by
        :meth:`_decode_foldable`, never retried forever.
        """
        assert self._model is not None
        upto = min(
            self.wal.durable_seq, self._watermark + self.config.max_events_per_fold
        )
        if upto <= self._watermark:
            return [], [], self._watermark
        actions: list[Action] = []
        entries: list[dict[str, Any]] = []
        for record in self.wal.read(after_seq=self._watermark, upto_seq=upto):
            action = self._decode_foldable(self._model, record.seq, record.event)
            if action is None:
                continue
            actions.append(action)
            entries.append({"seq": record.seq, "event": record.event})
        return actions, entries, upto

    def _stale_users(self, log: ActionLog) -> set:
        """Users idle longer than ``decay_stale_after`` — measured against
        the newest action in the log, so the set is a pure function of the
        log (replay-deterministic), not of wall clock."""
        assert self.config.decay_stale_after is not None
        latest = -np.inf
        last_times: dict = {}
        for seq in log:
            last = float(seq.times[-1]) if len(seq.actions) else -np.inf
            last_times[seq.user] = last
            latest = max(latest, last)
        return {
            user
            for user, last in last_times.items()
            if latest - last > self.config.decay_stale_after
        }

    def _observe_drift(self, model: SkillModel, actions: list[Action]) -> None:
        """Score the folded actions under the current frozen parameters."""
        if not actions:
            return
        table = model.parameters.item_score_table(model.encoded, cache=self._table_cache)
        for action in actions:
            level = model.skill_at(action.user, action.time)
            row = model.encoded.index_of[action.item]
            self._recent_lls.append(float(table[level - 1, row]))
        registry = get_registry()
        recent = float(np.mean(self._recent_lls))
        registry.gauge("foldin.ll_per_action_recent").set(recent)
        if self._training_ll_per_action is not None:
            registry.gauge("foldin.ll_drift").set(
                recent - self._training_ll_per_action
            )

    def run_once(self) -> int:
        """One drain → fold → decay → publish cycle; returns events applied.

        Raises on any failure (the caller decides between retry accounting
        — :meth:`attempt` — and test-visible propagation).  No pending
        durable events is a cheap no-op.
        """
        if self._model is None:
            self.bootstrap()
        assert self._model is not None and self._log is not None
        registry = get_registry()
        tracer = get_tracer()
        drain_ts = tracer.wall() if tracer.enabled else 0.0
        drain_start = registry.clock()
        actions, entries, upto = self._drain()
        drain_elapsed = registry.clock() - drain_start
        if upto <= self._watermark:
            return 0
        # The trace ids the drained events journaled at /ingest time: the
        # cycle's spans and the published artifact both carry them, linking
        # this fold back to the requests whose events it applies.
        traces = _event_traces(entries)
        foldin_extra: dict[str, Any] = {
            "watermark_seq": upto,
            "folds": self._folds + 1,
            "events_applied": self._events_applied + len(actions),
        }
        if traces:
            foldin_extra["traces"] = traces
        with tracer.span(
            "foldin.cycle", events=len(actions), watermark_seq=upto, traces=traces
        ):
            tracer.record("foldin.drain", ts=drain_ts, duration=drain_elapsed)
            start = registry.clock()
            with tracer.span("foldin.extend", events=len(actions)):
                model, log = extend_model(
                    self._model, self._log, actions, table_cache=self._table_cache
                )
            if self.config.decay_half_life is not None:
                with tracer.span("foldin.decay") as decay_span:
                    stale = self._stale_users(log)
                    decayed = decay_reassign(
                        model,
                        log,
                        stale,
                        half_life=self.config.decay_half_life,
                        down_floor=self.config.decay_down_floor,
                        table_cache=self._table_cache,
                    )
                    decay_span.set(stale_users=len(stale))
                registry.gauge("foldin.decay_users").set(len(stale))
                model = decayed
            self._observe_drift(model, actions)
            with tracer.span("foldin.publish", watermark_seq=upto):
                save_model(model, self.prefix, extra={"foldin": foldin_extra})
            # The artifact replace above was the commit point; everything
            # from here on is advisory and safe to lose in a crash.  The
            # lock keeps /healthz reads consistent with the worker's
            # updates.
            with self._lock:
                self._model = model
                self._log = log
                self._watermark = upto
                self._folds += 1
                self._events_applied += len(actions)
                self._applied.extend(entries)
                applied_entries = list(self._applied)
            elapsed = registry.clock() - start
            registry.counter("foldin.folds").inc()
            registry.counter("foldin.events_applied").inc(len(actions))
            registry.histogram("foldin.fold_seconds").observe(elapsed)
            registry.gauge("foldin.watermark_seq").set(upto)
            # Snapshot before prune: segments may only be deleted once
            # every applied event they held is replayable from the
            # snapshot, or a restart could not reconstruct the merged log.
            with tracer.span("foldin.snapshot"):
                _write_snapshot(
                    Path(self.wal.directory) / SNAPSHOT_FILENAME,
                    {
                        "watermark_seq": upto,
                        "prefix": str(self.prefix),
                        "events": applied_entries,
                    },
                )
                _write_watermark(
                    Path(self.wal.directory) / WATERMARK_FILENAME,
                    {"watermark_seq": upto, "prefix": str(self.prefix)},
                )
            if self.config.prune_segments:
                self.wal.prune(upto)
        _log.info(
            "fold-in published",
            extra={
                "obs": {
                    "events": len(actions),
                    "watermark_seq": upto,
                    "seconds": round(elapsed, 6),
                }
            },
        )
        return len(actions)

    # ------------------------------------------------------ retry/degraded

    def attempt(self) -> int | None:
        """:meth:`run_once` with capped-exponential-backoff accounting.

        Returns the events applied, or ``None`` when the cycle failed or
        is still inside its backoff window.  After ``max_retries``
        consecutive failures the worker turns ``degraded`` (visible in
        ``/healthz``) but *keeps retrying* at the capped interval — the
        WAL keeps journaling either way, so recovery is automatic.
        """
        now = self.clock()
        with self._lock:
            if now < self._retry_at:
                return None
        try:
            applied = self.run_once()
        except Exception as exc:  # noqa: BLE001 — the worker must survive anything
            registry = get_registry()
            with self._lock:
                self._failures += 1
                self._last_error = f"{type(exc).__name__}: {exc}"
                backoff = min(
                    self.config.retry_cap_seconds,
                    self.config.retry_base_seconds * (2 ** (self._failures - 1)),
                )
                self._retry_at = self.clock() + backoff
                if self._failures >= self.config.max_retries and not self._degraded:
                    self._degraded = True
                    registry.gauge("foldin.degraded").set(1)
                    _log.error(
                        "fold-in degraded: serving stale model, still journaling",
                        extra={
                            "obs": {
                                "failures": self._failures,
                                "error": self._last_error,
                            }
                        },
                    )
            registry.counter("foldin.retries").inc()
            registry.info("foldin.status").set(
                "degraded" if self._degraded else "retrying"
            )
            registry.info("foldin.last_error").set(self._last_error)
            _log.warning(
                "fold-in cycle failed; backing off",
                extra={
                    "obs": {
                        "failures": self._failures,
                        "backoff_seconds": backoff,
                        "error": self._last_error,
                    }
                },
            )
            return None
        registry = get_registry()
        with self._lock:
            if self._degraded:
                registry.gauge("foldin.degraded").set(0)
                _log.info("fold-in recovered from degraded mode")
            self._failures = 0
            self._retry_at = 0.0
            self._degraded = False
            self._last_error = None
        registry.info("foldin.status").set("ok")
        registry.info("foldin.last_error").set(None)
        return applied

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._thread is not None:
            raise ConfigurationError("fold-in worker already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-foldin", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.attempt()
            self._wake.wait(self.config.interval_seconds)
            self._wake.clear()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._wake.set()
        self._thread.join()
        self._thread = None

    def kick(self) -> None:
        """Wake the background loop before its interval elapses."""
        self._wake.set()

    def drain_now(self, timeout: float = 30.0) -> None:
        """Block until every currently durable event is folded (tests).

        With the background thread running, each poll kicks it awake; the
        fold itself still happens on that thread, exactly as in
        production.  Without a thread, cycles run inline on the caller.
        """
        deadline = time.monotonic() + timeout
        while self.pending() > 0:
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"fold-in did not drain {self.pending()} events in {timeout}s"
                )
            if self._thread is None:
                self.attempt()
            else:
                self.kick()
                time.sleep(0.01)

    # -------------------------------------------------------------- health

    def health(self) -> dict[str, Any]:
        """The ``/healthz`` fold-in section."""
        with self._lock:
            status = "degraded" if self._degraded else "ok"
            watermark = self._watermark
            body = {
                "status": status,
                "watermark_seq": watermark,
                "folds": self._folds,
                "events_applied": self._events_applied,
                "events_dropped": self._events_dropped,
                "consecutive_failures": self._failures,
                "last_error": self._last_error,
            }
        # Computed outside the (non-reentrant) lock: durable_seq takes the
        # WAL's own lock, and the watermark snapshot above is consistent.
        body["pending_events"] = max(0, self.wal.durable_seq - watermark)
        return body
