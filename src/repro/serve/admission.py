"""Admission control: bounded queueing and deadline-based shedding.

A single-process server under heavy traffic has exactly two honest
options when work arrives faster than it drains: bound the queue and
refuse the overflow (HTTP 429), or let a request wait but refuse to spend
kernel time on it once its deadline has passed (HTTP 503).  Everything
else — unbounded queues, silent slow answers — just moves the failure
somewhere harder to see.

:class:`AdmissionController` implements both policies:

- ``admit(endpoint)`` hands out a :class:`Ticket` while fewer than
  ``max_queue`` requests are in flight, else ``None`` (the caller sheds
  with 429).  The in-flight count covers queued *and* executing requests,
  so the bound is the server's total concurrent exposure.
- each ticket carries a deadline, ``now + timeout`` for its endpoint
  (``endpoint_timeouts`` overrides ``default_timeout_seconds`` per
  endpoint); the server stops waiting on the batcher at the deadline and
  sheds with 503.

The clock is injectable (mirroring :class:`~repro.obs.metrics
.MetricsRegistry`), so expiry is tested with a fake clock, never sleeps.

Counters: ``serve.shed`` totals every shed request, with the reason split
into ``serve.shed.queue_full`` and ``serve.shed.deadline``; the
``serve.queue_depth`` gauge tracks the in-flight count.  With tracing
enabled, every shed also drops a zero-duration ``serve.shed`` event onto
the shed request's trace, so a 429/503 in a trace names its reason.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = ["AdmissionConfig", "AdmissionController", "Ticket"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Queue bound and per-endpoint deadlines."""

    max_queue: int = 256
    default_timeout_seconds: float = 5.0
    endpoint_timeouts: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if self.default_timeout_seconds <= 0:
            raise ConfigurationError("default_timeout_seconds must be positive")
        for endpoint, timeout in self.endpoint_timeouts.items():
            if timeout <= 0:
                raise ConfigurationError(
                    f"timeout for endpoint {endpoint!r} must be positive"
                )

    def timeout_for(self, endpoint: str) -> float:
        return float(self.endpoint_timeouts.get(endpoint, self.default_timeout_seconds))


class Ticket:
    """One admitted request: its endpoint, deadline, and release state."""

    __slots__ = ("endpoint", "admitted_at", "deadline", "_released")

    def __init__(self, endpoint: str, admitted_at: float, deadline: float) -> None:
        self.endpoint = endpoint
        self.admitted_at = admitted_at
        self.deadline = deadline
        self._released = False


class AdmissionController:
    """Bounded in-flight accounting with per-endpoint deadlines.

    All methods are cheap and non-blocking; the server calls ``admit``
    when a request is parsed and ``release`` when its response is
    written (every path, including sheds and errors).
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        label: str | None = None,
    ) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self.clock = clock
        self.label = label
        self._inflight = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    def admit(self, endpoint: str) -> Ticket | None:
        """A ticket when capacity allows, ``None`` when the queue is full."""
        registry = get_registry()
        if self._inflight >= self.config.max_queue:
            registry.counter("serve.shed").inc()
            registry.counter("serve.shed.queue_full").inc()
            if self.label is not None:
                registry.counter(f"serve.tenant.{self.label}.shed").inc()
            get_tracer().event(
                "serve.shed", reason="queue_full", endpoint=endpoint
            )
            return None
        self._inflight += 1
        # A labelled controller is one of many (per tenant): it owns its
        # labelled gauge and leaves the deployment-wide ``serve.queue_depth``
        # to whoever can see every controller (SkillServer sums them).
        if self.label is None:
            registry.gauge("serve.queue_depth").set(self._inflight)
        else:
            registry.gauge(f"serve.tenant.{self.label}.queue_depth").set(self._inflight)
        now = self.clock()
        return Ticket(endpoint, now, now + self.config.timeout_for(endpoint))

    def release(self, ticket: Ticket) -> None:
        """Return the ticket's slot; idempotent per ticket."""
        if ticket._released:
            return
        ticket._released = True
        self._inflight -= 1
        if self.label is None:
            get_registry().gauge("serve.queue_depth").set(self._inflight)
        else:
            get_registry().gauge(f"serve.tenant.{self.label}.queue_depth").set(
                self._inflight
            )

    def remaining(self, ticket: Ticket) -> float:
        """Seconds until the ticket's deadline (negative when expired)."""
        return ticket.deadline - self.clock()

    def expired(self, ticket: Ticket) -> bool:
        return self.clock() > ticket.deadline

    def shed_deadline(self) -> None:
        """Record a deadline-based shed (the 503 path)."""
        registry = get_registry()
        registry.counter("serve.shed").inc()
        registry.counter("serve.shed.deadline").inc()
        get_tracer().event("serve.shed", reason="deadline")
