"""Durable streaming ingest: a crash-safe write-ahead log for action events.

The serving subsystem's fold-in loop (``POST /ingest`` →
:class:`~repro.serve.foldin.FoldinWorker` → hot-reload) starts here: every
arriving action event is journaled to an append-only **write-ahead log**
before it is acknowledged, so a crash at any point loses nothing that was
acked and re-applies nothing that was already folded.

Layout and record format
------------------------

A WAL is a directory of numbered segment files (``wal-00000001.seg``, …).
Each segment is a run of length-prefixed, checksummed records:

====================  =====================================================
``seq``   (u64 LE)    monotonic event sequence number, +1 per event across
                      the whole WAL — the idempotence token the fold-in
                      watermark is expressed in
``length`` (u32 LE)   payload byte count (0 marks a batch-commit record)
``crc32``  (u32 LE)   CRC-32 of ``seq || length || payload`` — a torn
                      header *or* torn payload both fail the check
``payload``           compact JSON ``{"item":…,"time":…,"user":…}``
====================  =====================================================

Durability and atomicity contract
---------------------------------

``append`` journals a whole batch as **one** buffered write — the batch's
event records followed by a zero-length *commit record* sealing them —
then issues one ``flush + fsync`` (fsync-on-batch): the HTTP 200 an ingest
client sees means its whole batch is on stable storage.  ``durable_seq``
is advanced only after the fsync, and readers (the fold-in worker) never
read past it.

A *failed* append (``ENOSPC``, ``EIO``, a torn write) may leave a prefix
of the un-acked batch in the live segment.  Those bytes must not stay in
front of later appends: readers stop at the first invalid byte, so a
batch journaled after garbage would be invisible to the fold-in worker
while still acked to the client — silent loss without even a crash.  The
failure path therefore truncates the live segment back to its pre-batch
length before re-raising (``ingest.append_rollbacks``); if even the
truncate fails (the same dying disk), the WAL refuses every subsequent
append with a typed :class:`~repro.exceptions.DataError` until the
rollback succeeds, and a crash in that state is healed by ordinary
recovery, which truncates the uncommitted tail.

The commit record is what makes batches atomic across crashes: recovery
truncates every byte after the last commit record, so a batch is either
wholly in the log (it was acked) or wholly gone (it never was) — even when
a torn tail happens to contain complete, checksum-valid event records from
the unacknowledged batch.  A client that retries every un-acked batch
therefore gets exactly-once journaling with no idempotence bookkeeping.

Crash recovery
--------------

Opening a WAL replays every segment, verifying checksums, sequence
continuity, and commit records.  Torn or uncommitted bytes at the tail of
the **last** segment are expected crash damage — they are truncated away
(the lost events were never acked, so the client retries them).  Invalid
bytes anywhere *else* mean real corruption and raise a typed
:class:`~repro.exceptions.DataError` instead of silently dropping data.

``inspect_wal`` is the read-only flavour of the same scan, powering
``repro wal inspect`` for operators.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, BinaryIO, Iterator, Mapping

from repro.exceptions import ConfigurationError, DataError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = ["WalConfig", "WalRecord", "WriteAheadLog", "inspect_wal"]

_log = get_logger("serve.ingest")

_HEADER = struct.Struct("<QII")  # seq, payload length, crc32
_CRC_PREFIX = struct.Struct("<QI")  # the header fields covered by the crc
_SEGMENT_GLOB = "wal-*.seg"
#: Upper bound on a single record's payload; anything larger in a header is
#: treated as garbage (torn tail / corruption), not an allocation request.
_MAX_PAYLOAD_BYTES = 16 * 1024 * 1024


def _segment_name(index: int) -> str:
    return f"wal-{index:08d}.seg"


def _segment_index(path: Path) -> int:
    try:
        return int(path.stem.split("-", 1)[1])
    except (IndexError, ValueError):
        raise DataError(f"{path}: not a WAL segment file name") from None


def _encode_record(seq: int, payload: bytes) -> bytes:
    crc = zlib.crc32(payload, zlib.crc32(_CRC_PREFIX.pack(seq, len(payload))))
    return _HEADER.pack(seq, len(payload), crc) + payload


def _encode_event(event: Mapping[str, Any]) -> bytes:
    try:
        return json.dumps(
            dict(event), sort_keys=True, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
    except TypeError as exc:
        raise DataError(f"ingest event is not JSON-representable: {exc}") from exc


def _segment_write(handle: BinaryIO, data: bytes) -> None:
    """The byte-level batch append — a module function so fault injection
    can tear it (write a prefix, then crash) exactly like a dying process."""
    handle.write(data)


def _segment_fsync(handle: BinaryIO) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _segment_truncate(path: Path, size: int) -> None:
    """Roll a segment back to ``size`` bytes — a module function so fault
    injection can fail it (a disk too dead even to truncate)."""
    os.truncate(path, size)


@dataclass(frozen=True)
class WalRecord:
    """One replayed event: its sequence number and decoded payload."""

    seq: int
    event: dict[str, Any]


@dataclass(frozen=True)
class WalConfig:
    """Tuning for the write-ahead log."""

    segment_bytes: int = 4 * 1024 * 1024  # rotate segments past this size
    fsync: bool = True  # tests may trade durability for speed

    def __post_init__(self) -> None:
        if self.segment_bytes < 1:
            raise ConfigurationError("segment_bytes must be >= 1")


@dataclass(frozen=True)
class _SegmentScan:
    """Result of validating one segment file."""

    path: Path
    records: int  # committed event records
    first_seq: int | None
    last_seq: int | None  # last *committed* event seq
    committed_bytes: int  # offset just past the last commit record
    total_bytes: int
    torn: bool  # trailing bytes that do not parse into a valid record
    uncommitted: int  # trailing records that parse but lack a commit


def _scan_segment(path: Path, expect_seq: int | None) -> _SegmentScan:
    """Walk one segment's records, tracking the last batch-commit point.

    Stops at the first invalid byte (``torn``); valid event records after
    the last commit record count as ``uncommitted``.  ``expect_seq``
    checks cross-segment continuity; a valid record with the *wrong*
    sequence number is corruption, not a torn tail.
    """
    data = path.read_bytes()
    offset = 0
    records = 0
    first_seq: int | None = None
    last_seq: int | None = None
    pending = 0  # parsed event records since the last commit record
    pending_first: int | None = None
    pending_last: int | None = None
    committed_bytes = 0
    torn = False
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            torn = True
            break
        seq, length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_PAYLOAD_BYTES or offset + _HEADER.size + length > len(data):
            torn = True
            break
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        actual = zlib.crc32(payload, zlib.crc32(_CRC_PREFIX.pack(seq, length)))
        if actual != crc:
            torn = True
            break
        offset += _HEADER.size + length
        if length == 0:
            # Batch-commit record: seals every event record since the last
            # commit.  Its seq must equal the batch's final event seq.
            if pending == 0 or seq != pending_last:
                raise DataError(
                    f"{path}: commit record at offset {offset - _HEADER.size} "
                    f"seals seq {seq} but the open batch ends at "
                    f"{pending_last} — the WAL is corrupt"
                )
            records += pending
            if first_seq is None:
                first_seq = pending_first
            last_seq = seq
            pending = 0
            pending_first = None
            pending_last = None
            committed_bytes = offset
            continue
        if expect_seq is not None and seq != expect_seq:
            raise DataError(
                f"{path}: sequence discontinuity at offset "
                f"{offset - _HEADER.size - length} (expected seq {expect_seq}, "
                f"found {seq}) — the WAL is corrupt"
            )
        if pending_first is None:
            pending_first = seq
        pending_last = seq
        pending += 1
        expect_seq = seq + 1
    return _SegmentScan(
        path=path,
        records=records,
        first_seq=first_seq,
        last_seq=last_seq,
        committed_bytes=committed_bytes,
        total_bytes=len(data),
        torn=torn,
        uncommitted=pending,
    )


def _decode_records(path: Path, after_seq: int, upto_seq: int | None) -> Iterator[WalRecord]:
    """Yield committed, decoded event records from one segment.

    Event records are buffered per batch and only released once the
    batch's commit record is seen, so readers never observe an
    unacknowledged batch; torn or uncommitted trailing bytes simply end
    the scan (a concurrent writer's un-fsynced tail is not an error).
    """
    data = path.read_bytes()
    offset = 0
    batch: list[WalRecord] = []
    while offset + _HEADER.size <= len(data):
        seq, length, crc = _HEADER.unpack_from(data, offset)
        if length > _MAX_PAYLOAD_BYTES or offset + _HEADER.size + length > len(data):
            return
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        if zlib.crc32(payload, zlib.crc32(_CRC_PREFIX.pack(seq, length))) != crc:
            return
        offset += _HEADER.size + length
        if length == 0:
            for record in batch:
                if upto_seq is not None and record.seq > upto_seq:
                    return
                if record.seq > after_seq:
                    yield record
            batch = []
            continue
        try:
            event = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise DataError(
                f"{path}: record seq {seq} passed its checksum but is not "
                f"valid JSON ({exc}) — the WAL writer is broken"
            ) from exc
        batch.append(WalRecord(seq=seq, event=event))


def _segment_paths(directory: Path) -> list[Path]:
    return sorted(directory.glob(_SEGMENT_GLOB), key=_segment_index)


class WriteAheadLog:
    """An append-only, checksummed, crash-recovering event journal.

    Opening replays (and, for an uncommitted last-segment tail, truncates)
    the directory; ``append`` is safe to call from one writer thread while
    any number of readers call ``read``/``last_seq``/``durable_seq``.
    """

    def __init__(self, directory: str | Path, config: WalConfig | None = None) -> None:
        self.directory = Path(directory)
        self.config = config if config is not None else WalConfig()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle: BinaryIO | None = None
        #: Set when a failed append left bytes we could not truncate away;
        #: appends refuse to journal after garbage until this is cleared.
        self._pending_rollback: tuple[Path, int] | None = None
        self._recover()

    # ----------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Replay every segment; truncate past the last commit on the tail."""
        registry = get_registry()
        paths = _segment_paths(self.directory)
        expect: int | None = None
        last_seq = 0
        for position, path in enumerate(paths):
            scan = _scan_segment(path, expect)
            is_last = position == len(paths) - 1
            damaged = scan.torn or scan.uncommitted or scan.committed_bytes < scan.total_bytes
            if damaged and not is_last:
                raise DataError(
                    f"{path}: invalid or uncommitted bytes at offset "
                    f"{scan.committed_bytes} in a non-final WAL segment — the "
                    "log is corrupt beyond a torn tail; restore it or discard "
                    "the directory"
                )
            if damaged:
                dropped = scan.total_bytes - scan.committed_bytes
                os.truncate(path, scan.committed_bytes)
                registry.counter("ingest.torn_tail_truncations").inc()
                _log.warning(
                    "truncated un-acked WAL tail",
                    extra={
                        "obs": {
                            "segment": str(path),
                            "dropped_bytes": dropped,
                            "dropped_records": scan.uncommitted,
                            "kept_records": scan.records,
                        }
                    },
                )
            if scan.last_seq is not None:
                last_seq = scan.last_seq
                expect = scan.last_seq + 1
        self._segments = paths
        self._next_index = (_segment_index(paths[-1]) + 1) if paths else 1
        self._last_seq = last_seq
        self._durable_seq = last_seq  # replayed records came off stable storage
        registry.gauge("ingest.last_seq").set(last_seq)
        registry.gauge("ingest.segments").set(len(paths))

    # ------------------------------------------------------------- status

    @property
    def last_seq(self) -> int:
        """Highest committed sequence number (0 for an empty WAL)."""
        with self._lock:
            return self._last_seq

    @property
    def durable_seq(self) -> int:
        """Highest sequence number known to be fsynced; readers must not
        fold past this."""
        with self._lock:
            return self._durable_seq

    @property
    def segment_count(self) -> int:
        with self._lock:
            return len(self._segments)

    # ------------------------------------------------------------- writing

    def _batch_handle(self, batch_bytes: int) -> BinaryIO:
        """The append handle for this batch, rotating segments as needed.

        A batch never spans segments (its commit record must share the
        crash-atomicity of its event records), so rotation happens
        *before* a batch that would overflow — and a batch larger than
        ``segment_bytes`` gets an oversized segment to itself rather than
        being split.
        """
        if self._handle is not None:
            position = self._handle.tell()
            if position == 0 or position + batch_bytes <= self.config.segment_bytes:
                return self._handle
            self._handle.close()
            self._handle = None
        if self._segments:
            try:
                size = self._segments[-1].stat().st_size
            except FileNotFoundError:
                size = 0  # a rotation's open() failed before creating it
            if size == 0 or size + batch_bytes <= self.config.segment_bytes:
                self._handle = open(self._segments[-1], "ab")
                return self._handle
        path = self.directory / _segment_name(self._next_index)
        self._next_index += 1
        self._segments.append(path)
        get_registry().gauge("ingest.segments").set(len(self._segments))
        self._handle = open(path, "ab")
        return self._handle

    def _discard_failed_tail(self, *, reraise: bool = True) -> None:
        """Truncate the bytes a failed append left in the live segment.

        Runs immediately in ``append``'s failure path and again before the
        next append if the truncate itself failed; until it succeeds every
        append raises, because a batch committed after garbage would be
        unreadable past the garbage — acked yet invisible to the fold-in
        worker, and truncated away (or worse, a sequence-discontinuity
        error) on restart.  Callers hold ``self._lock``.
        """
        assert self._pending_rollback is not None
        segment, size = self._pending_rollback
        try:
            current = segment.stat().st_size
        except FileNotFoundError:
            current = size  # the segment never materialized; nothing landed
        if current > size:
            try:
                _segment_truncate(segment, size)
            except OSError as exc:
                if reraise:
                    raise DataError(
                        f"{segment}: cannot truncate the {current - size} "
                        f"garbage bytes left by a failed append ({exc}); "
                        "refusing to journal after them"
                    ) from exc
                _log.error(
                    "failed-append rollback could not truncate; WAL will "
                    "refuse appends until it succeeds",
                    extra={
                        "obs": {
                            "segment": str(segment),
                            "garbage_bytes": current - size,
                            "error": str(exc),
                        }
                    },
                )
                return
            get_registry().counter("ingest.append_rollbacks").inc()
            _log.warning(
                "rolled back failed WAL append",
                extra={
                    "obs": {
                        "segment": str(segment),
                        "discarded_bytes": current - size,
                    }
                },
            )
        self._pending_rollback = None

    def append(self, events: list[Mapping[str, Any]]) -> tuple[int, int]:
        """Journal a batch of events: one buffered write, one fsync.

        Returns ``(first_seq, last_seq)`` of the assigned sequence
        numbers.  On any failure nothing is acknowledged: the sequence
        counter rolls back and the live segment is truncated back to its
        pre-batch length, so this same WAL object keeps journaling — later
        acked batches never sit behind garbage bytes that would hide them
        from readers.  A client may therefore blindly retry the whole
        batch without double-applying anything, whether the process died
        or merely saw the append fail.
        """
        if not events:
            raise DataError("cannot append an empty event batch")
        registry = get_registry()
        with self._lock:
            if self._pending_rollback is not None:
                self._discard_failed_tail()  # raises if still stuck
            first_seq = self._last_seq + 1
            parts: list[bytes] = []
            seq = first_seq
            for event in events:
                parts.append(_encode_record(seq, _encode_event(event)))
                seq += 1
            last_seq = seq - 1
            parts.append(_encode_record(last_seq, b""))  # the batch commit
            batch = b"".join(parts)
            start = registry.clock()
            segment: Path | None = None
            pre_size = 0
            try:
                handle = self._batch_handle(len(batch))
                pre_size = handle.tell()  # buffer is empty between batches
                segment = self._segments[-1]
                _segment_write(handle, batch)
                if self.config.fsync:
                    _segment_fsync(handle)
                else:
                    handle.flush()
            except BaseException:
                if self._handle is not None:
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                    self._handle = None
                if segment is not None:
                    # Whatever landed is un-acked garbage in front of any
                    # future append: remove it now, not at the next restart.
                    self._pending_rollback = (segment, pre_size)
                    self._discard_failed_tail(reraise=False)
                raise
            self._last_seq = last_seq
            self._durable_seq = last_seq
        elapsed = registry.clock() - start
        tracer = get_tracer()
        traces: list[str] = []
        if tracer.enabled:
            # Events arrive stamped with their originating request's trace
            # id (see /ingest); the append span joins the first such trace
            # — the durability cost lands on the request that paid it —
            # and names the rest, since one fsync covers the whole flush.
            seen: set[str] = set()
            for event in events:
                trace = event.get("_trace")
                if isinstance(trace, str) and trace and trace not in seen:
                    seen.add(trace)
                    traces.append(trace)
            tracer.record(
                "ingest.wal.append",
                trace=traces[0] if traces else None,
                duration=elapsed,
                events=len(events),
                bytes=len(batch),
                first_seq=first_seq,
                last_seq=last_seq,
                traces=traces,
            )
        registry.counter("ingest.events").inc(len(events))
        registry.counter("ingest.batches").inc()
        registry.counter("ingest.bytes_written").inc(len(batch))
        registry.histogram("ingest.append_seconds").observe(
            elapsed, trace=traces[0] if traces else None
        )
        registry.gauge("ingest.last_seq").set(last_seq)
        return first_seq, last_seq

    # ------------------------------------------------------------- reading

    def read(self, after_seq: int = 0, upto_seq: int | None = None) -> Iterator[WalRecord]:
        """Replay committed events with ``after_seq < seq <= upto_seq``.

        Safe concurrently with an appender: uncommitted or unparseable
        tail bytes end the scan, and callers should additionally bound
        ``upto_seq`` by :attr:`durable_seq`.
        """
        with self._lock:
            segments = list(self._segments)
        for path in segments:
            try:
                yield from _decode_records(path, after_seq, upto_seq)
            except FileNotFoundError:
                continue  # pruned between the snapshot and the read

    def prune(self, upto_seq: int) -> int:
        """Delete segments wholly covered by the consumed watermark.

        The active (last) segment is never deleted, so appends keep their
        handle.  Returns the number of segments removed.
        """
        removed = 0
        with self._lock:
            keep: list[Path] = []
            for position, path in enumerate(self._segments):
                if position == len(self._segments) - 1:
                    keep.append(path)
                    continue
                scan = _scan_segment(path, expect_seq=None)
                if scan.last_seq is not None and scan.last_seq <= upto_seq:
                    path.unlink(missing_ok=True)
                    removed += 1
                else:
                    keep.append(path)
            self._segments = keep
        if removed:
            registry = get_registry()
            registry.counter("ingest.segments_pruned").inc(removed)
            registry.gauge("ingest.segments").set(self.segment_count)
        return removed

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def inspect_wal(directory: str | Path) -> dict[str, Any]:
    """Read-only report of a WAL directory for ``repro wal inspect``.

    Never mutates anything (no truncation), so it is safe against a live
    server.  Segment ``status`` is one of ``ok``, ``empty``, ``torn-tail``
    (uncommitted or invalid trailing bytes on the final segment — recovery
    will truncate them), or ``corrupt`` (the same damage before the final
    segment, or an internal inconsistency).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DataError(f"{directory} is not a WAL directory")
    paths = _segment_paths(directory)
    segments: list[dict[str, Any]] = []
    expect: int | None = None
    last_seq = 0
    total_records = 0
    for position, path in enumerate(paths):
        try:
            scan = _scan_segment(path, expect)
        except DataError as exc:
            segments.append(
                {"file": path.name, "status": "corrupt", "error": str(exc)}
            )
            expect = None
            continue
        is_last = position == len(paths) - 1
        damaged = scan.torn or scan.uncommitted or scan.committed_bytes < scan.total_bytes
        if damaged:
            status = "torn-tail" if is_last else "corrupt"
        elif scan.records == 0:
            status = "empty"
        else:
            status = "ok"
        segments.append(
            {
                "file": path.name,
                "status": status,
                "records": scan.records,
                "first_seq": scan.first_seq,
                "last_seq": scan.last_seq,
                "bytes": scan.total_bytes,
                "valid_bytes": scan.committed_bytes,
            }
        )
        if scan.last_seq is not None:
            last_seq = scan.last_seq
            expect = scan.last_seq + 1
        total_records += scan.records
    report: dict[str, Any] = {
        "directory": str(directory),
        "segments": segments,
        "last_seq": last_seq,
        "total_records": total_records,
    }
    watermark_path = directory / "foldin.watermark.json"
    if watermark_path.exists():
        try:
            report["watermark"] = json.loads(watermark_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            report["watermark"] = {"error": f"unreadable watermark file ({exc})"}
    snapshot_path = directory / "foldin.snapshot.json"
    if snapshot_path.exists():
        try:
            payload = json.loads(snapshot_path.read_text(encoding="utf-8"))
            report["snapshot"] = {
                "watermark_seq": payload.get("watermark_seq"),
                "events": len(payload.get("events", [])),
            }
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            report["snapshot"] = {"error": f"unreadable snapshot file ({exc})"}
    return report
