"""Prefork multi-worker serving: N processes, one physical model copy.

A single asyncio process tops out at one core; the serving counterpart
of PR 8's shard pool is a classic prefork design with a shared-memory
twist:

- The **parent** never serves HTTP.  It binds the listen address (with
  ``SO_REUSEPORT`` where the platform has it — each worker then binds
  its own accept queue and the kernel load-balances connections; without
  it, the parent binds+listens once and forked workers inherit the
  socket object), watches every tenant's artifact pair on disk, and owns
  the shared-memory segments: each loaded model is published **once**
  via :func:`~repro.core.serialize.publish_model_shm` and named in a
  per-tenant *generation manifest* the workers watch.
- Each **worker** runs the ordinary :class:`~repro.serve.server
  .SkillServer` + micro-batchers over a
  :class:`~repro.serve.state.TenantRegistry` of
  :class:`~repro.serve.state.ManifestModelState`s — zero-copy read-only
  views into the parent's segments, so N workers serve one physical
  copy of every model.

Hot reload is a three-step generation handshake:

1. the parent sees a new artifact pair, loads and validates it once,
   publishes generation ``g+1`` into a fresh segment, and atomically
   rewrites the tenant's manifest;
2. each worker's watch loop notices the manifest change, re-attaches
   (checksum-gated — a torn or wrong segment is refused before any view
   escapes), swaps its bundle, and re-writes its registration file with
   the observed generation (its **ack**);
3. the parent unlinks generation ``g`` only after every live worker
   that ever attached the tenant acks ``>= g+1``.  Unlink only removes
   the name — a worker mid-request on the old mapping keeps its memory
   until the last view dies — so in-flight requests never tear.

Worker death is contained: the supervisor respawns the worker with
capped exponential backoff, and a worker that keeps dying is dropped
(**degraded** — fewer workers, still serving) rather than crash-looping
the deployment.  SIGTERM to the parent drains every worker before the
parent unlinks its segments.

Coordination state lives in small JSON files under ``run_dir`` (worker
registrations with admin ports + generation acks, per-tenant manifests,
and ``prefork.json`` with the supervisor's gauges) — crash-legible,
inspectable with ``cat``, and race-free via ``os.replace``.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ConfigurationError, DataError
from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry
from repro.serve.server import ServeConfig, SkillServer
from repro.serve.state import (
    DEFAULT_TENANT,
    ModelState,
    TenantRegistry,
    TenantSpec,
)

__all__ = ["PreforkConfig", "PreforkSupervisor", "WorkerRuntime"]

_log = get_logger("serve.prefork")

_HAS_REUSEPORT = hasattr(socket, "SO_REUSEPORT")


@dataclass(frozen=True)
class PreforkConfig:
    """Supervisor tuning: fleet size, respawn policy, drain budget."""

    workers: int = 2
    run_dir: Path = Path("prefork-run")
    poll_seconds: float = 1.0
    respawn_base_seconds: float = 0.2
    respawn_cap_seconds: float = 5.0
    max_respawns: int = 5  # per worker slot, before the slot degrades
    drain_seconds: float = 10.0
    residency_budget_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.poll_seconds <= 0:
            raise ConfigurationError("poll_seconds must be positive")


class WorkerRuntime:
    """A worker's view of the prefork coordination directory.

    Constructed inside the worker process and handed to
    :class:`~repro.serve.server.SkillServer`; the server calls
    ``register`` at start and after every swap (the generation ack), and
    the aggregated ``/metrics`` handler uses ``peers``/``prefork_info``.
    """

    def __init__(self, index: int, run_dir: Path) -> None:
        self.index = int(index)
        self.run_dir = Path(run_dir)

    # ------------------------------------------------------------ files

    def _registration_path(self) -> Path:
        return self.run_dir / "workers" / f"{self.index}.json"

    def register(self, *, admin_port: int, generations: Mapping[str, int]) -> None:
        """Atomically (re)write this worker's registration/ack file."""
        path = self._registration_path()
        payload = {
            "worker": self.index,
            "pid": os.getpid(),
            "admin_port": int(admin_port),
            "generations": dict(generations),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), "utf-8")
        os.replace(tmp, path)

    def peers(self) -> list[dict]:
        """Every registered worker (self included), skipping torn files."""
        found: list[dict] = []
        workers_dir = self.run_dir / "workers"
        try:
            names = sorted(os.listdir(workers_dir))
        except OSError:
            return found
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                found.append(json.loads((workers_dir / name).read_text("utf-8")))
            except (OSError, ValueError):
                continue
        return found

    def prefork_info(self) -> dict:
        try:
            return json.loads((self.run_dir / "prefork.json").read_text("utf-8"))
        except (OSError, ValueError):
            return {}


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything ``_worker_main`` needs; fork-inherited, so plain data."""

    index: int
    run_dir: Path
    serve: ServeConfig
    tenants: tuple[tuple[str, str], ...]  # (name, manifest path)
    default_tenant: str
    residency_budget_bytes: int | None
    sock: Any  # inherited listen socket when SO_REUSEPORT is unavailable


def _worker_main(spec: _WorkerSpec) -> None:
    """Worker process entry: fresh metrics, ordinary server, SIGTERM drain."""
    from repro.obs.metrics import MetricsRegistry, set_registry

    set_registry(MetricsRegistry())
    registry = TenantRegistry(
        [
            TenantSpec(name, manifest=Path(manifest))
            for name, manifest in spec.tenants
        ],
        default=spec.default_tenant,
        residency_budget_bytes=spec.residency_budget_bytes,
        poll_seconds=spec.serve.poll_seconds,
    )
    runtime = WorkerRuntime(spec.index, spec.run_dir)
    server = SkillServer(
        registry, spec.serve, sock=spec.sock, worker=runtime
    )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stopping.set)
        await server.start()
        await stopping.wait()
        await server.stop()

    try:
        asyncio.run(_run())
    finally:
        try:
            os.unlink(runtime._registration_path())
        except OSError:
            pass


@dataclass
class _Generation:
    number: int
    segment: Any
    descriptor: dict


@dataclass
class _Slot:
    """One worker index: its process, respawn budget, and backoff clock."""

    index: int
    process: multiprocessing.process.BaseProcess | None = None
    failures: int = 0
    respawn_at: float = 0.0
    degraded: bool = False


@dataclass
class _Tenant:
    name: str
    state: ModelState
    manifest_path: Path
    generations: list[_Generation] = field(default_factory=list)

    @property
    def latest(self) -> int:
        return self.generations[-1].number if self.generations else 0


class PreforkSupervisor:
    """Parent process: publish models, herd workers, retire generations.

    Usable from a CLI main thread (``start()`` then ``serve_forever()``
    with signal handlers calling ``request_stop()``) and from tests
    (``serve_forever`` on a background thread; ``wait_ready()`` to block
    until every worker accepts traffic).
    """

    def __init__(
        self,
        tenants: Mapping[str, str | Path],
        config: PreforkConfig,
        serve: ServeConfig,
        *,
        default_tenant: str = DEFAULT_TENANT,
    ) -> None:
        if default_tenant not in tenants:
            raise ConfigurationError(
                f"default tenant {default_tenant!r} has no model path"
            )
        self.config = config
        self.serve = serve
        self.default_tenant = default_tenant
        self.host: str | None = None
        self.port: int | None = None
        self.respawns = 0
        self._tenants: dict[str, _Tenant] = {}
        for name, prefix in tenants.items():
            manifest = config.run_dir / "tenants" / f"{name}.json"
            self._tenants[name] = _Tenant(
                name=name,
                state=ModelState(Path(prefix), poll_seconds=config.poll_seconds),
                manifest_path=manifest,
            )
        self._slots: list[_Slot] = [
            _Slot(index=i) for i in range(config.workers)
        ]
        self._sock: socket.socket | None = None
        self._inherited_sock: socket.socket | None = None
        # Workers must be forked: they inherit the (unpicklable) listen
        # socket on non-SO_REUSEPORT platforms and any module-level fault
        # seams the chaos tests patch before start().
        self._mp = multiprocessing.get_context("fork")
        self._stop = threading.Event()
        self._started = False
        self._closed = False

    # --------------------------------------------------------- publication

    def _publish(self, tenant: _Tenant) -> None:
        """Place the tenant's current model into a fresh shm generation
        and atomically point the manifest at it."""
        from repro.core.serialize import publish_model_shm

        bundle = tenant.state.current
        # Build (or reuse the artifact's) similarity index once, in the
        # parent, and bake it into the segment: every worker then serves
        # /recommend similar_harder from the same physical neighbor
        # tables, the property the prefork bench's Pss check asserts.
        similarity = bundle.similarity_index().to_payload()
        segment, descriptor = publish_model_shm(bundle.model, similarity=similarity)
        generation = tenant.latest + 1
        tenant.generations.append(_Generation(generation, segment, descriptor))
        manifest = {
            "tenant": tenant.name,
            "generation": generation,
            "descriptor": descriptor,
            "metadata": bundle.metadata,
        }
        tmp = tenant.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest), "utf-8")
        os.replace(tmp, tenant.manifest_path)
        get_registry().counter("serve.prefork.publishes").inc()
        _log.info(
            "generation published",
            extra={
                "obs": {
                    "tenant": tenant.name,
                    "generation": generation,
                    "segment": descriptor["name"],
                    "bytes": descriptor["bytes"],
                }
            },
        )

    def _retire(self, tenant: _Tenant, keep_from: int) -> None:
        """Unlink generations older than ``keep_from``.  Unlink removes
        the name only; any worker still mapped keeps its memory."""
        keep: list[_Generation] = []
        for generation in tenant.generations:
            if generation.number >= keep_from:
                keep.append(generation)
                continue
            try:
                generation.segment.close()
            except BufferError:  # pragma: no cover - parent holds no views
                pass
            try:
                generation.segment.unlink()
            except FileNotFoundError:
                pass
            _log.info(
                "generation retired",
                extra={
                    "obs": {
                        "tenant": tenant.name,
                        "generation": generation.number,
                    }
                },
            )
        tenant.generations = keep

    def _gc_generations(self) -> None:
        """Retire generations every live worker has moved past.

        A worker that never attached a tenant holds no mapping of any of
        its generations, so only workers that ack the tenant gate its
        GC; dead workers' stale registrations are ignored.
        """
        registrations = [
            reg
            for reg in WorkerRuntime(0, self.config.run_dir).peers()
            if self._pid_alive(reg.get("pid"))
        ]
        for tenant in self._tenants.values():
            if len(tenant.generations) <= 1:
                continue
            acks = [
                int(reg["generations"][tenant.name])
                for reg in registrations
                if isinstance(reg.get("generations"), dict)
                and tenant.name in reg["generations"]
            ]
            floor = min(acks) if acks else tenant.latest
            self._retire(tenant, keep_from=min(floor, tenant.latest))

    @staticmethod
    def _pid_alive(pid: Any) -> bool:
        if not isinstance(pid, int):
            return False
        try:
            os.kill(pid, 0)
        except OSError:
            return False
        return True

    # ------------------------------------------------------------- socket

    def _bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if _HAS_REUSEPORT:
                # Bind without listening: this only *reserves* the address
                # (resolving port 0 to a concrete port before any worker
                # exists); each worker binds its own SO_REUSEPORT socket
                # and the kernel spreads accepts across them.
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((self.serve.host, self.serve.port))
            else:  # pragma: no cover - linux CI always has SO_REUSEPORT
                # One listening socket, inherited by every forked worker;
                # the kernel wakes one worker per connection.
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                sock.bind((self.serve.host, self.serve.port))
                sock.listen(512)
                self._inherited_sock = sock
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self.host, self.port = sock.getsockname()[:2]

    # ---------------------------------------------------------- lifecycle

    def start(self) -> tuple[str, int]:
        """Publish every tenant, bind, spawn the fleet; returns (host, port)."""
        if self._started:
            raise ConfigurationError("supervisor already started")
        self._started = True
        run_dir = self.config.run_dir
        (run_dir / "workers").mkdir(parents=True, exist_ok=True)
        (run_dir / "tenants").mkdir(parents=True, exist_ok=True)
        for tenant in self._tenants.values():
            tenant.state.load()
            self._publish(tenant)
        self._bind()
        for slot in self._slots:
            self._spawn(slot)
        self._write_prefork_info()
        _log.info(
            "prefork supervising",
            extra={
                "obs": {
                    "host": self.host,
                    "port": self.port,
                    "workers": self.config.workers,
                    "tenants": sorted(self._tenants),
                    "reuseport": _HAS_REUSEPORT,
                }
            },
        )
        assert self.host is not None and self.port is not None
        return self.host, self.port

    def _spawn(self, slot: _Slot) -> None:
        try:
            os.unlink(self.config.run_dir / "workers" / f"{slot.index}.json")
        except OSError:
            pass
        assert self.port is not None
        spec = _WorkerSpec(
            index=slot.index,
            run_dir=self.config.run_dir,
            serve=replace(
                self.serve,
                port=self.port,
                reuse_port=self._inherited_sock is None,
            ),
            tenants=tuple(
                (name, str(tenant.manifest_path))
                for name, tenant in self._tenants.items()
            ),
            default_tenant=self.default_tenant,
            residency_budget_bytes=self.config.residency_budget_bytes,
            sock=self._inherited_sock,
        )
        process = self._mp.Process(
            target=_worker_main,
            args=(spec,),
            name=f"serve-worker-{slot.index}",
            daemon=True,
        )
        process.start()
        slot.process = process

    def _write_prefork_info(self) -> None:
        live = sum(
            1
            for slot in self._slots
            if slot.process is not None and slot.process.is_alive()
        )
        payload = {
            "configured": self.config.workers,
            "workers": live,
            "respawns": self.respawns,
            "degraded": sum(1 for slot in self._slots if slot.degraded),
            "pid": os.getpid(),
        }
        path = self.config.run_dir / "prefork.json"
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), "utf-8")
        os.replace(tmp, path)
        registry = get_registry()
        registry.gauge("serve.prefork.workers").set(float(live))
        registry.gauge("serve.prefork.configured").set(float(self.config.workers))
        registry.gauge("serve.prefork.respawns").set(float(self.respawns))
        registry.gauge("serve.prefork.degraded").set(float(payload["degraded"]))

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every non-degraded worker has registered an admin
        port — i.e. is bound and answering traffic."""
        deadline = time.monotonic() + timeout
        runtime = WorkerRuntime(0, self.config.run_dir)
        want = {slot.index for slot in self._slots if not slot.degraded}
        while time.monotonic() < deadline:
            ready = {
                reg.get("worker")
                for reg in runtime.peers()
                if reg.get("admin_port") and self._pid_alive(reg.get("pid"))
            }
            if want <= ready:
                return
            time.sleep(0.02)
        raise TimeoutError(
            f"workers not ready after {timeout}s (want {sorted(want)})"
        )

    def serve_forever(self, *, tick_seconds: float = 0.05) -> None:
        """Supervise until ``request_stop()``: respawn dead workers,
        publish new artifact generations, retire acked ones."""
        if not self._started:
            self.start()
        last_poll = 0.0
        try:
            while not self._stop.wait(tick_seconds):
                self._reap_and_respawn()
                now = time.monotonic()
                if now - last_poll >= self.config.poll_seconds:
                    last_poll = now
                    self._poll_tenants()
                self._gc_generations()
        finally:
            self._shutdown()

    def _reap_and_respawn(self) -> None:
        changed = False
        for slot in self._slots:
            process = slot.process
            if process is None or process.is_alive() or slot.degraded:
                continue
            exitcode = process.exitcode
            process.join()
            slot.process = None
            changed = True
            get_registry().counter("serve.prefork.worker_deaths").inc()
            _log.warning(
                "worker died",
                extra={"obs": {"worker": slot.index, "exitcode": exitcode}},
            )
            slot.failures += 1
            if slot.failures > self.config.max_respawns:
                slot.degraded = True
                _log.error(
                    "worker degraded after repeated deaths",
                    extra={"obs": {"worker": slot.index, "failures": slot.failures}},
                )
                continue
            backoff = min(
                self.config.respawn_cap_seconds,
                self.config.respawn_base_seconds * (2 ** (slot.failures - 1)),
            )
            slot.respawn_at = time.monotonic() + backoff
        for slot in self._slots:
            if (
                slot.process is None
                and not slot.degraded
                and time.monotonic() >= slot.respawn_at
                and not self._stop.is_set()
            ):
                self._spawn(slot)
                self.respawns += 1
                changed = True
                _log.info(
                    "worker respawned",
                    extra={"obs": {"worker": slot.index, "respawns": self.respawns}},
                )
        if changed:
            self._write_prefork_info()

    def _poll_tenants(self) -> None:
        for tenant in self._tenants.values():
            try:
                if tenant.state.maybe_reload():
                    self._publish(tenant)
            except Exception:  # per-tenant isolation, like the registry's
                _log.exception("tenant publish failed: %s", tenant.name)

    def request_stop(self) -> None:
        """Thread/signal-safe: ask ``serve_forever`` to drain and exit."""
        self._stop.set()

    def _shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Drain: SIGTERM every worker (the in-worker handler stops the
        # server gracefully), then escalate to SIGKILL past the budget.
        for slot in self._slots:
            process = slot.process
            if process is not None and process.is_alive():
                process.terminate()
        deadline = time.monotonic() + self.config.drain_seconds
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - drain overrun
                _log.warning(
                    "worker did not drain; killing",
                    extra={"obs": {"worker": slot.index}},
                )
                process.kill()
                process.join()
            slot.process = None
        # Only after every worker exited: unlink all generations.  The
        # old-generation safety argument doesn't apply at shutdown — no
        # readers remain.
        for tenant in self._tenants.values():
            self._retire(tenant, keep_from=tenant.latest + 1)
            tenant.state.close()
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        self._write_prefork_info()
        _log.info("prefork stopped", extra={"obs": {"respawns": self.respawns}})

    def stop(self) -> None:
        """Synchronous stop for callers not inside ``serve_forever``."""
        self.request_stop()
        self._shutdown()
