"""Online serving subsystem: micro-batched prediction over saved models.

The paper's downstream tasks — skill-conditioned item ranking and
difficulty-aware queries (Section VI) — are exactly what an upskilling
recommender answers *online*.  This package turns a saved model artifact
(:mod:`repro.core.serialize`) into an HTTP service, using only the
standard library:

- :class:`~repro.serve.server.SkillServer` — asyncio HTTP endpoints
  (``/predict``, ``/difficulty``, ``/skill``, ``/ingest``, ``/healthz``,
  ``/metrics``);
- :class:`~repro.serve.batcher.MicroBatcher` — request coalescing into
  the vectorized PR 3/4 kernels, bit-identical to per-request dispatch;
- :class:`~repro.serve.state.ModelState` — atomic model hot-reload from
  the checksummed artifact pair, old model served until the new one
  validates, with capped-backoff retry against flapping writers;
- :class:`~repro.serve.admission.AdmissionController` — bounded queueing
  with per-endpoint deadlines (429/503 shedding);
- :class:`~repro.serve.ingest.WriteAheadLog` — the durable, checksummed,
  crash-recovering journal behind ``POST /ingest``;
- :class:`~repro.serve.foldin.FoldinWorker` — the background thread that
  drains the WAL through :func:`~repro.core.incremental.extend_model`
  and republishes the artifact, closing the ingest → fold-in → hot-swap
  loop with an exactly-once watermark;
- :class:`~repro.serve.state.TenantRegistry` — many named models behind
  one deployment (``/t/<tenant>/...`` routing), LRU-cached under a byte
  residency budget with per-tenant admission and metrics;
- :class:`~repro.serve.prefork.PreforkSupervisor` — ``--workers N``
  prefork serving: N processes sharing one listen address
  (``SO_REUSEPORT``) and one shared-memory copy of every model, with
  generation-based hot-swap, respawn-with-backoff, and drain-on-SIGTERM.

Entry points: ``python -m repro serve <model-prefix>`` (CLI, with
``--ingest-wal`` for the streaming loop and ``--workers N`` for
prefork), ``python -m repro wal inspect`` (WAL operator tool),
:class:`~repro.serve.server.ServerThread` (in-process embedding), and
``tools/bench_serve.py`` (the closed-loop load generator behind
``BENCH_serve.json``).  Operational guide: ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionConfig, AdmissionController, Ticket
from repro.serve.batcher import MicroBatcher, TenantBatchers
from repro.serve.foldin import FoldinConfig, FoldinWorker
from repro.serve.ingest import WalConfig, WalRecord, WriteAheadLog, inspect_wal
from repro.serve.prefork import PreforkConfig, PreforkSupervisor, WorkerRuntime
from repro.serve.server import ServeConfig, ServerThread, SkillServer, merge_snapshots
from repro.serve.state import (
    DEFAULT_TENANT,
    ManifestModelState,
    ModelState,
    ServingModel,
    TenantRegistry,
    TenantSpec,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "DEFAULT_TENANT",
    "FoldinConfig",
    "FoldinWorker",
    "ManifestModelState",
    "MicroBatcher",
    "ModelState",
    "PreforkConfig",
    "PreforkSupervisor",
    "ServeConfig",
    "ServerThread",
    "ServingModel",
    "SkillServer",
    "TenantBatchers",
    "TenantRegistry",
    "TenantSpec",
    "Ticket",
    "WalConfig",
    "WalRecord",
    "WorkerRuntime",
    "WriteAheadLog",
    "inspect_wal",
    "merge_snapshots",
]
