"""Extension: the assembled upskilling recommender (paper Figure 1).

The paper's motivating figure shows skill + difficulty feeding a
recommender that proposes items of appropriate difficulty.  With both
models implemented, the recommender is a composition
(:mod:`repro.recsys.upskill`); this experiment evaluates it against the
obvious alternatives on synthetic data, where the generator defines what
"appropriate" means:

- the **challenge zone** ``(s − 0.5, s + 1.0]`` around the user's *true*
  level is where practice still stretches the user — the paper's own
  "moderately challenging, e.g. d = 3.1 for s = 3" band;
- **frustration** is a recommendation more than 1.5 levels above true
  capacity (the failure the paper's novice-overreach discussion warns
  about); **boredom** is more than 1.5 levels below.

Comparators: challenge-blind popularity, interest-only (the model's own
``P(item | s)`` without the difficulty window), and uniform random.  The
upskilling recommender should lead on challenge-zone rate; popularity
should drown users in boredom (head items are easy); random should split
the difference.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.difficulty import PRIOR_EMPIRICAL, generation_difficulty
from repro.core.training import fit_skill_model
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register
from repro.recsys.upskill import UpskillConfig, UpskillRecommender
from repro.synth.seeds import rng_for

_TOP_K = 10


@lru_cache(maxsize=None)
def _setup(scale: str):
    ds = datasets.dataset("synthetic", scale)
    model = fit_skill_model(
        ds.log, ds.catalog, ds.feature_set, 5, init_min_actions=40, max_iterations=25
    )
    difficulties = generation_difficulty(model, prior=PRIOR_EMPIRICAL)
    return ds, model, difficulties


def _evaluate(ds, recommendations_by_user) -> tuple[float, float, float]:
    """(challenge-zone rate, frustration rate, boredom rate) vs ground truth."""
    zone = frustration = boredom = total = 0
    for user, items in recommendations_by_user.items():
        true_level = int(ds.true_skills[user][-1])
        for item in items:
            d = ds.true_difficulty[item]
            total += 1
            if true_level - 0.5 < d <= true_level + 1.0:
                zone += 1
            elif d > true_level + 1.5:
                frustration += 1
            elif d < true_level - 1.5:
                boredom += 1
    return zone / total, frustration / total, boredom / total


@register(
    "extension_upskill",
    "Extension: the assembled upskilling recommender",
    "Figure 1 / Sections I and VII (the paper's end goal)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds, model, difficulties = _setup(scale)
    rng = rng_for(99, "upskill-eval")
    # Evaluate on users who still have room to grow.
    users = [u for u in ds.log.users if ds.true_skills[u][-1] < 5][:150]

    upskiller = UpskillRecommender(model, difficulties, UpskillConfig())
    interest_only = UpskillRecommender(
        model, difficulties, UpskillConfig(interest_weight=1.0)
    )
    item_ids = list(ds.catalog.ids)
    counts = ds.log.item_counts()
    by_popularity = sorted(item_ids, key=lambda i: -counts.get(i, 0))

    recs: dict[str, dict] = {"upskill": {}, "interest-only": {}, "popularity": {}, "random": {}}
    for user in users:
        seen = ds.log.sequence(user).unique_items
        recs["upskill"][user] = [
            r.item for r in upskiller.recommend(user, k=_TOP_K, log=ds.log)
        ]
        recs["interest-only"][user] = [
            r.item for r in interest_only.recommend(user, k=_TOP_K, log=ds.log)
        ]
        recs["popularity"][user] = [i for i in by_popularity if i not in seen][:_TOP_K]
        unseen = [i for i in item_ids if i not in seen]
        recs["random"][user] = list(rng.choice(unseen, size=_TOP_K, replace=False))

    rows = []
    zone = {}
    frustration = {}
    boredom = {}
    for name in ("upskill", "interest-only", "popularity", "random"):
        z, f, b = _evaluate(ds, recs[name])
        zone[name], frustration[name], boredom[name] = z, f, b
        rows.append((name, z, f, b))

    checks = {
        "upskill_highest_zone_rate": zone["upskill"] == max(zone.values()),
        "upskill_far_beats_popularity_and_random": zone["upskill"]
        > max(zone["popularity"], zone["random"]) + 0.1,
        "popularity_bores_users": boredom["popularity"] > boredom["upskill"] + 0.1,
        "frustration_bounded": frustration["upskill"] < 0.3,
    }
    return ExperimentResult(
        experiment_id="extension_upskill",
        title=f"Extension — upskilling recommender vs alternatives (scale={scale})",
        headers=("recommender", "challenge-zone rate", "frustration rate", "boredom rate"),
        rows=tuple(rows),
        notes=(
            "Zones are measured against ground truth: challenge = (s−0.5, s+1.0] "
            "around the user's true level (the paper's 'moderately challenging' "
            "band), frustration > s+1.5, boredom < s−1.5. Interest-only ranks by "
            "P(item|s) without the challenge window; popularity ignores skill."
        ),
        checks=checks,
    )
