"""Table VII: item-difficulty accuracy on the Synthetic dataset.

Paper shape: difficulty accuracy tracks skill accuracy (Multi-faceted >
ID > Uniform); for the multi-faceted model the generation-based
estimators beat the assignment-based one, Empirical prior best of all
(r = 0.921); and on *rare* items (selected < 3 times) the generation-based
estimate degrades far less than the assignment-based one.
"""

from __future__ import annotations

from repro.experiments import accuracy, datasets
from repro.experiments.registry import ExperimentResult, register

#: (skill model, difficulty method) grid exactly as in Table VII.
_GRID = (
    ("Uniform", "Assignment"),
    ("ID", "Assignment"),
    ("ID", "Uniform"),
    ("ID", "Empirical"),
    ("Multi-faceted", "Assignment"),
    ("Multi-faceted", "Uniform"),
    ("Multi-faceted", "Empirical"),
)


@register("table7", "Table VII: difficulty accuracy on Synthetic", "Section VI-D, Table VII")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = datasets.dataset("synthetic", scale)
    suite = accuracy.skill_model_suite("synthetic", scale)

    rows = []
    pearson: dict[tuple[str, str], float] = {}
    rare: dict[tuple[str, str], float] = {}
    for skill_name, method in _GRID:
        scores, estimates = accuracy.difficulty_accuracy(ds, suite[skill_name], method)
        rare_rmse, rare_count = accuracy.rare_item_rmse(ds, estimates)
        pearson[(skill_name, method)] = scores.pearson
        rare[(skill_name, method)] = rare_rmse
        rows.append((skill_name, method, *scores.as_row(), rare_rmse))

    checks = {
        "multi_beats_id_beats_uniform": (
            pearson[("Multi-faceted", "Empirical")]
            > pearson[("ID", "Empirical")]
            > pearson[("Uniform", "Assignment")]
        ),
        "generation_beats_assignment_for_multi": (
            pearson[("Multi-faceted", "Empirical")]
            > pearson[("Multi-faceted", "Assignment")]
        ),
        "empirical_at_least_uniform_for_multi": (
            pearson[("Multi-faceted", "Empirical")]
            >= pearson[("Multi-faceted", "Uniform")] - 0.01
        ),
        "generation_more_robust_on_rare_items": (
            rare[("Multi-faceted", "Empirical")] < rare[("Multi-faceted", "Assignment")]
        ),
    }
    return ExperimentResult(
        experiment_id="table7",
        title=f"Table VII — difficulty accuracy on Synthetic (scale={scale})",
        headers=(
            "Skill model",
            "Difficulty",
            "Pearson r",
            "Spearman ρ",
            "Kendall τ",
            "RMSE",
            "rare-item RMSE",
        ),
        rows=tuple(rows),
        notes=(
            "Paper best: Multi-faceted + Empirical (r=0.921, RMSE=0.614); on rare items "
            "Assignment degrades 46% vs Empirical 36%."
        ),
        checks=checks,
    )
