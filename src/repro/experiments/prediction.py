"""Shared machinery for the item-prediction experiments (Tables X/XI)."""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.baselines import fit_id_baseline, fit_uniform_baseline
from repro.core.training import fit_skill_model
from repro.data.splits import holdout_last_position, holdout_random_position
from repro.experiments import datasets
from repro.exceptions import ConfigurationError
from repro.recsys.ranking import ItemPredictionResult, predict_items

__all__ = ["DOMAINS", "MODELS", "item_prediction_results"]

#: The paper runs Tables X/XI on Cooking, Beer, and Film (Language has
#: single-use items, so ID-based ranking is undefined there).
DOMAINS = ("cooking", "beer", "film")
MODELS = ("Uniform", "ID", "Multi-faceted")

_TRAINER_KWARGS = {"init_min_actions": 20, "max_iterations": 25}


@lru_cache(maxsize=None)
def item_prediction_results(
    domain: str, scale: str, holdout: str
) -> dict[str, ItemPredictionResult]:
    """Acc@10/RR results of the three models on one domain+holdout (cached)."""
    if domain not in DOMAINS:
        raise ConfigurationError(f"domain must be one of {DOMAINS}, got {domain!r}")
    ds = datasets.dataset(domain, scale)
    if holdout == "random":
        train_log, held = holdout_random_position(ds.log, np.random.default_rng(13))
    elif holdout == "last":
        train_log, held = holdout_last_position(ds.log)
    else:
        raise ConfigurationError(f"holdout must be 'random' or 'last', got {holdout!r}")
    num_levels = datasets.NUM_LEVELS[domain]

    models = {
        "Uniform": fit_uniform_baseline(train_log, ds.catalog, num_levels),
        "ID": fit_id_baseline(train_log, ds.catalog, num_levels, **_TRAINER_KWARGS),
        "Multi-faceted": fit_skill_model(
            train_log, ds.catalog, ds.feature_set, num_levels, **_TRAINER_KWARGS
        ),
    }
    return {name: predict_items(model, held) for name, model in models.items()}
