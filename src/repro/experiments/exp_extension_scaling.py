"""Extension: data efficiency of the model ladder.

How much data does each model need?  The paper's sparsity study (Tables
VI/VIII) varies *items*; this companion sweep varies *users* at a fixed
catalog, tracing skill accuracy as the log grows.  Measured shape: the ID
model is **flat** — at a few actions per item, extra users barely improve
its per-(item, level) counts, so it stays stuck near its floor — while the
multi-faceted model converts every additional user into accuracy through
the shared features.  The gap therefore *widens* with data until the ID
model finally gets enough coverage (the paper's dense regime, Table VIII,
where the gap collapses again).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.metrics import score_estimates
from repro.core.baselines import fit_id_baseline
from repro.core.training import fit_skill_model
from repro.experiments.registry import ExperimentResult, register
from repro.synth.generator import SyntheticConfig, generate_synthetic

_USER_COUNTS = {"small": (50, 100, 200, 400), "full": (100, 300, 1000, 3000)}
_NUM_ITEMS = {"small": 2000, "full": 10000}


@lru_cache(maxsize=None)
def _dataset(num_users: int, num_items: int):
    return generate_synthetic(
        SyntheticConfig(num_users=num_users, num_items=num_items, seed=53)
    )


def _pearson(ds, model) -> float:
    truth = ds.true_skill_array()
    estimate = np.concatenate([model.skill_trajectory(seq.user) for seq in ds.log])
    return score_estimates(truth, estimate).pearson


@register(
    "extension_scaling",
    "Extension: skill accuracy vs training-set size",
    "Companion to Tables VI/VIII (data-sparsity study)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    num_items = _NUM_ITEMS[scale]
    kwargs = dict(init_min_actions=40, max_iterations=25)
    rows = []
    gaps = {}
    multi_scores = {}
    for num_users in _USER_COUNTS[scale]:
        ds = _dataset(num_users, num_items)
        multi = fit_skill_model(ds.log, ds.catalog, ds.feature_set, 5, **kwargs)
        id_model = fit_id_baseline(ds.log, ds.catalog, 5, **kwargs)
        r_multi = _pearson(ds, multi)
        r_id = _pearson(ds, id_model)
        gaps[num_users] = r_multi - r_id
        multi_scores[num_users] = r_multi
        rows.append((num_users, ds.log.num_actions, r_id, r_multi, r_multi - r_id))

    counts = _USER_COUNTS[scale]
    id_scores = {row[0]: row[2] for row in rows}
    checks = {
        "multi_always_ahead": all(gap > 0 for gap in gaps.values()),
        # Multi-faceted converts data into accuracy; the ID model's
        # per-(item, level) counts stay starved at this catalog size.
        "multi_improves_with_data": multi_scores[counts[-1]]
        > multi_scores[counts[0]] + 0.15,
        "id_gains_less_than_multi": (
            id_scores[counts[-1]] - id_scores[counts[0]]
            < (multi_scores[counts[-1]] - multi_scores[counts[0]]) - 0.05
        ),
    }
    return ExperimentResult(
        experiment_id="extension_scaling",
        title=f"Extension — skill accuracy vs #users, {num_items} items (scale={scale})",
        headers=("#users", "#actions", "ID r", "Multi-faceted r", "gap"),
        rows=tuple(rows),
        notes=(
            "Fixed catalog, growing user base. The ID model stays near its floor "
            "(each item is still seen only a handful of times per level), while the "
            "multi-faceted model converts every extra user into accuracy via the "
            "shared features — the data-efficiency face of the paper's sparsity "
            "argument."
        ),
        checks=checks,
    )
