"""Figure 3: choosing the number of skill levels on held-out likelihood.

The paper sweeps ``S`` for the Cooking domain with a 90/10 split and picks
the ``S`` maximizing held-out log-likelihood (it lands on 5).  Our cooking
simulator is generated with 5 true levels, so the curve should peak at —
or plateau near — 5, and must in particular prefer 5 to very small S.
"""

from __future__ import annotations

from repro.core.features import ID_FEATURE
from repro.core.selection import select_skill_count
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register

_CANDIDATES = (2, 3, 4, 5, 6, 7)


@register("fig3", "Figure 3: held-out log-likelihood vs number of skill levels", "Section VI-B, Figure 3")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = datasets.dataset("cooking", scale)
    # Sweep on the *shared* features only.  The item-ID categorical has one
    # parameter per (item, level); growing S multiplies its parameter count
    # and its held-out likelihood penalty strictly dominates the sweep,
    # pushing the winner to the smallest S regardless of the true dynamics.
    # The shared features (category, time/cost class, counts) are the ones
    # whose per-level distributions actually express skill.
    shared = ds.feature_set.subset(
        [name for name in ds.feature_set.names if name != ID_FEATURE]
    )
    result = select_skill_count(
        ds.log,
        ds.catalog,
        shared,
        _CANDIDATES,
        test_fraction=0.1,
        seed=7,
        init_min_actions=15,
        max_iterations=25,
    )
    rows = tuple(
        (s, ll, "← best" if s == result.best else "")
        for s, ll in result.as_series()
    )
    ll_by_s = dict(result.as_series())
    checks = {
        # The generator uses 5 true levels, but its within-capacity mixing
        # and novice overreach blur adjacent levels, so the data-driven
        # winner can land below 5; it must however be an *interior* maximum
        # (the paper's curve rises then falls), not a degenerate endpoint.
        "best_is_not_minimal": result.best > min(_CANDIDATES),
        "interior_maximum": (
            ll_by_s[result.best] > ll_by_s[min(_CANDIDATES)]
            and ll_by_s[result.best] > ll_by_s[max(_CANDIDATES)]
        ),
        "winner_near_truth": abs(result.best - 5) <= 2,
    }
    return ExperimentResult(
        experiment_id="fig3",
        title=f"Figure 3 — held-out LL vs S on Cooking (scale={scale})",
        headers=("S", "held-out log-likelihood", ""),
        rows=rows,
        notes=f"Selected S = {result.best} (paper selects 5 for Cooking).",
        checks=checks,
    )
