"""Table V: top movies per level *with* lastness preprocessing.

The paper's fix for Table IV's confound: drop every movie released after
the earliest action in the data, so any movie could be selected at any
time, then refit.  The highest level then surfaces *classics* (old,
high-difficulty films) and the lowest level *light* blockbusters.

Reproducible signatures after preprocessing:

- the release-year drift of Table IV collapses or reverses, and
- mean ground-truth difficulty of the top items now rises with level.
"""

from __future__ import annotations

from repro.analysis.preprocessing import remove_lastness
from repro.core.training import fit_skill_model
from repro.experiments import datasets
from repro.experiments.exp_table4 import film_level_summaries
from repro.experiments.registry import ExperimentResult, register


@register("table5", "Table V: top movies per level (with preprocessing)", "Section VI-C, Table V")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = datasets.dataset("film", scale)
    clean_log, clean_catalog, stats = remove_lastness(ds.log, ds.catalog, release_key="year")
    model = fit_skill_model(
        clean_log,
        clean_catalog,
        ds.feature_set,
        datasets.NUM_LEVELS["film"],
        init_min_actions=20,
        max_iterations=30,
    )
    summaries = film_level_summaries(model, clean_catalog)

    rows = tuple(
        (
            s.level,
            s.mean_metadata["year"],
            s.mean_metadata["difficulty"],
            ", ".join(str(i) for i in s.items[:3]),
        )
        for s in summaries
    )
    years = [s.mean_metadata["year"] for s in summaries]
    difficulties = [s.mean_metadata["difficulty"] for s in summaries]

    # Re-run the raw-data analysis for the drift comparison (cached).
    raw_model = datasets.fitted_model("film", scale, init_min_actions=20, max_iterations=30)
    raw_years = [
        s.mean_metadata["year"] for s in film_level_summaries(raw_model, ds.catalog)
    ]
    checks = {
        "year_drift_reduced_vs_table4": (years[-1] - years[0]) < (raw_years[-1] - raw_years[0]),
        "top_level_prefers_classics": difficulties[-1] > difficulties[0],
        "preprocessing_removed_items": stats.items_after < stats.items_before,
    }
    return ExperimentResult(
        experiment_id="table5",
        title=f"Table V — top movies per level after lastness preprocessing (scale={scale})",
        headers=("Level", "mean release year", "mean true difficulty", "top items"),
        rows=rows,
        notes=(
            f"Preprocessing cutoff t={stats.cutoff_time:.1f}: kept {stats.items_after}/"
            f"{stats.items_before} movies, {stats.actions_after}/{stats.actions_before} actions. "
            "Paper: highest level now surfaces classics (Rear Window, Casablanca, Citizen Kane)."
        ),
        checks=checks,
    )
