"""Shared machinery for the synthetic accuracy experiments (Tables VI-IX).

Fits the paper's model ladder on a synthetic dataset —

    Uniform → ID → ID+categorical → ID+gamma → ID+Poisson → Multi-faceted

— and scores skill assignments (per action) and difficulty estimates (per
selected item) against the generator's ground truth.
"""

from __future__ import annotations

from collections.abc import Mapping
from functools import lru_cache

import numpy as np

from repro.analysis.metrics import EvaluationScores, score_estimates
from repro.core.baselines import fit_id_baseline, fit_uniform_baseline
from repro.core.difficulty import (
    PRIOR_EMPIRICAL,
    PRIOR_UNIFORM,
    assignment_difficulty,
    generation_difficulty,
)
from repro.core.model import SkillModel
from repro.core.training import fit_skill_model
from repro.experiments import datasets
from repro.synth.base import SimulatedDataset
from repro.synth.generator import synthetic_feature_set

__all__ = [
    "SKILL_MODELS",
    "skill_model_suite",
    "skill_accuracy",
    "difficulty_accuracy",
    "rare_item_rmse",
]

#: Ladder order, matching Table VI's rows.
SKILL_MODELS = (
    "Uniform",
    "ID",
    "ID+categorical",
    "ID+gamma",
    "ID+Poisson",
    "Multi-faceted",
)

_FEATURE_OF = {
    "ID+categorical": "category",
    "ID+gamma": "intensity",
    "ID+Poisson": "steps",
}

_TRAINER_KWARGS = {"init_min_actions": 40, "max_iterations": 30}


@lru_cache(maxsize=None)
def skill_model_suite(dataset_name: str, scale: str) -> Mapping[str, SkillModel]:
    """All six models fitted on the named synthetic dataset (cached)."""
    ds = datasets.dataset(dataset_name, scale)
    base = synthetic_feature_set(include_id=False)
    num_levels = datasets.NUM_LEVELS[dataset_name]
    suite: dict[str, SkillModel] = {
        "Uniform": fit_uniform_baseline(ds.log, ds.catalog, num_levels),
        "ID": fit_id_baseline(ds.log, ds.catalog, num_levels, **_TRAINER_KWARGS),
    }
    for name, feature in _FEATURE_OF.items():
        suite[name] = fit_id_baseline(
            ds.log,
            ds.catalog,
            num_levels,
            extra_features=base.subset([feature]),
            **_TRAINER_KWARGS,
        )
    suite["Multi-faceted"] = fit_skill_model(
        ds.log, ds.catalog, ds.feature_set, num_levels, **_TRAINER_KWARGS
    )
    return suite


def skill_accuracy(ds: SimulatedDataset, model: SkillModel) -> EvaluationScores:
    """Per-action skill accuracy against the generator's true levels."""
    truth = ds.true_skill_array()
    estimate = np.concatenate([model.skill_trajectory(seq.user) for seq in ds.log])
    return score_estimates(truth, estimate)


def _difficulty_truth_and_estimate(
    ds: SimulatedDataset, estimates: Mapping
) -> tuple[np.ndarray, np.ndarray]:
    """Align truth/estimate over the items that *were selected* (the paper
    evaluates difficulty on items appearing in the data)."""
    selected = sorted(ds.log.selected_items, key=str)
    truth = np.asarray([ds.true_difficulty[item] for item in selected])
    estimate = np.asarray([estimates[item] for item in selected])
    return truth, estimate


def difficulty_accuracy(
    ds: SimulatedDataset, model: SkillModel, method: str
) -> tuple[EvaluationScores, Mapping]:
    """Difficulty accuracy for one (skill model, difficulty method) pair.

    ``method`` is ``"Assignment"``, ``"Uniform"``, or ``"Empirical"``
    (Table VII's difficulty columns).
    """
    if method == "Assignment":
        estimates = assignment_difficulty(model, ds.log)
    elif method == "Uniform":
        estimates = generation_difficulty(model, prior=PRIOR_UNIFORM)
    elif method == "Empirical":
        estimates = generation_difficulty(model, prior=PRIOR_EMPIRICAL)
    else:
        raise ValueError(f"unknown difficulty method {method!r}")
    truth, estimate = _difficulty_truth_and_estimate(ds, estimates)
    return score_estimates(truth, estimate), estimates


def rare_item_rmse(
    ds: SimulatedDataset, estimates: Mapping, *, max_occurrences: int = 2
) -> tuple[float, int]:
    """RMSE restricted to rare items (paper: selected < 3 times).

    Returns ``(rmse, number of rare items)``.
    """
    counts = ds.log.item_counts()
    rare = [item for item, count in counts.items() if count <= max_occurrences]
    if not rare:
        return float("nan"), 0
    truth = np.asarray([ds.true_difficulty[item] for item in rare])
    estimate = np.asarray([estimates[item] for item in rare])
    return float(np.sqrt(np.mean((truth - estimate) ** 2))), len(rare)
