"""Extension: progression model vs first-order Markov chain.

The paper's related-work section positions progression modelling against
sequential recommendation, and Yang et al. report the ID progression model
beating a hidden Markov model on next-event prediction.  This experiment
pits the multi-faceted model against a smoothed first-order Markov chain
on the last-position prediction task across the three item domains.

The honest expectation: the Markov chain is a strong *local* predictor
where consecutive selections correlate, while the progression model wins
where the skill state carries more signal than the previous item (sparse
domains).  Both must beat random by a wide margin; the table shows where
each approach earns its keep — and why the paper calls them complementary.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.training import fit_skill_model
from repro.data.splits import holdout_last_position
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register
from repro.recsys.markov import MarkovItemModel
from repro.recsys.ranking import predict_items, random_guess_expectation

_DOMAINS = ("cooking", "beer", "film")


@lru_cache(maxsize=None)
def _domain_results(domain: str, scale: str):
    ds = datasets.dataset(domain, scale)
    train_log, held = holdout_last_position(ds.log)
    progression = fit_skill_model(
        train_log,
        ds.catalog,
        ds.feature_set,
        datasets.NUM_LEVELS[domain],
        init_min_actions=20,
        max_iterations=25,
    )
    markov = MarkovItemModel(ds.catalog).fit(train_log)
    return (
        predict_items(progression, held),
        markov.predict_items(train_log, held),
        len(ds.catalog),
    )


@register(
    "extension_markov",
    "Extension: progression vs Markov-chain next-item prediction",
    "Section II (sequential recommendation contrast)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    rows = []
    beats_random = []
    rr = {}
    for domain in _DOMAINS:
        prog, markov, num_items = _domain_results(domain, scale)
        rand_acc, rand_rr = random_guess_expectation(num_items)
        rr[(domain, "progression")] = prog.mean_reciprocal_rank
        rr[(domain, "markov")] = markov.mean_reciprocal_rank
        beats_random.append(prog.mean_reciprocal_rank > 2 * rand_rr)
        beats_random.append(markov.mean_reciprocal_rank > 2 * rand_rr)
        rows.append(
            (
                domain,
                prog.acc_at_10,
                prog.mean_reciprocal_rank,
                markov.acc_at_10,
                markov.mean_reciprocal_rank,
                rand_rr,
            )
        )

    checks = {
        "both_beat_random_everywhere": all(beats_random),
        # Neither approach should dominate by an order of magnitude —
        # they capture different signals (the paper calls them
        # complementary and proposes fusing them as future work).
        "approaches_comparable": all(
            rr[(d, "progression")] > 0.2 * rr[(d, "markov")] for d in _DOMAINS
        ),
    }
    return ExperimentResult(
        experiment_id="extension_markov",
        title=f"Extension — progression vs Markov chain, last-position prediction (scale={scale})",
        headers=(
            "dataset",
            "progression Acc@10",
            "progression RR",
            "Markov Acc@10",
            "Markov RR",
            "random RR",
        ),
        rows=tuple(rows),
        notes=(
            "Yang et al. report the ID progression model beating an HMM on "
            "next-event prediction; a first-order Markov chain is the classic "
            "sequential baseline. The two models read different signals "
            "(latent skill vs previous item) — the paper proposes fusing them."
        ),
        checks=checks,
    )
