"""Figure 5: cooking-domain components and the novice-overreach anomaly.

The paper's Figure 5 shows cooking time and step-count distributions per
level.  Two shapes matter:

1. From level 2 upward, complexity (time, steps) grows with skill.
2. The **lowest** level looks like a *medium* level, not the easiest —
   beginners select recipes beyond their ability (the within-capacity
   violation the paper discusses at length in Sections VI-C and VII).

We report per-level means of steps/ingredients and the probability of the
heaviest cooking-time class, and check both shapes.
"""

from __future__ import annotations

from repro.analysis.interpret import feature_trend
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register
from repro.synth.cooking import TIME_CLASSES


@register("fig5", "Figure 5: cooking model components per skill level", "Section VI-C, Figure 5")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    model = datasets.fitted_model(
        "cooking", scale, init_min_actions=15, max_iterations=30
    )
    steps = feature_trend(model, "num_steps")
    ingredients = feature_trend(model, "num_ingredients")
    vocab = model.encoded.vocabulary("time_class")
    heavy_code = vocab.index("60min+")
    heavy_probs = [
        float(model.parameters.distribution("time_class", level).probs[heavy_code])
        for level in range(1, model.num_levels + 1)
    ]

    rows = tuple(
        (level, steps.means[level - 1], ingredients.means[level - 1], heavy_probs[level - 1])
        for level in range(1, model.num_levels + 1)
    )
    checks = {
        # Shape 1: complexity grows from level 2 to the top level.
        "steps_grow_from_level2": steps.means[-1] > steps.means[1],
        "heavy_time_class_grows_from_level2": heavy_probs[-1] > heavy_probs[1],
        # Shape 2: the lowest level's recipes look *harder* than level 2's
        # (novice overreach), as the paper observed.
        "level1_overreaches_level2": steps.means[0] > steps.means[1],
    }
    return ExperimentResult(
        experiment_id="fig5",
        title=f"Figure 5 — cooking feature means per level (scale={scale})",
        headers=("Level", "steps (mean)", "ingredients (mean)", "P(60min+)"),
        rows=rows,
        notes=(
            "Paper: distributions grow with skill for s=2..4, but s=1 resembles the "
            "medium level — novices select too-complex recipes."
        ),
        checks=checks,
    )
