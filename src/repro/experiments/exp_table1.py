"""Table I: dataset statistics after filtering.

The paper reports #users / #items / #actions for its five datasets after
the Section VI-B filtering: Beer and Film get the ≥50-unique thresholds;
Language, Cooking, and Synthetic are left unfiltered (their long-sequence
restriction applies only to initialization, not the data).

Our simulators run at laptop scale, so the *absolute* thresholds scale
with the preset; the structural facts the paper's Table I shows are
checked instead: Beer is the densest domain (most actions per user), the
Language catalog has exactly one action per item, and filtering strictly
shrinks Beer/Film.
"""

from __future__ import annotations

from repro.data.filtering import filter_log
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register

#: (min unique items per user, min unique users per item) per scale.
_THRESHOLDS = {"small": (20, 8), "full": (50, 25)}

_DATASETS = ("language", "cooking", "beer", "film", "synthetic")
_FILTERED = {"beer", "film"}


@register("table1", "Table I: dataset statistics after filtering", "Section VI-A/B, Table I")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    rows = []
    actions_per_user = {}
    one_action_per_item = {}
    shrank = {}
    for name in _DATASETS:
        ds = datasets.dataset(name, scale)
        log = ds.log
        if name in _FILTERED:
            user_min, item_min = _THRESHOLDS[scale]
            filtered, stats = filter_log(
                log,
                min_unique_items_per_user=user_min,
                min_unique_users_per_item=item_min,
            )
            shrank[name] = (
                stats.actions_after < stats.actions_before
                and stats.users_after <= stats.users_before
            )
            log = filtered
            filtered_note = f"yes ({user_min}/{item_min})"
        else:
            filtered_note = "no"
        num_users = log.num_users
        num_items = len(log.selected_items)
        num_actions = log.num_actions
        rows.append((name, num_users, num_items, num_actions, filtered_note))
        actions_per_user[name] = num_actions / max(num_users, 1)
        one_action_per_item[name] = num_actions == num_items

    checks = {
        "beer_is_densest_domain": actions_per_user["beer"]
        == max(actions_per_user[n] for n in _DATASETS),
        "language_items_equal_actions": one_action_per_item["language"],
        "filtering_shrinks_beer_and_film": all(shrank.get(n, False) for n in _FILTERED),
    }
    return ExperimentResult(
        experiment_id="table1",
        title=f"Table I — dataset statistics after filtering (scale={scale})",
        headers=("Dataset", "#Users", "#Items", "#Actions", "Filtered"),
        rows=tuple(rows),
        notes=(
            "Simulated stand-ins for the paper's proprietary sources; thresholds "
            "scale with dataset size (paper: 50/50 at full RateBeer/MovieLens scale)."
        ),
        checks=checks,
    )
