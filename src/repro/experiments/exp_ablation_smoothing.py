"""Ablation: additive-smoothing pseudo-count λ.

The paper fixes ``λ = 0.01`` after Shin et al. without a sweep.  This
ablation sweeps λ on the Synthetic dataset: far too large a pseudo-count
washes out the per-level categorical differences (including the item-ID
feature), so accuracy should degrade at the heavy end while everything in
the small-λ regime performs about the same — showing the choice is safe
rather than finely tuned.
"""

from __future__ import annotations

from repro.core.training import fit_skill_model
from repro.experiments import accuracy, datasets
from repro.experiments.registry import ExperimentResult, register

_LAMBDAS = (0.001, 0.01, 0.1, 1.0, 10.0)


@register(
    "ablation_smoothing",
    "Ablation: additive smoothing λ sweep",
    "Section IV-B, Equation 6 (λ = 0.01)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = datasets.dataset("synthetic", scale)
    rows = []
    pearson = {}
    for smoothing in _LAMBDAS:
        model = fit_skill_model(
            ds.log,
            ds.catalog,
            ds.feature_set,
            5,
            smoothing=smoothing,
            init_min_actions=40,
            max_iterations=25,
        )
        scores = accuracy.skill_accuracy(ds, model)
        pearson[smoothing] = scores.pearson
        rows.append((smoothing, *scores.as_row()))

    checks = {
        "small_lambda_regime_flat": abs(pearson[0.001] - pearson[0.01]) < 0.1,
        "sweep_has_real_effect": max(pearson.values()) - min(pearson.values()) > 0.02,
        "all_settings_learn": min(pearson.values()) > 0.3,
    }
    return ExperimentResult(
        experiment_id="ablation_smoothing",
        title=f"Ablation — smoothing λ sweep on Synthetic (scale={scale})",
        headers=("λ", "Pearson r", "Spearman ρ", "Kendall τ", "RMSE"),
        rows=tuple(rows),
        notes=(
            "Paper uses λ = 0.01 (after Shin et al.) without a sweep. Finding: on "
            "synthetic data, HEAVY smoothing actually helps — a large pseudo-count "
            "flattens the sparse item-ID categorical (its per-level counts are tiny) "
            "while barely touching the dense shared features, effectively reweighting "
            "the model toward the generalizable features. This is the smoothing-side "
            "view of the paper's own data-sparsity story (Tables VI vs VIII)."
        ),
        checks=checks,
    )
