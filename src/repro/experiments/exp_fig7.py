"""Figure 7: training time vs number of workers (all axes parallel).

The paper scales threads from 1 to 5 with every parallelization enabled;
the Multi-faceted model benefits more than ID because it has more
independent work per step.  We sweep worker counts on this machine and
check that more workers do not slow training down and that the
multi-faceted model's relative gain at the top worker count is at least
the ID model's (with generous slack — this host has few cores).
"""

from __future__ import annotations

import multiprocessing

from repro.core.baselines import id_feature_set
from repro.core.parallel import ParallelConfig
from repro.experiments.exp_table13 import _fit_time, timing_dataset
from repro.experiments.registry import ExperimentResult, register


@register("fig7", "Figure 7: training time vs worker count", "Section VI-F, Figure 7")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = timing_dataset(scale)
    id_features = id_feature_set()
    max_workers = max(2, min(4, multiprocessing.cpu_count()))
    worker_counts = list(range(1, max_workers + 1))

    rows = []
    id_times = {}
    multi_times = {}
    for workers in worker_counts:
        config = (
            ParallelConfig()  # one worker means fully serial
            if workers == 1
            else ParallelConfig(users=True, features=True, skills=True, workers=workers)
        )
        id_times[workers] = _fit_time(ds, id_features, config)
        multi_times[workers] = _fit_time(ds, ds.feature_set, config)
        rows.append((workers, id_times[workers], multi_times[workers]))

    top = worker_counts[-1]
    id_speedup = id_times[1] / id_times[top]
    multi_speedup = multi_times[1] / multi_times[top]
    # Tolerances are generous: this host has few cores and the DP work per
    # iteration is fractions of a second, so scheduler noise is a visible
    # fraction of each measurement (the paper timed hours-long runs).
    checks = {
        "workers_do_not_hurt_multi": multi_times[top] < multi_times[1] * 1.25,
        "multi_gains_at_least_id": multi_speedup >= id_speedup * 0.6,
    }
    return ExperimentResult(
        experiment_id="fig7",
        title=f"Figure 7 — per-iteration training time (s) vs workers, all axes (scale={scale})",
        headers=("workers", "ID (s/iter)", "Multi-faceted (s/iter)"),
        rows=tuple(rows),
        notes=(
            f"Speedup at {top} workers: ID ×{id_speedup:.2f}, Multi-faceted ×{multi_speedup:.2f}. "
            "Paper: Multi-faceted gains more from added threads than ID."
        ),
        checks=checks,
    )
