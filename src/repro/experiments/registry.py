"""Experiment registry: one named runner per paper table/figure.

Every experiment module registers a function ``run(scale) ->
ExperimentResult`` under the paper artifact's id ("table6", "fig3", ...).
The CLI (``python -m repro run table6``) and the benchmark suite both go
through this registry, so the numbers in EXPERIMENTS.md, the benches, and
ad-hoc runs can never drift apart.

``scale`` selects dataset sizes: ``"small"`` for CI-friendly runs and
``"full"`` for runs closer to the paper's scale.  Results report *shape*
(orderings, trends, crossovers), not the paper's absolute numbers — our
substrate is a simulator, not the authors' data.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.experiments.tables import format_table

__all__ = ["ExperimentResult", "Experiment", "register", "get_experiment", "all_experiments", "run_experiment"]

SCALES = ("small", "full")


@dataclass(frozen=True)
class ExperimentResult:
    """The output of one experiment run."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""
    checks: dict[str, bool] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render the result as an aligned table plus notes and checks."""
        parts = [format_table(self.headers, self.rows, title=self.title)]
        if self.notes:
            parts.append(self.notes)
        if self.checks:
            parts.append(
                "shape checks: "
                + ", ".join(f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in self.checks.items())
            )
        return "\n".join(parts)

    @property
    def all_checks_pass(self) -> bool:
        """True when every registered shape check held on this run."""
        return all(self.checks.values())


@dataclass(frozen=True)
class Experiment:
    """A registered paper artifact reproduction."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable[[str], ExperimentResult]

    def run(self, scale: str = "small") -> ExperimentResult:
        """Execute the experiment at a registered scale preset."""
        if scale not in SCALES:
            raise ConfigurationError(f"scale must be one of {SCALES}, got {scale!r}")
        return self.runner(scale)


_REGISTRY: dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_reference: str):
    """Decorator registering a ``run(scale)`` function as an experiment."""

    def decorator(runner: Callable[[str], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ConfigurationError(f"experiment {experiment_id!r} registered twice")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_reference=paper_reference,
            runner=runner,
        )
        return runner

    return decorator


def _ensure_loaded() -> None:
    # Importing the package registers every experiment module exactly once.
    from repro import experiments  # noqa: F401

    experiments.load_all()


def get_experiment(experiment_id: str) -> Experiment:
    """Look up one registered experiment by its artifact id."""
    _ensure_loaded()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def all_experiments() -> Sequence[Experiment]:
    """Every registered experiment, tables first, figures next, extras last."""
    _ensure_loaded()
    return [
        _REGISTRY[key]
        for key in sorted(_REGISTRY, key=_artifact_sort_key)
    ]


def run_experiment(experiment_id: str, scale: str = "small") -> ExperimentResult:
    """Convenience: look up and run one experiment."""
    return get_experiment(experiment_id).run(scale)


def _artifact_sort_key(experiment_id: str):
    """Sort tables/figures numerically, ablations last."""
    for prefix in ("table", "fig"):
        if experiment_id.startswith(prefix):
            suffix = experiment_id[len(prefix) :]
            if suffix.isdigit():
                return (0 if prefix == "table" else 1, int(suffix), experiment_id)
    return (2, 0, experiment_id)
