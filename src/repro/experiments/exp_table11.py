"""Table XI: item prediction at last positions (forecasting).

Same protocol as Table X with each user's final action held out.  Paper
shape: scores drop versus the random setting (the future is harder than
the middle of a sequence), and Multi-faceted still leads on the sparse
domains while on Film the models are nearly tied on RR.
"""

from __future__ import annotations

from repro.experiments import prediction
from repro.experiments.exp_table10 import _rows_and_checks
from repro.experiments.registry import ExperimentResult, register


@register("table11", "Table XI: item prediction at last positions", "Section VI-E, Table XI")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    rows, checks = _rows_and_checks(scale, "last")

    # Extra shape vs Table X: on the sparse cooking domain, forecasting
    # the final action is harder than recovering a random one.
    last_rr = prediction.item_prediction_results("cooking", scale, "last")[
        "Multi-faceted"
    ].mean_reciprocal_rank
    random_rr = prediction.item_prediction_results("cooking", scale, "random")[
        "Multi-faceted"
    ].mean_reciprocal_rank
    checks["forecasting_harder_than_recovery"] = last_rr <= random_rr * 1.1

    return ExperimentResult(
        experiment_id="table11",
        title=f"Table XI — item prediction at last positions (scale={scale})",
        headers=("Dataset", "Model", "Acc@10", "RR", "random Acc@10", "random RR"),
        rows=rows,
        notes=(
            "Paper (last): Cooking Multi 0.060/0.026 vs ID 0.043/0.018; all scores "
            "below the random-position setting."
        ),
        checks=checks,
    )
