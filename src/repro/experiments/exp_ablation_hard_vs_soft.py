"""Ablation: hard (DP) assignment vs soft (EM) training.

The paper adopts hard assignment citing Yang et al.'s ~1000× speedup over
EM "with comparable fitting quality" (Section IV-B).  Our DP and
forward–backward implementations are both vectorized per action, so the
wall-clock gap here reflects algorithmic overhead only (EM's log-sum-exp
lattice plus weighted refits) — expect "hard is faster, accuracy is
comparable", not three orders of magnitude.
"""

from __future__ import annotations

import time

from repro.core.soft_em import SoftEMConfig, fit_soft_em
from repro.core.training import fit_skill_model
from repro.experiments import accuracy, datasets
from repro.experiments.registry import ExperimentResult, register


@register(
    "ablation_hard_vs_soft",
    "Ablation: hard DP assignment vs soft EM",
    "Section IV-B (design choice)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = datasets.dataset("synthetic", scale)
    iterations = 15

    start = time.perf_counter()
    hard = fit_skill_model(
        ds.log, ds.catalog, ds.feature_set, 5, init_min_actions=40, max_iterations=iterations
    )
    hard_time = time.perf_counter() - start

    start = time.perf_counter()
    soft = fit_soft_em(
        ds.log,
        ds.catalog,
        ds.feature_set,
        SoftEMConfig(num_levels=5, init_min_actions=40, max_iterations=iterations),
    )
    soft_time = time.perf_counter() - start

    hard_scores = accuracy.skill_accuracy(ds, hard)
    soft_scores = accuracy.skill_accuracy(ds, soft)
    rows = (
        ("hard (DP)", hard_time, hard.trace.num_iterations, *hard_scores.as_row()),
        ("soft (EM)", soft_time, soft.trace.num_iterations, *soft_scores.as_row()),
    )
    checks = {
        "hard_is_faster": hard_time < soft_time,
        # "Comparable fitting quality" (Yang et al.): neither trainer may
        # dominate by a wide margin.  On our synthetic data EM's soft
        # posteriors tend to land slightly *above* the DP — the trade the
        # paper makes is speed, not accuracy.
        "quality_comparable": abs(hard_scores.pearson - soft_scores.pearson) < 0.2,
    }
    return ExperimentResult(
        experiment_id="ablation_hard_vs_soft",
        title=f"Ablation — hard assignment vs EM on Synthetic (scale={scale})",
        headers=("trainer", "time (s)", "iters", "Pearson r", "Spearman ρ", "Kendall τ", "RMSE"),
        rows=rows,
        notes=(
            "Paper rationale: hard assignment ~1000× faster than EM with comparable "
            "fit (Yang et al.); both loops here are equally vectorized, so the gap "
            "is smaller but the direction must hold."
        ),
        checks=checks,
    )
