"""Figure 4: model components learned for the language domain.

The paper's findings on Lang-8 (S=3):

- sentence counts show **no noticeable trend** across levels
  (means 10.84 / 11.63 / 10.32), while
- corrections per annotator **decrease** as skill improves
  (means 5.06 / 4.85 / 2.64): novices get corrected more.

We fit the multi-faceted model on the simulated corpus and report the
per-level means of both features (plus the corrected-sentence ratio the
paper also models), checking exactly those two shapes.
"""

from __future__ import annotations

from repro.analysis.interpret import feature_trend
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register


@register("fig4", "Figure 4: language model components per skill level", "Section VI-C, Figure 4")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    model = datasets.fitted_model(
        "language", scale, init_min_actions=15, max_iterations=30
    )
    sentences = feature_trend(model, "sentences")
    corrections = feature_trend(model, "corrections")
    ratio = feature_trend(model, "corrected_ratio")

    rows = tuple(
        (level, sentences.means[level - 1], corrections.means[level - 1], ratio.means[level - 1])
        for level in range(1, model.num_levels + 1)
    )
    checks = {
        # Corrections per annotator must fall from the lowest to the
        # highest level (paper: 5.06 → 2.64).
        "corrections_decrease_with_skill": corrections.means[-1] < corrections.means[0],
        "corrected_ratio_decreases": ratio.means[-1] < ratio.means[0],
        # Sentence count is skill-neutral: its relative spread must be far
        # smaller than the corrections feature's.
        "sentence_count_flat": (
            sentences.spread / max(sentences.means)
            < 0.5 * corrections.spread / max(corrections.means)
        ),
    }
    return ExperimentResult(
        experiment_id="fig4",
        title=f"Figure 4 — language feature means per level (scale={scale})",
        headers=("Level", "sentences (mean)", "corrections (mean)", "corrected ratio (mean)"),
        rows=rows,
        notes="Paper means — sentences: 10.84/11.63/10.32 (flat); corrections: 5.06/4.85/2.64 (falling).",
        checks=checks,
    )
