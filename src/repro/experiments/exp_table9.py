"""Table IX: difficulty accuracy on Synthetic_dense.

Paper shape: ordering unchanged from Table VII but the Multi-faceted gain
over ID shrinks, and — the interesting reversal — with dense data the
**Assignment** difficulty estimator catches up with (and on correlations
beats) the generation-based estimators for the multi-faceted model: with
plenty of observations per item, averaging observed selector skills is no
longer handicapped.
"""

from __future__ import annotations

from repro.experiments import accuracy, datasets
from repro.experiments.registry import ExperimentResult, register

_GRID = (
    ("Uniform", "Assignment"),
    ("ID", "Assignment"),
    ("ID", "Uniform"),
    ("ID", "Empirical"),
    ("Multi-faceted", "Assignment"),
    ("Multi-faceted", "Uniform"),
    ("Multi-faceted", "Empirical"),
)


@register("table9", "Table IX: difficulty accuracy on Synthetic_dense", "Section VI-D, Table IX")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    dense = datasets.dataset("synthetic_dense", scale)
    suite = accuracy.skill_model_suite("synthetic_dense", scale)

    rows = []
    pearson: dict[tuple[str, str], float] = {}
    for skill_name, method in _GRID:
        scores, _ = accuracy.difficulty_accuracy(dense, suite[skill_name], method)
        pearson[(skill_name, method)] = scores.pearson
        rows.append((skill_name, method, *scores.as_row()))

    # The sparse-data gap, for the shrinkage comparison.
    sparse = datasets.dataset("synthetic", scale)
    sparse_suite = accuracy.skill_model_suite("synthetic", scale)
    sparse_multi, _ = accuracy.difficulty_accuracy(
        sparse, sparse_suite["Multi-faceted"], "Empirical"
    )
    sparse_id, _ = accuracy.difficulty_accuracy(sparse, sparse_suite["ID"], "Empirical")
    dense_gap = pearson[("Multi-faceted", "Empirical")] - pearson[("ID", "Empirical")]
    sparse_gap = sparse_multi.pearson - sparse_id.pearson

    checks = {
        "multi_still_at_least_id": pearson[("Multi-faceted", "Empirical")]
        >= pearson[("ID", "Empirical")] - 0.02,
        "gap_shrinks_with_density": dense_gap < sparse_gap,
        # The paper's reversal: dense data rehabilitates Assignment.
        "assignment_competitive_when_dense": (
            pearson[("Multi-faceted", "Assignment")]
            >= pearson[("Multi-faceted", "Empirical")] - 0.05
        ),
    }
    return ExperimentResult(
        experiment_id="table9",
        title=f"Table IX — difficulty accuracy on Synthetic_dense (scale={scale})",
        headers=(
            "Skill model",
            "Difficulty",
            "Pearson r",
            "Spearman ρ",
            "Kendall τ",
            "RMSE",
        ),
        rows=tuple(rows),
        notes=(
            f"Multi−ID gap in r (Empirical): {dense_gap:.3f} dense vs {sparse_gap:.3f} sparse. "
            "Paper: Assignment beats Empirical on correlations when data is dense."
        ),
        checks=checks,
    )
