"""Extension: forgetting-aware skill assignment (paper Section VII).

The paper's discussion flags its monotonicity assumption as a limitation:
users who pause lose skill, and Ebbinghaus's curve suggests the time gap
between consecutive actions carries the signal.  This extension relaxes
the DP lattice with a gap-dependent *down* transition
(:mod:`repro.core.forgetting`) and tests it on synthetic data whose true
skills genuinely decay over idle periods.

Expected shape: the base monotone model cannot represent any decrease and
so misestimates post-break actions; the forgetting-aware model tracks the
planted trajectories better overall and much better on the actions that
follow a real skill drop.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.metrics import score_estimates
from repro.core.forgetting import ForgettingConfig, fit_forgetting_model
from repro.core.training import fit_skill_model
from repro.experiments.registry import ExperimentResult, register
from repro.synth.forgetting import ForgettingDataConfig, generate_forgetting
from repro.synth.generator import SyntheticConfig

_SIZES = {"small": (300, 1500), "full": (1500, 7500)}


@lru_cache(maxsize=None)
def _decay_dataset(scale: str):
    users, items = _SIZES[scale]
    return generate_forgetting(
        ForgettingDataConfig(
            base=SyntheticConfig(
                num_users=users, num_items=items, seed=41, level_up_prob=0.15
            )
        )
    )


def _accuracy(ds, model):
    truth = ds.true_skill_array()
    estimate = np.concatenate([model.skill_trajectory(seq.user) for seq in ds.log])
    return score_estimates(truth, estimate)


def _post_drop_rmse(ds, model) -> float:
    """RMSE restricted to actions taken right after a true skill drop."""
    errors = []
    for seq in ds.log:
        truth = np.asarray(ds.true_skills[seq.user], dtype=np.float64)
        estimate = model.skill_trajectory(seq.user).astype(np.float64)
        drops = np.where(np.diff(truth) < 0)[0] + 1
        errors.extend((truth[drops] - estimate[drops]) ** 2)
    return float(np.sqrt(np.mean(errors))) if errors else float("nan")


@register(
    "extension_forgetting",
    "Extension: forgetting-aware assignment (Ebbinghaus decay)",
    "Section VII (monotonicity limitation)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = _decay_dataset(scale)
    num_drops = sum(
        int(np.sum(np.diff(ds.true_skills[seq.user]) < 0)) for seq in ds.log
    )

    base = fit_skill_model(
        ds.log, ds.catalog, ds.feature_set, 5, init_min_actions=40, max_iterations=25
    )
    decay = fit_forgetting_model(
        ds.log,
        ds.catalog,
        ds.feature_set,
        ForgettingConfig(num_levels=5, half_life=20.0, init_min_actions=40, max_iterations=25),
    )

    base_scores = _accuracy(ds, base)
    decay_scores = _accuracy(ds, decay)
    base_drop_rmse = _post_drop_rmse(ds, base)
    decay_drop_rmse = _post_drop_rmse(ds, decay)
    rows = (
        ("base (monotone)", *base_scores.as_row(), base_drop_rmse),
        ("forgetting-aware", *decay_scores.as_row(), decay_drop_rmse),
    )
    checks = {
        "forgetting_model_wins_overall": decay_scores.pearson > base_scores.pearson,
        "forgetting_model_wins_after_drops": decay_drop_rmse < base_drop_rmse,
        "base_still_learns": base_scores.pearson > 0.3,
    }
    return ExperimentResult(
        experiment_id="extension_forgetting",
        title=f"Extension — forgetting-aware assignment on decaying Synthetic (scale={scale})",
        headers=(
            "model",
            "Pearson r",
            "Spearman ρ",
            "Kendall τ",
            "RMSE",
            "post-drop RMSE",
        ),
        rows=rows,
        notes=(
            f"Dataset plants {num_drops} true skill drops (Ebbinghaus decay over idle "
            "gaps, half-life 20). The monotone base model cannot represent decreases; "
            "the extension adds a gap-weighted down transition to the assignment DP."
        ),
        checks=checks,
    )
