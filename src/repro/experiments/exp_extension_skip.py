"""Extension: skip-level progressions (paper Section IV-A's pointer).

The paper's base model only allows stay-or-step-up-by-one transitions and
notes the framework "is flexible enough to incorporate more complex
progressions (e.g., skipping some levels) by introducing a probabilistic
distribution for skill transitions" (after Shin et al.).  This extension
implements exactly that: the assignment DP accepts a maximum jump size and
per-jump log-weights.

Experiment: generate synthetic data where 30% of level-ups jump two levels
at once, then fit (a) the base step-by-one model and (b) the skip-enabled
model with a matching transition prior.  The skip model must track the
planted trajectories at least as well, and markedly better on the users
who actually jumped.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.metrics import score_estimates
from repro.core.training import fit_skill_model
from repro.experiments.registry import ExperimentResult, register
from repro.synth.generator import SyntheticConfig, generate_synthetic

_SIZES = {"small": (400, 2000), "full": (2000, 10000)}


@lru_cache(maxsize=None)
def _jumpy_dataset(scale: str):
    users, items = _SIZES[scale]
    return generate_synthetic(
        SyntheticConfig(
            num_users=users,
            num_items=items,
            seed=31,
            level_up_jump_weights=(0.7, 0.3),  # 30% of level-ups skip a level
        )
    )


def _accuracy(ds, model):
    truth = ds.true_skill_array()
    estimate = np.concatenate([model.skill_trajectory(seq.user) for seq in ds.log])
    return score_estimates(truth, estimate)


def _jumper_accuracy(ds, model) -> float:
    """Pearson r restricted to users whose true path contains a 2-jump."""
    truths, estimates = [], []
    for seq in ds.log:
        true_path = np.asarray(ds.true_skills[seq.user])
        if np.any(np.diff(true_path) >= 2):
            truths.append(true_path)
            estimates.append(model.skill_trajectory(seq.user))
    truth = np.concatenate(truths)
    estimate = np.concatenate(estimates)
    return score_estimates(truth, estimate).pearson


@register(
    "extension_skip",
    "Extension: skip-level progression transitions",
    "Section IV-A (progression-distribution extension)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = _jumpy_dataset(scale)
    kwargs = dict(init_min_actions=40, max_iterations=25)

    base = fit_skill_model(ds.log, ds.catalog, ds.feature_set, 5, **kwargs)
    # Transition prior matching the generator: per level-up event the jump
    # is 1 w.p. 0.7 and 2 w.p. 0.3; staying is by far the commonest move.
    skip = fit_skill_model(
        ds.log,
        ds.catalog,
        ds.feature_set,
        5,
        max_step=2,
        step_log_penalties=(0.0, float(np.log(0.7)), float(np.log(0.3))),
        **kwargs,
    )

    base_scores = _accuracy(ds, base)
    skip_scores = _accuracy(ds, skip)
    base_jumpers = _jumper_accuracy(ds, base)
    skip_jumpers = _jumper_accuracy(ds, skip)
    rows = (
        ("base (max_step=1)", *base_scores.as_row(), base_jumpers),
        ("skip (max_step=2)", *skip_scores.as_row(), skip_jumpers),
    )
    checks = {
        "skip_not_worse_overall": skip_scores.pearson >= base_scores.pearson - 0.02,
        "skip_helps_jumping_users": skip_jumpers >= base_jumpers - 0.02,
        "both_models_learn": min(base_scores.pearson, skip_scores.pearson) > 0.4,
    }
    return ExperimentResult(
        experiment_id="extension_skip",
        title=f"Extension — skip-level transitions on jumpy Synthetic (scale={scale})",
        headers=(
            "model",
            "Pearson r",
            "Spearman ρ",
            "Kendall τ",
            "RMSE",
            "r (jumping users)",
        ),
        rows=rows,
        notes=(
            "Data plants 2-level jumps on 30% of level-ups. The base model must "
            "spend extra actions climbing through skipped levels; the skip-enabled "
            "DP can follow the jump directly."
        ),
        checks=checks,
    )
