"""Table III: beer styles dominated by unskilled vs skilled users.

Paper shape: lagers (Pale Lager, Premium Lager, American Dark Lager) are
novice-dominated; strong/hoppy/sour styles (Imperial/Double IPA, Imperial
Stout, Sour Ale) are expert-dominated — consistent with McAuley &
Leskovec's acquired-taste findings, but learned *without* rating scores.
"""

from __future__ import annotations

from repro.analysis.dominance import top_dominated
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register

_NOVICE_STYLES = ("Pale Lager", "Premium Lager", "American Dark Lager", "Malt Liquor")
_EXPERT_STYLES = ("Imperial/Double IPA", "Imperial Stout", "Sour Ale/Wild Ale", "Barley Wine")


@register("table3", "Table III: beer styles by skill dominance", "Section VI-C, Table III")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    model = datasets.fitted_model("beer", scale, init_min_actions=30, max_iterations=30)
    unskilled, skilled = top_dominated(model, "style", k=10)

    rows = []
    for pos in range(max(len(unskilled), len(skilled))):
        left = unskilled[pos] if pos < len(unskilled) else None
        right = skilled[pos] if pos < len(skilled) else None
        rows.append(
            (
                left.value if left else "",
                left.score if left else "",
                right.value if right else "",
                right.score if right else "",
            )
        )

    unskilled_values = {e.value for e in unskilled}
    skilled_values = {e.value for e in skilled}
    checks = {
        "lagers_novice_dominated": any(s in unskilled_values for s in _NOVICE_STYLES),
        "strong_styles_expert_dominated": any(s in skilled_values for s in _EXPERT_STYLES),
        "pale_lager_most_novice": bool(unskilled) and unskilled[0].value == "Pale Lager",
    }
    return ExperimentResult(
        experiment_id="table3",
        title=f"Table III — top beer styles by dominance (scale={scale})",
        headers=("unskilled style", "score", "skilled style", "score"),
        rows=tuple(rows),
        notes="Paper: Pale Lager most novice-dominated (−0.123); Imperial/Double IPA most expert-dominated (+0.056).",
        checks=checks,
    )
