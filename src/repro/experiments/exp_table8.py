"""Table VIII: skill accuracy on Synthetic_dense (data-sparsity study).

Synthetic_dense has one fifth the items of Synthetic, so every item is
selected ~5× more often.  Paper shape: the model ordering is unchanged
(Multi-faceted > ID > Uniform), but the Multi-faceted-over-ID gap shrinks
dramatically (Δr = 0.004 dense vs 0.320 sparse) — the multi-faceted
features matter most when item IDs are sparse.
"""

from __future__ import annotations

from repro.experiments import accuracy, datasets
from repro.experiments.registry import ExperimentResult, register

_MODELS = ("Uniform", "ID", "Multi-faceted")


@register("table8", "Table VIII: skill accuracy on Synthetic_dense", "Section VI-D, Table VIII")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    dense = datasets.dataset("synthetic_dense", scale)
    dense_suite = accuracy.skill_model_suite("synthetic_dense", scale)
    dense_scores = {
        name: accuracy.skill_accuracy(dense, dense_suite[name]) for name in _MODELS
    }

    sparse = datasets.dataset("synthetic", scale)
    sparse_suite = accuracy.skill_model_suite("synthetic", scale)
    sparse_scores = {
        name: accuracy.skill_accuracy(sparse, sparse_suite[name]) for name in _MODELS
    }

    rows = tuple((name, *dense_scores[name].as_row()) for name in _MODELS)
    dense_gap = dense_scores["Multi-faceted"].pearson - dense_scores["ID"].pearson
    sparse_gap = sparse_scores["Multi-faceted"].pearson - sparse_scores["ID"].pearson
    checks = {
        "ordering_unchanged": (
            dense_scores["Multi-faceted"].pearson
            >= dense_scores["ID"].pearson
            > dense_scores["Uniform"].pearson
        ),
        "id_much_stronger_when_dense": dense_scores["ID"].pearson
        > sparse_scores["ID"].pearson + 0.1,
        "multi_vs_id_gap_shrinks": dense_gap < sparse_gap,
    }
    return ExperimentResult(
        experiment_id="table8",
        title=f"Table VIII — skill accuracy on Synthetic_dense (scale={scale})",
        headers=("Model", "Pearson r", "Spearman ρ", "Kendall τ", "RMSE"),
        rows=rows,
        notes=(
            f"Multi-faceted−ID gap in r: {dense_gap:.3f} dense vs {sparse_gap:.3f} sparse "
            "(paper: 0.004 vs 0.320) — the features pay off under sparsity."
        ),
        checks=checks,
    )
