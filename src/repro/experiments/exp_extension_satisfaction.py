"""Extension: satisfaction-weighted training (paper Section VII).

The cooking domain's novice-overreach anomaly (Figure 5) contaminates the
lowest level's distributions with too-difficult recipes; the paper's
proposed remedy is to estimate per-action satisfaction and fold it into
the skill model.  Here the cooking simulator emits a satisfaction rating
(high when within ability, low when overreaching), and we compare:

- the **base** trainer, which weighs every action equally, with
- the **satisfaction-weighted** trainer, which down-weights unsatisfying
  actions in the update step.

Two effects are checked: the Figure 5 anomaly (level 1 looking like a
medium level) shrinks, and the generation-based item-difficulty estimates
get closer to ground truth — unskilled users' failed attempts no longer
drag hard recipes' difficulty down.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.metrics import score_estimates
from repro.core.difficulty import PRIOR_EMPIRICAL, generation_difficulty
from repro.core.satisfaction import SatisfactionConfig, fit_satisfaction_model
from repro.core.training import fit_skill_model
from repro.experiments.registry import ExperimentResult, register
from repro.synth.cooking import CookingConfig, generate_cooking

_SIZES = {"small": (400, 1500), "full": (1500, 8000)}


@lru_cache(maxsize=None)
def _overreach_dataset(scale: str):
    users, items = _SIZES[scale]
    return generate_cooking(
        CookingConfig(num_users=users, num_items=items, seed=47, novice_overreach=0.5)
    )


def _anomaly_size(model) -> float:
    """How much harder level 1's recipes look than level 2's (mean steps).

    Positive = the Figure 5 anomaly is present; ~0 = clean monotone shape.
    """
    means = model.feature_level_means("num_steps")
    return float(means[0] - means[1])


def _difficulty_accuracy(ds, model):
    estimates = generation_difficulty(model, prior=PRIOR_EMPIRICAL)
    selected = sorted(ds.log.selected_items, key=str)
    truth = np.asarray([ds.true_difficulty[i] for i in selected])
    values = np.asarray([estimates[i] for i in selected])
    return score_estimates(truth, values)


@register(
    "extension_satisfaction",
    "Extension: satisfaction-weighted training",
    "Section VII (user-satisfaction modelling)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = _overreach_dataset(scale)
    kwargs = dict(init_min_actions=15, max_iterations=25)

    base = fit_skill_model(ds.log, ds.catalog, ds.feature_set, 5, **kwargs)
    weighted = fit_satisfaction_model(
        ds.log,
        ds.catalog,
        ds.feature_set,
        SatisfactionConfig(num_levels=5, init_min_actions=15, max_iterations=25),
    )

    base_anomaly = _anomaly_size(base)
    weighted_anomaly = _anomaly_size(weighted)
    base_difficulty = _difficulty_accuracy(ds, base)
    weighted_difficulty = _difficulty_accuracy(ds, weighted)
    rows = (
        ("base (unweighted)", base_anomaly, *base_difficulty.as_row()),
        ("satisfaction-weighted", weighted_anomaly, *weighted_difficulty.as_row()),
    )
    checks = {
        "anomaly_shrinks": weighted_anomaly < base_anomaly,
        "difficulty_estimates_improve": weighted_difficulty.rmse
        <= base_difficulty.rmse + 0.01,
        "base_shows_the_anomaly": base_anomaly > 0.5,
    }
    return ExperimentResult(
        experiment_id="extension_satisfaction",
        title=f"Extension — satisfaction-weighted training on Cooking (scale={scale})",
        headers=(
            "trainer",
            "level1−level2 steps gap",
            "difficulty r",
            "difficulty ρ",
            "difficulty τ",
            "difficulty RMSE",
        ),
        rows=rows,
        notes=(
            "The anomaly column is the Figure 5 signature (mean recipe steps at "
            "level 1 minus level 2; positive = novices look like mid-level cooks). "
            "Down-weighting unsatisfying actions should shrink it and sharpen the "
            "difficulty estimates."
        ),
        checks=checks,
    )
