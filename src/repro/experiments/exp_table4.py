"""Table IV: top movies per level *without* lastness preprocessing.

The paper shows that on raw MovieLens data the top movies of the lowest
learned level are 1980s titles and those of the highest level 2000s
titles: the model has latched onto release-date drift (the lastness
effect), not appreciation skill.

Our film simulator injects the same recency preference, so the
reproducible signature is: **the mean release year of the top items rises
with the learned level**, while ground-truth difficulty shows no clean
rise.  (Table V repeats the analysis after preprocessing.)
"""

from __future__ import annotations

from repro.analysis.interpret import top_items_summary
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register


def film_level_summaries(model, catalog, k: int = 10):
    """Top-k metadata aggregates per level, shared with Table V."""
    return [
        top_items_summary(
            model, level, k, catalog=catalog, metadata_keys=("year", "difficulty")
        )
        for level in range(1, model.num_levels + 1)
    ]


@register("table4", "Table IV: top movies per level (no preprocessing)", "Section VI-C, Table IV")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = datasets.dataset("film", scale)
    model = datasets.fitted_model("film", scale, init_min_actions=20, max_iterations=30)
    summaries = film_level_summaries(model, ds.catalog)

    rows = tuple(
        (
            s.level,
            s.mean_metadata["year"],
            s.mean_metadata["difficulty"],
            ", ".join(str(i) for i in s.items[:3]),
        )
        for s in summaries
    )
    years = [s.mean_metadata["year"] for s in summaries]
    checks = {
        # The lastness signature: the top level's favourites are released
        # much later than the bottom level's.
        "release_year_drifts_upward": years[-1] - years[0] > 3.0,
    }
    return ExperimentResult(
        experiment_id="table4",
        title=f"Table IV — top movies per level, raw data (scale={scale})",
        headers=("Level", "mean release year", "mean true difficulty", "top items"),
        rows=rows,
        notes=(
            "Paper: lowest level dominated by 1980s titles, highest by 2000s — "
            "temporal drift mistaken for skill."
        ),
        checks=checks,
    )
