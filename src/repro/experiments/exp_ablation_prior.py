"""Ablation: uniform vs empirical difficulty prior under skill skew.

Section V-B.2 argues the uniform prior misestimates difficulty "for such
domains where the skill distribution is skewed" and proposes the empirical
prior.  The paper never isolates this; here we generate two synthetic
datasets differing only in their initial-skill distribution — uniform vs
heavily bottom-skewed — and compare the two generation-based estimators on
each.  The empirical prior's edge should *grow* with skew.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.training import fit_skill_model
from repro.experiments import accuracy, datasets
from repro.experiments.registry import ExperimentResult, register
from repro.synth.generator import SyntheticConfig, generate_synthetic

_SKEWED_WEIGHTS = (0.70, 0.15, 0.08, 0.05, 0.02)

_SIZES = {"small": (400, 2000), "full": (2000, 10000)}


@lru_cache(maxsize=None)
def _dataset(scale: str, skewed: bool):
    users, items = _SIZES[scale]
    return generate_synthetic(
        SyntheticConfig(
            num_users=users,
            num_items=items,
            seed=23,
            start_level_weights=_SKEWED_WEIGHTS if skewed else None,
        )
    )


@register(
    "ablation_prior",
    "Ablation: uniform vs empirical difficulty prior under skew",
    "Section V-B.2 (empirical prior motivation)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    rows = []
    rmse = {}
    for label, skewed in (("uniform skills", False), ("skewed skills", True)):
        ds = _dataset(scale, skewed)
        model = fit_skill_model(
            ds.log, ds.catalog, ds.feature_set, 5, init_min_actions=40, max_iterations=25
        )
        for method in ("Uniform", "Empirical"):
            scores, _ = accuracy.difficulty_accuracy(ds, model, method)
            rmse[(label, method)] = scores.rmse
            rows.append((label, method, *scores.as_row()))

    uniform_gap = rmse[("uniform skills", "Uniform")] - rmse[("uniform skills", "Empirical")]
    skewed_gap = rmse[("skewed skills", "Uniform")] - rmse[("skewed skills", "Empirical")]
    checks = {
        # The empirical prior must never lose to the uniform prior by more
        # than noise, in either population.  (Its *absolute* edge is small
        # whenever item features are informative — the likelihood then
        # dominates the posterior and the prior barely matters, which is
        # also why the paper's own Table VII gap is only 0.921 vs 0.920.)
        "empirical_never_worse_uniform_pop": rmse[("uniform skills", "Empirical")]
        <= rmse[("uniform skills", "Uniform")] + 0.01,
        "empirical_never_worse_skewed_pop": rmse[("skewed skills", "Empirical")]
        <= rmse[("skewed skills", "Uniform")] + 0.01,
    }
    return ExperimentResult(
        experiment_id="ablation_prior",
        title=f"Ablation — difficulty prior under skill skew (scale={scale})",
        headers=("population", "prior", "Pearson r", "Spearman ρ", "Kendall τ", "RMSE"),
        rows=tuple(rows),
        notes=(
            "Skewed population: 70% of users start at level 1 "
            f"(weights {_SKEWED_WEIGHTS}). RMSE gap (uniform − empirical prior): "
            f"{uniform_gap:+.4f} in the uniform population, {skewed_gap:+.4f} under skew. "
            "Finding: the empirical prior never hurts, but with informative item "
            "features the likelihood dominates the posterior, so the prior's edge "
            "is small even under heavy skew — matching the paper's own hair-width "
            "Table VII margin (0.921 vs 0.920)."
        ),
        checks=checks,
    )
