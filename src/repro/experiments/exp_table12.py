"""Table XII: rating prediction on the beer domain with FFMs.

Paper shape (RMSE, lower is better): adding skill levels (U+I+S) or item
difficulties (U+I+D) to the matrix-factorization baseline (U+I) helps, and
combining both (U+I+S+D) is best in both holdout settings — skill and
difficulty carry complementary signal.  The absolute gaps are small
(0.572 → 0.568 random, 0.571 → 0.561 last), so the checks require the
combined model to beat the baseline and the singles not to hurt much.
"""

from __future__ import annotations

from repro.analysis.metrics import paired_wilcoxon
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register
from repro.recsys.ffm import FFMConfig
from repro.recsys.rating import run_rating_task

_FFM = {"small": FFMConfig(num_factors=6, epochs=12, seed=5), "full": FFMConfig(seed=5)}


@register("table12", "Table XII: beer rating prediction (FFM)", "Section VI-E, Table XII")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = datasets.dataset("beer", scale)
    rows = []
    rmse: dict[tuple[str, str], float] = {}
    significance = {}
    for holdout in ("random", "last"):
        result = run_rating_task(
            ds.log,
            ds.catalog,
            ds.feature_set,
            datasets.NUM_LEVELS["beer"],
            holdout=holdout,
            seed=5,
            ffm_config=_FFM[scale],
            init_min_actions=30,
            max_iterations=25,
        )
        for variant, value in result.rmse.items():
            rmse[(holdout, variant)] = value
        p_value, significant = paired_wilcoxon(
            result.squared_errors["U+I+S+D"],
            result.squared_errors["U+I"],
            num_comparisons=2,
        )
        significance[holdout] = (p_value, significant)
        rows.append(
            (
                "beer",
                holdout,
                result.rmse["U+I"],
                result.rmse["U+I+S"],
                result.rmse["U+I+D"],
                result.rmse["U+I+S+D"],
            )
        )

    # The paper also ran the task on Film but omitted the numbers "due to
    # space limitation"; we report them as informational rows (no checks —
    # the paper published no shape to verify against).
    film = datasets.dataset("film", scale)
    for holdout in ("random", "last"):
        result = run_rating_task(
            film.log,
            film.catalog,
            film.feature_set,
            datasets.NUM_LEVELS["film"],
            holdout=holdout,
            seed=5,
            ffm_config=_FFM[scale],
            init_min_actions=20,
            max_iterations=25,
        )
        rows.append(
            (
                "film*",
                holdout,
                result.rmse["U+I"],
                result.rmse["U+I+S"],
                result.rmse["U+I+D"],
                result.rmse["U+I+S+D"],
            )
        )

    checks = {
        "combined_beats_baseline_random": rmse[("random", "U+I+S+D")]
        < rmse[("random", "U+I")],
        "combined_beats_baseline_last": rmse[("last", "U+I+S+D")] < rmse[("last", "U+I")],
        "side_features_do_not_hurt": all(
            rmse[(h, v)] < rmse[(h, "U+I")] * 1.03
            for h in ("random", "last")
            for v in ("U+I+S", "U+I+D")
        ),
    }
    return ExperimentResult(
        experiment_id="table12",
        title=f"Table XII — rating prediction RMSE (scale={scale})",
        headers=("Dataset", "Position", "U+I", "U+I+S", "U+I+D", "U+I+S+D"),
        rows=tuple(rows),
        notes=(
            "Paper (Beer): random 0.572/0.569/0.569/0.568, last 0.571/0.562/0.568/0.561. "
            f"Wilcoxon U+I+S+D vs U+I on Beer: random p={significance['random'][0]:.3f}, "
            f"last p={significance['last'][0]:.3f}. Film rows (*) are informational: the "
            "paper ran them but omitted the numbers for space, so no published shape exists."
        ),
        checks=checks,
    )
