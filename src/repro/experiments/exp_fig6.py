"""Figure 6: ABV distributions per skill level in the beer domain.

The paper finds skilled users prefer stronger beers: the learned gamma
means climb from 5.85% ABV at level 1 to 7.46% at level 5.  We fit on the
simulated RateBeer data and check the same monotone drift.
"""

from __future__ import annotations

from repro.analysis.interpret import feature_trend
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register


@register("fig6", "Figure 6: beer ABV distributions per skill level", "Section VI-C, Figure 6")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    model = datasets.fitted_model("beer", scale, init_min_actions=30, max_iterations=30)
    abv = feature_trend(model, "abv")
    rows = tuple((level, abv.means[level - 1]) for level in range(1, model.num_levels + 1))
    checks = {
        "abv_rises_low_to_high": abv.means[-1] > abv.means[0],
        # The drift should be substantive, not sampling noise: the paper's
        # gap is ~1.6 points of ABV; ask for at least half a point here.
        "abv_gap_substantive": abv.means[-1] - abv.means[0] > 0.5,
    }
    return ExperimentResult(
        experiment_id="fig6",
        title=f"Figure 6 — mean ABV per skill level (scale={scale})",
        headers=("Level", "ABV mean (%)"),
        rows=rows,
        notes="Paper: mean ABV 5.846 at s=1 rising to 7.460 at s=5.",
        checks=checks,
    )
