"""Table VI: skill-assignment accuracy on the Synthetic dataset.

Paper numbers (Pearson's r): Uniform 0.345, ID 0.499, ID+categorical
0.651, ID+gamma 0.676, ID+Poisson 0.759, Multi-faceted 0.819 — each added
feature helps, and the full model wins on every measure.  We check the
ladder's ordering and report the multi-faceted model's bootstrap CI, as
the paper does.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import bootstrap_ci, paired_wilcoxon
from repro.experiments import accuracy, datasets
from repro.experiments.registry import ExperimentResult, register


@register("table6", "Table VI: skill accuracy on Synthetic", "Section VI-D, Table VI")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = datasets.dataset("synthetic", scale)
    suite = accuracy.skill_model_suite("synthetic", scale)
    scores = {name: accuracy.skill_accuracy(ds, model) for name, model in suite.items()}

    rows = tuple(
        (name, *scores[name].as_row()) for name in accuracy.SKILL_MODELS
    )
    truth = ds.true_skill_array().astype(np.float64)
    multi_est = np.concatenate(
        [suite["Multi-faceted"].skill_trajectory(seq.user) for seq in ds.log]
    ).astype(np.float64)
    uniform_est = np.concatenate(
        [suite["Uniform"].skill_trajectory(seq.user) for seq in ds.log]
    ).astype(np.float64)
    id_est = np.concatenate(
        [suite["ID"].skill_trajectory(seq.user) for seq in ds.log]
    ).astype(np.float64)
    ci_low, ci_high = bootstrap_ci(truth, multi_est, num_resamples=200, seed=3)
    p_vs_id, sig_id = paired_wilcoxon(
        (truth - multi_est) ** 2, (truth - id_est) ** 2, num_comparisons=2
    )
    p_vs_uniform, sig_uniform = paired_wilcoxon(
        (truth - multi_est) ** 2, (truth - uniform_est) ** 2, num_comparisons=2
    )

    pearson = {name: scores[name].pearson for name in accuracy.SKILL_MODELS}
    checks = {
        "multi_beats_id": pearson["Multi-faceted"] > pearson["ID"],
        "id_beats_uniform": pearson["ID"] > pearson["Uniform"],
        "each_feature_helps": all(
            pearson[name] > pearson["ID"]
            for name in ("ID+categorical", "ID+gamma", "ID+Poisson")
        ),
        "multi_best_on_all_measures": all(
            scores["Multi-faceted"].as_row()[c] >= max(
                scores[name].as_row()[c] for name in accuracy.SKILL_MODELS[:-1]
            )
            for c in range(3)  # the three correlations (higher is better)
        )
        and scores["Multi-faceted"].rmse
        <= min(scores[name].rmse for name in accuracy.SKILL_MODELS[:-1]),
        "improvement_significant": sig_id and sig_uniform,
    }
    return ExperimentResult(
        experiment_id="table6",
        title=f"Table VI — skill accuracy on Synthetic (scale={scale})",
        headers=("Model", "Pearson r", "Spearman ρ", "Kendall τ", "RMSE"),
        rows=rows,
        notes=(
            f"Multi-faceted 95% CI of r: [{ci_low:.3f}, {ci_high:.3f}] "
            f"(paper: [0.818, 0.820]). Wilcoxon vs ID p={p_vs_id:.2e}, "
            f"vs Uniform p={p_vs_uniform:.2e} (Bonferroni-corrected)."
        ),
        checks=checks,
    )
