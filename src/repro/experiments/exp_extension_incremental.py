"""Extension: incremental fold-in vs full retraining.

A deployed upskilling recommender sees actions continuously; retraining
from scratch per batch wastes the very independence structure the paper's
Section IV-C exploits.  :func:`repro.core.incremental.extend_model`
re-assigns only the users whose sequences changed (parameters frozen).

Setup: train on the first 80% of each user's sequence, then deliver the
remaining actions as a batch.  Compare (a) frozen-Θ fold-in and (b) a full
retrain on wall-clock and skill accuracy over the complete log.  Expected
shape: fold-in is several times faster and lands within a few points of
the retrain's accuracy.
"""

from __future__ import annotations

import time
from functools import lru_cache

import numpy as np

from repro.analysis.metrics import score_estimates
from repro.core.incremental import extend_model
from repro.core.training import fit_skill_model
from repro.data.actions import ActionLog, ActionSequence
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register

_TRAIN_FRACTION = 0.8


@lru_cache(maxsize=None)
def _split(scale: str):
    ds = datasets.dataset("synthetic", scale)
    head_sequences = []
    tail_actions = []
    for seq in ds.log:
        cut = max(1, int(len(seq) * _TRAIN_FRACTION))
        head_sequences.append(ActionSequence(seq.user, seq.actions[:cut], presorted=True))
        tail_actions.extend(seq.actions[cut:])
    return ds, ActionLog(head_sequences), tail_actions


def _pearson(ds, model) -> float:
    truth = ds.true_skill_array()
    estimate = np.concatenate([model.skill_trajectory(seq.user) for seq in ds.log])
    return score_estimates(truth, estimate).pearson


@register(
    "extension_incremental",
    "Extension: incremental fold-in vs full retrain",
    "Section IV-C (dependency structure) / deployment consideration",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds, head_log, tail_actions = _split(scale)
    kwargs = dict(init_min_actions=40, max_iterations=25)

    base = fit_skill_model(head_log, ds.catalog, ds.feature_set, 5, **kwargs)

    start = time.perf_counter()
    folded, _ = extend_model(base, head_log, tail_actions)
    fold_time = time.perf_counter() - start

    start = time.perf_counter()
    retrained = fit_skill_model(ds.log, ds.catalog, ds.feature_set, 5, **kwargs)
    retrain_time = time.perf_counter() - start

    r_fold = _pearson(ds, folded)
    r_retrain = _pearson(ds, retrained)
    rows = (
        ("fold-in (frozen Θ)", fold_time, r_fold),
        ("full retrain", retrain_time, r_retrain),
    )
    checks = {
        "fold_in_faster": fold_time < retrain_time,
        "fold_in_accuracy_close": r_fold > r_retrain - 0.05,
    }
    return ExperimentResult(
        experiment_id="extension_incremental",
        title=f"Extension — absorbing the last 20% of actions (scale={scale})",
        headers=("strategy", "time (s)", "skill accuracy r (full log)"),
        rows=rows,
        notes=(
            f"{len(tail_actions)} arriving actions. Fold-in re-runs one DP per "
            "touched user under frozen parameters; the retrain redoes everything. "
            "Accuracy is measured over the complete log against ground truth."
        ),
        checks=checks,
    )
