"""Shared dataset construction for the experiment suite.

Centralizes two things:

- **Scale presets** — each domain's generator config at ``"small"``
  (seconds per experiment; used by tests and benchmarks) and ``"full"``
  (minutes; closer to the paper's shape).  Paper-exact sizes are one
  config away (``SyntheticConfig.paper_scale()``) but deliberately not a
  preset: they need hours, not minutes.
- **Per-process caching** — several experiments reuse the same dataset
  and the same fitted model; generating/fitting once per process keeps the
  whole suite fast without any cross-run state.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.model import SkillModel
from repro.core.training import fit_skill_model
from repro.exceptions import ConfigurationError
from repro.synth import (
    BeerConfig,
    CookingConfig,
    FilmConfig,
    LanguageConfig,
    SimulatedDataset,
    SyntheticConfig,
    generate_beer,
    generate_cooking,
    generate_film,
    generate_language,
    generate_synthetic,
)

__all__ = ["dataset", "fitted_model", "NUM_LEVELS"]

#: Paper skill counts per domain (Section VI-B).
NUM_LEVELS = {
    "language": 3,
    "cooking": 5,
    "beer": 5,
    "film": 5,
    "synthetic": 5,
    "synthetic_dense": 5,
}

_CONFIGS = {
    "small": {
        "synthetic": SyntheticConfig(num_users=400, num_items=2000, seed=11),
        "synthetic_dense": SyntheticConfig(num_users=400, num_items=2000, seed=11).dense(),
        "language": LanguageConfig(num_users=400, seed=11),
        "cooking": CookingConfig(num_users=400, num_items=1500, seed=11),
        "beer": BeerConfig(num_users=120, num_items=500, mean_sequence_length=80, seed=11),
        "film": FilmConfig(num_users=200, num_items=500, mean_sequence_length=40, seed=11),
    },
    "full": {
        "synthetic": SyntheticConfig(num_users=2000, num_items=10000, seed=11),
        "synthetic_dense": SyntheticConfig(num_users=2000, num_items=10000, seed=11).dense(),
        "language": LanguageConfig(num_users=2000, seed=11),
        "cooking": CookingConfig(num_users=1500, num_items=8000, seed=11),
        "beer": BeerConfig(num_users=400, num_items=1500, mean_sequence_length=150, seed=11),
        "film": FilmConfig(num_users=800, num_items=1200, mean_sequence_length=80, seed=11),
    },
}

_GENERATORS = {
    "synthetic": generate_synthetic,
    "synthetic_dense": generate_synthetic,
    "language": generate_language,
    "cooking": generate_cooking,
    "beer": generate_beer,
    "film": generate_film,
}


@lru_cache(maxsize=None)
def dataset(name: str, scale: str = "small") -> SimulatedDataset:
    """The named simulated dataset at the given scale (cached)."""
    try:
        config = _CONFIGS[scale][name]
    except KeyError:
        raise ConfigurationError(
            f"no dataset {name!r} at scale {scale!r}; "
            f"known: {sorted(_CONFIGS['small'])} × {sorted(_CONFIGS)}"
        ) from None
    ds = _GENERATORS[name](config)
    if name == "synthetic_dense":
        # generate_synthetic names both variants "synthetic"; retag.
        ds = SimulatedDataset(
            name="synthetic_dense",
            log=ds.log,
            catalog=ds.catalog,
            feature_set=ds.feature_set,
            true_skills=ds.true_skills,
            true_difficulty=ds.true_difficulty,
        )
    return ds


@lru_cache(maxsize=None)
def fitted_model(name: str, scale: str = "small", **trainer_kwargs) -> SkillModel:
    """The multi-faceted model fitted on the named dataset (cached).

    ``trainer_kwargs`` must be hashable; they participate in the cache key.
    """
    ds = dataset(name, scale)
    return fit_skill_model(
        ds.log, ds.catalog, ds.feature_set, NUM_LEVELS[name], **trainer_kwargs
    )
