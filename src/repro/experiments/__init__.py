"""Experiment suite: one registered runner per paper table/figure.

``load_all()`` imports every experiment module so the registry is
populated; the registry module calls it lazily on first lookup.
"""

import importlib

_EXPERIMENT_MODULES = (
    "exp_table1",
    "exp_fig3",
    "exp_fig4",
    "exp_table2",
    "exp_fig5",
    "exp_fig6",
    "exp_table3",
    "exp_table4",
    "exp_table5",
    "exp_table6",
    "exp_table7",
    "exp_table8",
    "exp_table9",
    "exp_table10",
    "exp_table11",
    "exp_table12",
    "exp_table13",
    "exp_fig7",
    "exp_ablation_hard_vs_soft",
    "exp_ablation_smoothing",
    "exp_ablation_init",
    "exp_ablation_prior",
    "exp_extension_skip",
    "exp_extension_forgetting",
    "exp_extension_satisfaction",
    "exp_extension_markov",
    "exp_extension_upskill",
    "exp_extension_scaling",
    "exp_extension_incremental",
)

_loaded = False


def load_all() -> None:
    """Import every experiment module (idempotent)."""
    global _loaded
    if _loaded:
        return
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(f"repro.experiments.{module}")
    _loaded = True


from repro.experiments.registry import (  # noqa: E402  (re-export after loader)
    Experiment,
    ExperimentResult,
    all_experiments,
    get_experiment,
    run_experiment,
)

__all__ = [
    "load_all",
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "run_experiment",
]
