"""Table X: item prediction at random positions (missing-data recovery).

Paper shape: Multi-faceted > ID > Uniform on Acc@10 and RR across Cooking,
Beer, and Film; the margin is largest on Cooking, the domain with the most
items per action (sparsest IDs); everything beats random guessing by a
wide margin.
"""

from __future__ import annotations

from repro.experiments import datasets, prediction
from repro.experiments.registry import ExperimentResult, register
from repro.recsys.ranking import random_guess_expectation


def _rows_and_checks(scale: str, holdout: str):
    rows = []
    acc = {}
    rr = {}
    for domain in prediction.DOMAINS:
        results = prediction.item_prediction_results(domain, scale, holdout)
        num_items = len(datasets.dataset(domain, scale).catalog)
        rand_acc, rand_rr = random_guess_expectation(num_items)
        for model in prediction.MODELS:
            result = results[model]
            acc[(domain, model)] = result.acc_at_10
            rr[(domain, model)] = result.mean_reciprocal_rank
            rows.append(
                (domain, model, result.acc_at_10, result.mean_reciprocal_rank, rand_acc, rand_rr)
            )
    checks = {
        "multi_beats_uniform_everywhere": all(
            rr[(d, "Multi-faceted")] > rr[(d, "Uniform")] for d in prediction.DOMAINS
        ),
        "multi_at_least_id_on_rr": all(
            rr[(d, "Multi-faceted")] >= rr[(d, "ID")] * 0.95 for d in prediction.DOMAINS
        ),
        "multi_beats_id_on_cooking": rr[("cooking", "Multi-faceted")]
        > rr[("cooking", "ID")],
        "beats_random_guessing": all(
            acc[(d, "Multi-faceted")]
            > random_guess_expectation(len(datasets.dataset(d, scale).catalog))[0]
            for d in prediction.DOMAINS
        ),
    }
    return tuple(rows), checks


@register("table10", "Table X: item prediction at random positions", "Section VI-E, Table X")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    rows, checks = _rows_and_checks(scale, "random")
    return ExperimentResult(
        experiment_id="table10",
        title=f"Table X — item prediction at random positions (scale={scale})",
        headers=("Dataset", "Model", "Acc@10", "RR", "random Acc@10", "random RR"),
        rows=rows,
        notes=(
            "Paper (random): Cooking Multi 0.073/0.035 vs ID 0.050/0.024 vs Uniform "
            "0.023/0.011; largest margins on the sparsest domain."
        ),
        checks=checks,
    )
