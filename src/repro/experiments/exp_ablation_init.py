"""Ablation: initialization threshold N (the ``U_{≥N}`` rule).

The paper initializes parameters from the uniform-segmented sequences of
users with at least N = 50 actions, arguing long sequences are likelier to
traverse every level.  This ablation sweeps N: initializing from *all*
sequences (N = 1) pollutes the segments with short sequences that never
left level 1, while an extreme N leaves almost no initialization data —
the middle of the sweep should be as good or better than the extremes.
"""

from __future__ import annotations

from repro.core.training import fit_skill_model
from repro.experiments import accuracy, datasets
from repro.experiments.registry import ExperimentResult, register

_THRESHOLDS = (1, 10, 25, 50, 75)


@register(
    "ablation_init",
    "Ablation: initialization threshold N sweep",
    "Section IV-B (U_{≥N} initialization)",
)
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = datasets.dataset("synthetic", scale)
    rows = []
    pearson = {}
    for threshold in _THRESHOLDS:
        model = fit_skill_model(
            ds.log,
            ds.catalog,
            ds.feature_set,
            5,
            init_min_actions=threshold,
            max_iterations=25,
        )
        scores = accuracy.skill_accuracy(ds, model)
        pearson[threshold] = scores.pearson
        rows.append((threshold, *scores.as_row()))

    best = max(pearson.values())
    checks = {
        # The paper's default regime (N around the mean sequence length)
        # must be competitive with the best threshold in the sweep.
        "paper_regime_competitive": max(pearson[25], pearson[50]) >= best - 0.05,
        "all_runs_learn_something": min(pearson.values()) > 0.2,
    }
    return ExperimentResult(
        experiment_id="ablation_init",
        title=f"Ablation — init threshold N sweep on Synthetic (scale={scale})",
        headers=("N", "Pearson r", "Spearman ρ", "Kendall τ", "RMSE"),
        rows=tuple(rows),
        notes="Paper uses N = 50 (Shin et al.'s setting); sequences average ~50 actions.",
        checks=checks,
    )
