"""Table II: correction rules dominated by unskilled vs skilled learners.

The paper ranks correction rules by the probability gap between the
highest and lowest skill level.  Capitalization/punctuation fixes
("i"→"I", ε→".") dominate novices; article-usage fixes and annotator
bracket insertions (ε→"the", ε→"(", "a"→"the") dominate the skilled.

The simulator plants those rule-frequency gradients (see
``repro.synth.language.CORRECTION_RULES``); the test is whether the model
*recovers* them from sequences alone.
"""

from __future__ import annotations

from repro.analysis.dominance import top_dominated
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register

#: Rules the paper reports and the simulator plants, used as shape checks.
_NOVICE_MARKERS = ('"i"→"I"', 'ε→"I"', 'ε→"."')
_SKILLED_MARKERS = ('ε→"the"', 'ε→"("', '"a"→"the"')


@register("table2", "Table II: correction rules by skill dominance", "Section VI-C, Table II")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    model = datasets.fitted_model(
        "language", scale, init_min_actions=15, max_iterations=30
    )
    unskilled, skilled = top_dominated(model, "rule", k=10)

    rows = []
    for pos in range(max(len(unskilled), len(skilled))):
        left = unskilled[pos] if pos < len(unskilled) else None
        right = skilled[pos] if pos < len(skilled) else None
        rows.append(
            (
                left.value if left else "",
                left.score if left else "",
                right.value if right else "",
                right.score if right else "",
            )
        )

    unskilled_values = {entry.value for entry in unskilled}
    skilled_values = {entry.value for entry in skilled}
    checks = {
        "capitalization_rules_novice_dominated": any(
            marker in unskilled_values for marker in _NOVICE_MARKERS
        ),
        "article_rules_skilled_dominated": any(
            marker in skilled_values for marker in _SKILLED_MARKERS
        ),
        "no_overlap_between_sides": not (unskilled_values & skilled_values),
    }
    return ExperimentResult(
        experiment_id="table2",
        title=f"Table II — top corrections by dominance (scale={scale})",
        headers=("unskilled rule", "score", "skilled rule", "score"),
        rows=tuple(rows),
        notes='Paper: "i"→"I" tops the unskilled side; ε→"the" the skilled side.',
        checks=checks,
    )
