"""Table XIII: training time under different parallelization conditions.

The paper times skill-model training on Film (its biggest dataset) with
five threads, toggling the three parallel axes.  Its findings:

- the Multi-faceted model costs more than ID when serial (more
  distributions to fit and score),
- per-**user** parallel assignment is the most effective axis (assignment
  dominates the complexity), and
- per-**feature** parallelism only exists for the multi-faceted model and
  narrows the gap further; enabling everything is fastest.

We time real fits on this machine.  Absolute numbers depend on the box
(the paper reports hours on 8.5M actions; we report seconds on the
simulated Film), so the checks assert only the *relative* structure, with
slack because two-core timings are noisy.
"""

from __future__ import annotations

import time

from functools import lru_cache

from repro.core.baselines import id_feature_set
from repro.core.parallel import ParallelConfig
from repro.experiments import datasets
from repro.experiments.registry import ExperimentResult, register
from repro.synth.film import FilmConfig, generate_film

_WORKERS = 2  # matches the benchmark host; the paper used 5 threads

#: (label, user, feature, skill) — the rows of Table XIII.
CONDITIONS = (
    ("serial", False, False, False),
    ("user", True, False, False),
    ("feature", False, True, False),
    ("skill", False, False, True),
    ("all", True, True, True),
)

#: The efficiency experiments use a dedicated, larger Film instance: on the
#: small shared preset the whole assignment step takes a few ms per
#: iteration (the DP fast path is ~1 µs/action), which a process pool can
#: never beat; timing needs enough work per iteration for parallelism to
#: show its shape.
_TIMING_CONFIGS = {
    "small": FilmConfig(num_users=500, num_items=400, mean_sequence_length=250, seed=17),
    "full": FilmConfig(num_users=1500, num_items=800, mean_sequence_length=350, seed=17),
}


@lru_cache(maxsize=None)
def timing_dataset(scale: str):
    """The dedicated (larger) Film instance used by the timing experiments."""
    return generate_film(_TIMING_CONFIGS[scale])


def _fit_time(ds, feature_set, config: ParallelConfig, *, cycles: int = 5) -> float:
    """Steady-state per-iteration wall-clock under one parallel config.

    Times ``cycles`` full assignment+update iterations directly (after one
    untimed warm-up iteration that also absorbs worker-pool creation).
    Timing the steady state rather than whole fits keeps the comparison
    free of convergence-speed differences between models.
    """
    import numpy as np

    from repro.core.model import SkillParameters
    from repro.core.parallel import PoolAssigner, make_cell_fitter
    from repro.core.training import uniform_segment_levels
    from repro.obs.metrics import get_registry

    num_levels = datasets.NUM_LEVELS["film"]
    encoded = feature_set.encode(ds.catalog)
    users = list(ds.log.users)
    user_rows = [encoded.rows_for(ds.log.sequence(u).items) for u in users]
    all_rows = np.concatenate(user_rows)
    init_levels = np.concatenate(
        [uniform_segment_levels(len(rows), num_levels) for rows in user_rows]
    )
    parameters = SkillParameters.fit_from_assignments(
        encoded, all_rows, init_levels, num_levels=num_levels
    )
    cell_fitter = make_cell_fitter(config)

    # Stage timings land in the metrics registry (exp13.* histograms and
    # PoolAssigner's pool.assign_seconds), so `repro run table13
    # --metrics-out` reports measured per-stage numbers, not just totals.
    registry = get_registry()

    def one_iteration(params):
        with registry.timer("exp13.table_build_seconds"):
            table = params.item_score_table(encoded)
        paths = assigner.assign(table, user_rows)
        levels = np.concatenate([p.levels for p in paths])
        with registry.timer("exp13.cell_fit_seconds"):
            return SkillParameters.fit_from_assignments(
                encoded,
                all_rows,
                levels,
                num_levels=num_levels,
                cell_fitter=cell_fitter,
            )

    with PoolAssigner(config) as assigner:
        parameters = one_iteration(parameters)  # warm-up (pool creation etc.)
        best = float("inf")
        for _ in range(cycles):
            start = time.perf_counter()
            parameters = one_iteration(parameters)
            best = min(best, time.perf_counter() - start)
        # Minimum over cycles: the best observed time is the least
        # contaminated by scheduler contention, which matters on a box
        # this small.
        return best


@register("table13", "Table XIII: training time vs parallelization", "Section VI-F, Table XIII")
def run(scale: str = "small") -> ExperimentResult:
    """Run this experiment at the given scale (see module docstring)."""
    ds = timing_dataset(scale)
    id_features = id_feature_set()
    rows = []
    timings: dict[tuple[str, str], float] = {}
    for label, users, features, skills in CONDITIONS:
        config = ParallelConfig(
            users=users, features=features, skills=skills, workers=_WORKERS
        )
        id_time = (
            float("nan")
            if label == "feature"  # N/A in the paper: ID has a single feature
            else _fit_time(ds, id_features, config)
        )
        multi_time = _fit_time(ds, ds.feature_set, config)
        timings[(label, "ID")] = id_time
        timings[(label, "Multi-faceted")] = multi_time
        rows.append((label, users, features, skills, id_time, multi_time))

    # NOTE on leniency: unlike the paper's implementation, ours scores
    # log P(i|s) once per (item, level) table instead of once per action,
    # which amortizes the feature count out of the assignment step — so
    # the ID-vs-Multi serial gap is structurally small here, and a 2-core
    # container adds scheduler noise on top.  The checks assert the
    # directional structure with tolerances rather than the paper's ~10×
    # serial gap; the table itself carries the measured numbers.
    checks = {
        "serial_costs_same_ballpark": timings[("serial", "Multi-faceted")]
        > timings[("serial", "ID")] * 0.7,
        # User-parallel assignment must not be slower than serial by more
        # than scheduling noise; on multi-core it should win.
        "user_axis_helps_multi": timings[("user", "Multi-faceted")]
        < timings[("serial", "Multi-faceted")] * 1.15,
        "all_axes_not_worse_than_serial": timings[("all", "Multi-faceted")]
        < timings[("serial", "Multi-faceted")] * 1.15,
    }
    return ExperimentResult(
        experiment_id="table13",
        title=f"Table XIII — per-iteration training time (s) by parallel condition, {_WORKERS} workers (scale={scale})",
        headers=("condition", "user", "feature", "skill", "ID (s/iter)", "Multi-faceted (s/iter)"),
        rows=tuple(rows),
        notes=(
            "Paper (hours, 5 threads, 8.5M actions): serial 0.944/9.557; user-parallel "
            "0.425/4.272; all axes 0.374/2.814 — user parallelism is the big lever."
        ),
        checks=checks,
    )
