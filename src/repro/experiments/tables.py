"""Plain-text rendering of experiment results.

Every experiment produces rows of cells; this module renders them as an
aligned ASCII table the way the paper's tables read, so the benchmark
harness and the CLI can print directly comparable output.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ConfigurationError

__all__ = ["format_table", "format_cell"]


def format_cell(value) -> str:
    """Human formatting: floats at 3 decimals, everything else via str."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
) -> str:
    """An aligned, pipe-separated table with a rule under the header."""
    if not headers:
        raise ConfigurationError("a table needs headers")
    str_rows = [[format_cell(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in str_rows)) if str_rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
