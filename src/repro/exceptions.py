"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch one base class to handle any library failure::

    try:
        model.fit(log)
    except ReproError as exc:
        ...

The hierarchy is deliberately shallow.  Each subclass marks a distinct
failure *category* a caller may reasonably want to branch on, not a distinct
call site.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataError",
    "SchemaError",
    "NotFittedError",
    "ConvergenceError",
    "ConfigurationError",
    "CheckpointError",
    "WorkerPoolError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DataError(ReproError):
    """Raised when input data is malformed or inconsistent.

    Examples: an action referencing an unknown item, an empty action log
    passed to a trainer, an unsorted sequence where chronological order is
    required.
    """


class SchemaError(DataError):
    """Raised when item feature values do not match the declared schema.

    Examples: a gamma-distributed feature receiving a non-positive value, a
    categorical feature receiving an unseen category when the vocabulary is
    closed.
    """


class NotFittedError(ReproError):
    """Raised when a model is queried before :meth:`fit` has been called."""


class ConvergenceError(ReproError):
    """Raised when an iterative optimizer fails to make progress.

    This signals a genuine defect (e.g. the objective decreased, which the
    coordinate-ascent training loop guarantees cannot happen), not merely
    hitting the iteration cap, which is reported as a normal result.
    """


class ConfigurationError(ReproError):
    """Raised when caller-supplied configuration is invalid.

    Examples: a non-positive number of skill levels, a smoothing constant
    below zero, a parallelism axis that does not exist.
    """


class CheckpointError(ReproError):
    """Raised when a training checkpoint cannot be read or applied.

    Examples: a truncated or checksum-mismatched checkpoint file, or a
    resume attempt against data that does not match the fingerprint the
    checkpoint was written for.
    """


class WorkerPoolError(ReproError):
    """Raised when the parallel worker pool is irrecoverably broken.

    Only reachable when serial fallback is disabled
    (``ParallelConfig.fallback_serial=False``): with fallback enabled, pool
    failures degrade to serial assignment and emit a warning instead.
    """
