"""Evaluation measures used throughout the paper's Section VI.

- Three correlations (Pearson's r, Spearman's ρ, Kendall's τ) and RMSE for
  scoring skill/difficulty estimates against ground truth (Tables VI-IX).
- Bootstrap confidence intervals for any of them (the paper reports 95%
  CIs of Pearson's r).
- A Wilcoxon signed-rank test on paired squared errors with Bonferroni
  correction (the paper's significance protocol).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError

__all__ = [
    "EvaluationScores",
    "score_estimates",
    "rmse",
    "bootstrap_ci",
    "paired_wilcoxon",
]


@dataclass(frozen=True)
class EvaluationScores:
    """The paper's four accuracy columns for one model."""

    pearson: float
    spearman: float
    kendall: float
    rmse: float

    def as_row(self) -> tuple[float, float, float, float]:
        """The four measures as a table row (r, ρ, τ, RMSE)."""
        return (self.pearson, self.spearman, self.kendall, self.rmse)


def rmse(truth: np.ndarray, estimate: np.ndarray) -> float:
    """Root mean squared error between matched arrays."""
    truth = np.asarray(truth, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if truth.shape != estimate.shape:
        raise ConfigurationError(f"shape mismatch: {truth.shape} vs {estimate.shape}")
    if truth.size == 0:
        raise ConfigurationError("cannot compute RMSE of empty arrays")
    return float(np.sqrt(np.mean((truth - estimate) ** 2)))


def score_estimates(truth: np.ndarray, estimate: np.ndarray) -> EvaluationScores:
    """All four measures at once.

    Degenerate inputs (either array constant) have undefined correlations;
    scipy returns NaN there, which we propagate — a constant estimator
    *should* look broken in the tables, not average.
    """
    truth = np.asarray(truth, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if truth.shape != estimate.shape:
        raise ConfigurationError(f"shape mismatch: {truth.shape} vs {estimate.shape}")
    if truth.size < 2:
        raise ConfigurationError("need at least two points for correlations")
    with warnings.catch_warnings():
        # Constant inputs yield NaN correlations by design; the warning
        # would only repeat what the NaN already says.
        warnings.simplefilter("ignore", stats.ConstantInputWarning)
        pearson = stats.pearsonr(truth, estimate).statistic
        spearman = stats.spearmanr(truth, estimate).statistic
        kendall = stats.kendalltau(truth, estimate).statistic
    return EvaluationScores(
        pearson=float(pearson),
        spearman=float(spearman),
        kendall=float(kendall),
        rmse=rmse(truth, estimate),
    )


def bootstrap_ci(
    truth: np.ndarray,
    estimate: np.ndarray,
    statistic=None,
    *,
    num_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI of a paired statistic (default: Pearson's r).

    Resamples (truth, estimate) pairs with replacement; degenerate
    resamples (constant arrays) are skipped rather than polluting the
    percentiles.
    """
    truth = np.asarray(truth, dtype=np.float64)
    estimate = np.asarray(estimate, dtype=np.float64)
    if truth.shape != estimate.shape or truth.size < 2:
        raise ConfigurationError("need matched arrays of length >= 2")
    if not 0 < confidence < 1:
        raise ConfigurationError("confidence must be in (0, 1)")
    if statistic is None:
        statistic = lambda t, e: stats.pearsonr(t, e).statistic  # noqa: E731
    rng = np.random.default_rng(seed)
    values = []
    n = truth.size
    for _ in range(num_resamples):
        idx = rng.integers(n, size=n)
        t, e = truth[idx], estimate[idx]
        if np.ptp(t) == 0 or np.ptp(e) == 0:
            continue
        values.append(statistic(t, e))
    if not values:
        raise ConfigurationError("all bootstrap resamples were degenerate")
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(values, [alpha, 1.0 - alpha])
    return float(low), float(high)


def paired_wilcoxon(
    errors_a: np.ndarray,
    errors_b: np.ndarray,
    *,
    num_comparisons: int = 1,
) -> tuple[float, bool]:
    """Wilcoxon signed-rank test on paired errors, Bonferroni-corrected.

    Returns ``(corrected p-value, significant at 0.01)``, matching the
    paper's "significant with p < 0.01 after Bonferroni correction".
    Identical pairs are dropped (scipy's ``zero_method='wilcox'``).
    """
    errors_a = np.asarray(errors_a, dtype=np.float64)
    errors_b = np.asarray(errors_b, dtype=np.float64)
    if errors_a.shape != errors_b.shape or errors_a.size < 2:
        raise ConfigurationError("need matched error arrays of length >= 2")
    if num_comparisons < 1:
        raise ConfigurationError("num_comparisons must be >= 1")
    if np.allclose(errors_a, errors_b):
        return 1.0, False
    result = stats.wilcoxon(errors_a, errors_b, zero_method="wilcox")
    p_corrected = min(1.0, float(result.pvalue) * num_comparisons)
    return p_corrected, p_corrected < 0.01
