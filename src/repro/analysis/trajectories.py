"""Trajectory analytics over fitted skill assignments.

A production upskilling system reports more than point estimates: how long
users dwell at each level, how far cohorts typically progress, and what a
"normal" learning curve looks like.  These analyses read only the fitted
model's assignments, so they apply to any trainer in the library (base,
satisfaction-weighted, forgetting-aware, EM).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import SkillModel
from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "level_dwell_times",
    "reach_rates",
    "mean_level_curve",
    "TrajectorySummary",
    "summarize_trajectories",
]


def level_dwell_times(model: SkillModel) -> dict[int, list[int]]:
    """Actions spent per visit at each level, over all users.

    A "visit" is a maximal run of consecutive actions at one level; for
    monotone trainers each level is visited at most once per user, but the
    forgetting-aware trainer can revisit.
    """
    dwell: dict[int, list[int]] = {level: [] for level in range(1, model.num_levels + 1)}
    for user in model.assignments:
        levels = model.skill_trajectory(user)
        if len(levels) == 0:
            continue
        run_level = int(levels[0])
        run_length = 0
        for level in levels:
            if int(level) == run_level:
                run_length += 1
            else:
                dwell[run_level].append(run_length)
                run_level = int(level)
                run_length = 1
        dwell[run_level].append(run_length)
    return dwell


def reach_rates(model: SkillModel) -> np.ndarray:
    """Fraction of users whose trajectory ever reaches each level 1..S."""
    if not model.assignments:
        raise DataError("model has no assignments")
    counts = np.zeros(model.num_levels, dtype=np.float64)
    for user in model.assignments:
        top = int(model.skill_trajectory(user).max())
        counts[:top] += 1
    return counts / len(model.assignments)


def mean_level_curve(model: SkillModel, num_points: int = 10) -> np.ndarray:
    """Average level at ``num_points`` normalized sequence positions.

    The population learning curve: position 0 is every user's first
    action, position 1 their last.  Users shorter than ``num_points``
    contribute via nearest-position sampling.
    """
    if num_points < 2:
        raise ConfigurationError("num_points must be >= 2")
    if not model.assignments:
        raise DataError("model has no assignments")
    grid = np.linspace(0.0, 1.0, num_points)
    total = np.zeros(num_points)
    counted = 0
    for user in model.assignments:
        levels = model.skill_trajectory(user).astype(np.float64)
        if len(levels) == 0:
            continue
        positions = np.minimum((grid * (len(levels) - 1)).round().astype(int), len(levels) - 1)
        total += levels[positions]
        counted += 1
    if counted == 0:
        raise DataError("model has no non-empty trajectories")
    return total / counted


@dataclass(frozen=True)
class TrajectorySummary:
    """Headline numbers of a fitted population."""

    num_users: int
    mean_final_level: float
    reach_rates: tuple[float, ...]
    mean_dwell_per_level: tuple[float, ...]
    level_curve: tuple[float, ...]

    @property
    def curve_is_non_decreasing(self) -> bool:
        """True when the population learning curve never dips — guaranteed
        for monotone trainers, informative for the forgetting trainer."""
        return all(b >= a - 1e-9 for a, b in zip(self.level_curve, self.level_curve[1:]))


def summarize_trajectories(model: SkillModel, *, curve_points: int = 10) -> TrajectorySummary:
    """All trajectory analytics bundled, for reports and examples."""
    dwell = level_dwell_times(model)
    finals = [int(model.skill_trajectory(user)[-1]) for user in model.assignments if len(model.skill_trajectory(user))]
    if not finals:
        raise DataError("model has no non-empty trajectories")
    return TrajectorySummary(
        num_users=len(model.assignments),
        mean_final_level=float(np.mean(finals)),
        reach_rates=tuple(float(x) for x in reach_rates(model)),
        mean_dwell_per_level=tuple(
            float(np.mean(dwell[level])) if dwell[level] else float("nan")
            for level in range(1, model.num_levels + 1)
        ),
        level_curve=tuple(float(x) for x in mean_level_curve(model, curve_points)),
    )
