"""Calibration of difficulty estimates against observed behaviour.

The paper's within-capacity assumption (Section V) predicts a diagnostic:
if difficulty estimates are calibrated, then binning items by estimated
difficulty and asking *who actually selects them* should produce a
monotone curve — harder bins drawing more-skilled selectors.  This module
computes that reliability curve, giving a ground-truth-free sanity check
usable on real domains where no true difficulty exists.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.model import SkillModel
from repro.data.actions import ActionLog
from repro.exceptions import ConfigurationError, DataError

__all__ = ["CalibrationBin", "CalibrationCurve", "difficulty_calibration"]


@dataclass(frozen=True)
class CalibrationBin:
    """One bin of the reliability curve."""

    difficulty_low: float
    difficulty_high: float
    mean_estimated_difficulty: float
    mean_selector_skill: float
    num_actions: int


@dataclass(frozen=True)
class CalibrationCurve:
    """The full reliability curve plus aggregate diagnostics."""

    bins: tuple[CalibrationBin, ...]

    @property
    def monotone_fraction(self) -> float:
        """Fraction of adjacent bin pairs where selector skill increases —
        1.0 is perfect rank calibration."""
        pairs = [
            (a.mean_selector_skill, b.mean_selector_skill)
            for a, b in zip(self.bins, self.bins[1:])
            if a.num_actions and b.num_actions
        ]
        if not pairs:
            return float("nan")
        return float(np.mean([b > a for a, b in pairs]))

    @property
    def skill_span(self) -> float:
        """Selector-skill difference between the hardest and easiest bins."""
        populated = [b for b in self.bins if b.num_actions]
        if len(populated) < 2:
            return float("nan")
        return populated[-1].mean_selector_skill - populated[0].mean_selector_skill


def difficulty_calibration(
    model: SkillModel,
    log: ActionLog,
    estimates: Mapping,
    *,
    num_bins: int = 5,
) -> CalibrationCurve:
    """Bin items by estimated difficulty; average selector skill per bin.

    ``log`` must be the training log (assignments align per user).  Items
    without an estimate raise — calibrating a partial estimator silently
    would mask exactly the coverage gap the caller should know about.
    """
    if num_bins < 2:
        raise ConfigurationError("num_bins must be >= 2")
    skills: list[float] = []
    difficulties: list[float] = []
    for seq in log:
        levels = model.skill_trajectory(seq.user)
        if len(levels) != len(seq):
            raise DataError(
                f"user {seq.user!r}: assignments do not align with the log; "
                "pass the log the model was trained on"
            )
        for action, level in zip(seq, levels):
            if action.item not in estimates:
                raise DataError(f"no difficulty estimate for item {action.item!r}")
            skills.append(float(level))
            difficulties.append(float(estimates[action.item]))
    if not skills:
        raise DataError("log contains no actions")

    skills_arr = np.asarray(skills)
    difficulty_arr = np.asarray(difficulties)
    edges = np.linspace(1.0, model.num_levels, num_bins + 1)
    bins = []
    for k in range(num_bins):
        low, high = edges[k], edges[k + 1]
        if k == num_bins - 1:
            mask = (difficulty_arr >= low) & (difficulty_arr <= high)
        else:
            mask = (difficulty_arr >= low) & (difficulty_arr < high)
        count = int(mask.sum())
        bins.append(
            CalibrationBin(
                difficulty_low=float(low),
                difficulty_high=float(high),
                mean_estimated_difficulty=float(difficulty_arr[mask].mean()) if count else float("nan"),
                mean_selector_skill=float(skills_arr[mask].mean()) if count else float("nan"),
                num_actions=count,
            )
        )
    return CalibrationCurve(bins=tuple(bins))
