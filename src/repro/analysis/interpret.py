"""Interpretation helpers for fitted skill models (paper Section VI-C).

The paper's qualitative analysis inspects, per skill level:

- the *means* of numeric feature distributions (Figures 4-6: corrections
  per annotator, cooking time/steps, ABV),
- the most probable items (Tables IV/V: top movies per level), and
- summaries of item metadata over those top items (we report mean release
  year and mean ground-truth difficulty, which is how the lastness effect
  and its fix are made measurable without eyeballing movie titles).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from repro.core.model import SkillModel
from repro.exceptions import ConfigurationError

__all__ = ["LevelTrend", "feature_trend", "TopItemsSummary", "top_items_summary"]


@dataclass(frozen=True)
class LevelTrend:
    """Per-level means of one feature, with simple monotonicity flags."""

    feature: str
    means: tuple[float, ...]

    @property
    def increasing(self) -> bool:
        """Strictly increasing across all levels (Fig. 6 ABV shape)."""
        return all(b > a for a, b in zip(self.means, self.means[1:]))

    @property
    def decreasing(self) -> bool:
        """Strictly decreasing across all levels (Fig. 4 corrections shape)."""
        return all(b < a for a, b in zip(self.means, self.means[1:]))

    @property
    def spread(self) -> float:
        """Max minus min of the per-level means — ≈0 for skill-neutral
        features like the Language sentence count."""
        return float(max(self.means) - min(self.means))


def feature_trend(model: SkillModel, feature_name: str) -> LevelTrend:
    """Per-level distribution means of a numeric or categorical feature."""
    return LevelTrend(
        feature=feature_name,
        means=tuple(model.feature_level_means(feature_name)),
    )


@dataclass(frozen=True)
class TopItemsSummary:
    """The top-k items of one level plus metadata aggregates."""

    level: int
    items: tuple[Hashable, ...]
    probabilities: tuple[float, ...]
    mean_metadata: dict[str, float]


def top_items_summary(
    model: SkillModel,
    level: int,
    k: int = 10,
    *,
    catalog=None,
    metadata_keys: tuple[str, ...] = (),
) -> TopItemsSummary:
    """Top-k items at a level, averaging the requested metadata keys.

    ``catalog`` is required when ``metadata_keys`` is non-empty; items
    missing a key are skipped in that key's mean (NaN if all are missing).
    """
    if metadata_keys and catalog is None:
        raise ConfigurationError("metadata_keys requires a catalog")
    top = model.top_items(level, k)
    items = tuple(item_id for item_id, _ in top)
    probabilities = tuple(prob for _, prob in top)
    mean_metadata: dict[str, float] = {}
    for key in metadata_keys:
        values = [
            float(catalog[item_id].metadata[key])
            for item_id in items
            if key in catalog[item_id].metadata
        ]
        mean_metadata[key] = float(np.mean(values)) if values else float("nan")
    return TopItemsSummary(
        level=level,
        items=items,
        probabilities=probabilities,
        mean_metadata=mean_metadata,
    )
