"""Evaluation metrics, interpretation, and preprocessing analyses."""

from repro.analysis.metrics import (
    EvaluationScores,
    bootstrap_ci,
    paired_wilcoxon,
    rmse,
    score_estimates,
)
from repro.analysis.dominance import DominanceEntry, dominance_scores, top_dominated
from repro.analysis.interpret import (
    LevelTrend,
    TopItemsSummary,
    feature_trend,
    top_items_summary,
)
from repro.analysis.preprocessing import LastnessStats, remove_lastness
from repro.analysis.trajectories import (
    TrajectorySummary,
    level_dwell_times,
    mean_level_curve,
    reach_rates,
    summarize_trajectories,
)
from repro.analysis.report import model_card
from repro.analysis.calibration import (
    CalibrationBin,
    CalibrationCurve,
    difficulty_calibration,
)

__all__ = [
    "EvaluationScores",
    "bootstrap_ci",
    "paired_wilcoxon",
    "rmse",
    "score_estimates",
    "DominanceEntry",
    "dominance_scores",
    "top_dominated",
    "LevelTrend",
    "TopItemsSummary",
    "feature_trend",
    "top_items_summary",
    "LastnessStats",
    "remove_lastness",
    "TrajectorySummary",
    "level_dwell_times",
    "mean_level_curve",
    "reach_rates",
    "summarize_trajectories",
    "CalibrationBin",
    "CalibrationCurve",
    "difficulty_calibration",
    "model_card",
]
