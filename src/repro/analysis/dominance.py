"""Dominance scores for categorical features (paper Tables II and III).

Following McAuley & Leskovec's acquired-taste measure, the paper contrasts
the most and least skilled users through the probability gap

    score(x) = P_f(x | θ_f(S)) − P_f(x | θ_f(1))

for each categorical value ``x`` of a feature ``f``.  Strongly negative
scores mark values dominated by unskilled users (e.g. "Pale Lager",
capitalization fixes); strongly positive ones mark values dominated by
skilled users ("Imperial/Double IPA", article-usage fixes).
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from repro.core.distributions import Categorical
from repro.core.model import SkillModel
from repro.exceptions import ConfigurationError

__all__ = ["DominanceEntry", "dominance_scores", "top_dominated"]


@dataclass(frozen=True)
class DominanceEntry:
    """One categorical value with its dominance score."""

    value: Hashable
    score: float


def dominance_scores(model: SkillModel, feature_name: str) -> list[DominanceEntry]:
    """Scores for every value of ``feature_name``, unsorted.

    Raises :class:`~repro.exceptions.ConfigurationError` if the feature is
    not categorical — dominance is only defined on category probabilities.
    """
    low = model.parameters.distribution(feature_name, 1)
    high = model.parameters.distribution(feature_name, model.num_levels)
    if not isinstance(low, Categorical) or not isinstance(high, Categorical):
        raise ConfigurationError(
            f"dominance scores need a categorical feature; {feature_name!r} is not"
        )
    vocab = model.encoded.vocabulary(feature_name)
    scores = high.probs - low.probs
    return [DominanceEntry(value=v, score=float(s)) for v, s in zip(vocab, scores)]


def top_dominated(
    model: SkillModel, feature_name: str, k: int = 10
) -> tuple[list[DominanceEntry], list[DominanceEntry]]:
    """The ``k`` most unskilled-dominated and skilled-dominated values.

    Returns ``(unskilled, skilled)``: the first list sorted by ascending
    score (most negative first, paper's left tables), the second by
    descending score (paper's right tables).
    """
    if k < 1:
        raise ConfigurationError("k must be >= 1")
    entries = dominance_scores(model, feature_name)
    by_score = sorted(entries, key=lambda e: e.score)
    unskilled = [e for e in by_score[:k] if e.score < 0]
    skilled = [e for e in reversed(by_score[-k:]) if e.score > 0]
    return unskilled, skilled
