"""Model cards: a one-stop text report for a fitted skill model.

Bundles the analyses a reviewer or operator asks for first — scale,
convergence, trajectory analytics, per-feature level trends, dominance
lists, difficulty distribution and calibration — into one markdown
document.  Used by ``python -m repro inspect`` and directly callable:

    print(model_card(model, log))
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.analysis.calibration import difficulty_calibration
from repro.analysis.dominance import top_dominated
from repro.analysis.interpret import feature_trend
from repro.analysis.trajectories import summarize_trajectories
from repro.core.difficulty import PRIOR_EMPIRICAL, generation_difficulty
from repro.core.distributions import Categorical
from repro.core.features import ID_FEATURE, FeatureKind
from repro.core.model import SkillModel
from repro.data.actions import ActionLog
from repro.exceptions import ReproError

__all__ = ["model_card"]


def _section(title: str) -> list[str]:
    return ["", f"## {title}", ""]


def model_card(
    model: SkillModel,
    log: ActionLog | None = None,
    *,
    difficulties: Mapping | None = None,
    top_k: int = 5,
) -> str:
    """Render a markdown model card.

    ``log`` enables the sections that need the training data (calibration);
    ``difficulties`` defaults to empirical-prior generation estimates.
    """
    lines: list[str] = ["# Skill model card"]

    # --- scale & convergence --------------------------------------------
    lines += _section("Training")
    lines.append(
        f"- levels: {model.num_levels}; features: {len(model.feature_set)} "
        f"({', '.join(model.feature_set.names)})"
    )
    lines.append(
        f"- items in catalog: {model.encoded.num_items}; users: {len(model.assignments)}"
    )
    lines.append(
        f"- iterations: {model.trace.num_iterations} "
        f"(converged: {model.trace.converged}); final log-likelihood "
        f"{model.log_likelihood:.1f}"
    )
    prior = model.empirical_skill_prior()
    lines.append(
        "- assigned-level distribution: "
        + ", ".join(f"L{k + 1} {p:.0%}" for k, p in enumerate(prior))
    )

    # --- telemetry --------------------------------------------------------
    if model.telemetry is not None:
        lines += _section("Telemetry")
        lines.extend(model.telemetry.summary_lines())

    # --- trajectories -----------------------------------------------------
    summary = summarize_trajectories(model)
    lines += _section("Trajectories")
    lines.append(f"- mean final level: {summary.mean_final_level:.2f}")
    lines.append(
        "- reach rates: "
        + ", ".join(f"L{k + 1} {r:.0%}" for k, r in enumerate(summary.reach_rates))
    )
    lines.append(
        "- population learning curve: "
        + " → ".join(f"{level:.2f}" for level in summary.level_curve)
    )

    # --- feature trends ----------------------------------------------------
    lines += _section("Feature trends (distribution means per level)")
    for spec in model.feature_set.specs:
        if spec.is_id:
            continue
        trend = feature_trend(model, spec.name)
        shape = "↑" if trend.increasing else ("↓" if trend.decreasing else "·")
        lines.append(
            f"- `{spec.name}` ({spec.kind.value}) {shape}: "
            + ", ".join(f"{m:.3g}" for m in trend.means)
        )

    # --- dominance ----------------------------------------------------------
    categorical = [
        spec.name
        for spec in model.feature_set.specs
        if spec.kind is FeatureKind.CATEGORICAL and not spec.is_id
    ]
    for name in categorical:
        dist = model.parameters.distribution(name, 1)
        if isinstance(dist, Categorical) and dist.num_categories > 2:
            unskilled, skilled = top_dominated(model, name, k=top_k)
            lines += _section(f"Dominance — `{name}`")
            lines.append(
                "- novice-dominated: "
                + ", ".join(f"{e.value} ({e.score:+.3f})" for e in unskilled)
            )
            lines.append(
                "- expert-dominated: "
                + ", ".join(f"{e.value} ({e.score:+.3f})" for e in skilled)
            )

    # --- difficulty ----------------------------------------------------------
    if difficulties is None:
        difficulties = generation_difficulty(model, prior=PRIOR_EMPIRICAL)
    values = np.asarray(list(difficulties.values()))
    lines += _section("Item difficulty (generation-based, empirical prior)")
    lines.append(
        f"- range [{values.min():.2f}, {values.max():.2f}], "
        f"mean {values.mean():.2f}, median {np.median(values):.2f}"
    )
    edges = np.linspace(1, model.num_levels, model.num_levels + 1)
    histogram, _ = np.histogram(values, bins=edges)
    lines.append(
        "- histogram: "
        + ", ".join(
            f"[{edges[k]:.1f},{edges[k + 1]:.1f}) {count}"
            for k, count in enumerate(histogram)
        )
    )

    if log is not None:
        try:
            curve = difficulty_calibration(model, log, difficulties)
            lines += _section("Calibration (who selects each difficulty bin?)")
            for bin_ in curve.bins:
                if bin_.num_actions:
                    lines.append(
                        f"- difficulty [{bin_.difficulty_low:.1f}, "
                        f"{bin_.difficulty_high:.1f}): mean selector skill "
                        f"{bin_.mean_selector_skill:.2f} over {bin_.num_actions} actions"
                    )
            lines.append(
                f"- monotone fraction {curve.monotone_fraction:.2f}, "
                f"skill span {curve.skill_span:.2f}"
            )
        except ReproError as exc:
            lines += _section("Calibration")
            lines.append(f"- unavailable: {exc}")

    # --- top items per level --------------------------------------------------
    if ID_FEATURE in model.feature_set.names:
        lines += _section("Most typical items per level")
        for level in (1, model.num_levels):
            top = model.top_items(level, top_k)
            lines.append(
                f"- level {level}: "
                + ", ".join(f"{item}" for item, _ in top)
            )

    return "\n".join(lines) + "\n"
