"""Confounder preprocessing (paper Section VI-C, Film).

The lastness effect — users preferring recently released items — makes a
progression model confuse release-date drift with skill.  The paper's fix:
exclude every item released *after the earliest action in the whole
dataset*, so that any remaining item could have been selected at any
observed time.  :func:`remove_lastness` implements exactly that rule
against an item-metadata release key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.actions import ActionLog
from repro.data.items import ItemCatalog
from repro.exceptions import DataError

__all__ = ["LastnessStats", "remove_lastness"]


@dataclass(frozen=True)
class LastnessStats:
    """What the preprocessing removed."""

    cutoff_time: float
    items_before: int
    items_after: int
    actions_before: int
    actions_after: int


def remove_lastness(
    log: ActionLog,
    catalog: ItemCatalog,
    *,
    release_key: str = "year",
) -> tuple[ActionLog, ItemCatalog, LastnessStats]:
    """Drop items released after the dataset's earliest action.

    ``release_key`` names the item-metadata field holding the release
    time, which must be on the same axis as action times (the film
    simulator uses calendar years for both).  Items lacking the key raise
    :class:`~repro.exceptions.DataError`: silently keeping them would
    defeat the preprocessing.
    """
    cutoff = log.earliest_time()
    keep = []
    for item in catalog:
        if release_key not in item.metadata:
            raise DataError(f"item {item.id!r} has no release metadata {release_key!r}")
        if float(item.metadata[release_key]) <= cutoff:
            keep.append(item.id)
    filtered_log = log.restrict_items(keep)
    filtered_catalog = catalog.restrict(keep)
    stats = LastnessStats(
        cutoff_time=cutoff,
        items_before=len(catalog),
        items_after=len(filtered_catalog),
        actions_before=log.num_actions,
        actions_after=filtered_log.num_actions,
    )
    return filtered_log, filtered_catalog, stats
