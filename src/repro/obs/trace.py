"""Context-propagated tracing: follow one request or event across stages.

The metrics layer (:mod:`repro.obs.metrics`) answers *how slow is this
stage on average*; this module answers *where did this specific request
spend its time*.  A :class:`Tracer` hands out spans — named, timed
intervals carrying a trace id, a span id, a parent link, and attributes
— and propagates the current trace through :mod:`contextvars`, so spans
opened anywhere downstream of a request (including across ``await``
boundaries inside one asyncio task) join that request's trace without
explicit plumbing.

Design constraints, in order:

1. **Off by default, near-free when off.**  A disabled tracer's
   ``span()`` returns a cached no-op context manager; the hot path pays
   one attribute read and one ``if``.
2. **Stdlib only.**  Ids are 64-bit random hex strings; storage is a
   bounded ``deque`` ring plus an optional append-only JSONL sink.
3. **Crossing executor/thread/process boundaries is explicit.**
   ``contextvars`` do not follow work handed to another task or thread,
   so producers call :meth:`Tracer.capture` and consumers either
   :meth:`Tracer.attach` the captured context or pass explicit
   ``trace=``/``parent=`` to :meth:`Tracer.record`.

Exported span records follow the ``repro-trace/1`` schema — one JSON
object per line::

    {"schema": "repro-trace/1", "trace": "…", "span": "…",
     "parent": "…"|null, "name": "serve.predict", "ts": 1712000000.5,
     "ms": 3.2, "attrs": {…}}

``ts`` is wall-clock epoch seconds at span start; ``ms`` is the span
duration in milliseconds (measured on the monotonic clock).  The
``repro trace`` CLI verb and ``tools/check_obs_output.py --trace``
consume this format.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from collections import deque
from collections.abc import Callable, Iterator, Mapping, Sequence
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SpanContext",
    "SpanRecord",
    "TRACE_SCHEMA",
    "Tracer",
    "configure_tracing",
    "current_trace_id",
    "get_tracer",
    "load_trace_file",
    "new_span_id",
    "set_tracer",
    "summarize_spans",
    "use_tracer",
]

TRACE_SCHEMA = "repro-trace/1"

#: Ring capacity: enough to hold every span of a serve smoke run or a
#: full small fit while bounding memory for long-lived services.
_DEFAULT_RING = 8192

#: Sink buffering: spans accumulate in memory and leave the recording
#: thread when this many are pending, when the last hand-off is this many
#: seconds old, or on flush/export/close — whichever comes first.  Short
#: runs pay serialization once at close; long-lived servers hand modest
#: chunks to the background writer every few seconds.
_SINK_BUFFER_CAP = 8192
_SINK_FLUSH_SECONDS = 5.0


#: (trace_id, span_id) of the active span in this task/thread, or None.
_context: ContextVar[tuple[str, str] | None] = ContextVar("repro_trace", default=None)


#: Span/trace id source: a PRNG seeded from the OS, not ``uuid4`` — ids
#: only need to be unique within a trace corpus, and uuid4 costs ~10x as
#: much per id, which matters at several ids per served request.
_id_rand = random.Random(int.from_bytes(os.urandom(8), "big"))


def _new_id() -> str:
    return f"{_id_rand.getrandbits(64):016x}"


def new_span_id() -> str:
    """A fresh span id, for callers that must name a span before
    recording it (e.g. to parent several reconstructed child records to
    one :meth:`Tracer.record` call via its ``span=`` argument)."""
    return _new_id()


@dataclass(slots=True)
class SpanContext:
    """An exportable snapshot of the current trace position.

    Produced by :meth:`Tracer.capture` on the side that enqueues work and
    consumed by :meth:`Tracer.attach` (or passed to :meth:`Tracer.record`)
    on the side that executes it — the manual hand-off that replaces
    contextvar propagation across task/thread boundaries.
    """

    trace: str
    span: str
    #: Wall/monotonic clocks at capture, so the consumer can report how
    #: long the work sat in a queue before it ran.
    wall: float = 0.0
    mono: float = 0.0


def _span_json(
    trace: str,
    span: str,
    parent: str | None,
    name: str,
    ts: float,
    ms: float,
    attrs: Mapping[str, object] | None,
) -> dict:
    payload: dict = {
        "schema": TRACE_SCHEMA,
        "trace": trace,
        "span": span,
        "parent": parent,
        "name": name,
        "ts": ts,
        "ms": ms,
    }
    if attrs:
        payload["attrs"] = dict(attrs)
    return payload


def _format_attrs(attrs: Mapping[str, object]) -> str | None:
    """Hand-format a simple attrs mapping as a JSON object, or ``None``.

    Matches ``json.dumps(dict(attrs), sort_keys=True)`` byte-for-byte for
    the common serve-path attrs (short ASCII strings, ints, finite
    floats, bools); anything needing escaping or a container type returns
    ``None`` and the caller falls back to ``json.dumps``.
    """
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        kind = type(value)
        if kind is str:
            if (
                '"' in value
                or "\\" in value
                or not value.isascii()
                or not (value.isprintable() or not value)
            ):
                return None
            parts.append(f'"{key}": "{value}"')
        elif kind is bool:
            parts.append(f'"{key}": {"true" if value else "false"}')
        elif kind is int:
            parts.append(f'"{key}": {value!r}')
        elif kind is float:
            if value != value or value in (float("inf"), float("-inf")):
                return None
            parts.append(f'"{key}": {value!r}')
        else:
            return None
    return "{" + ", ".join(parts) + "}"


def _format_line(
    trace: str,
    span: str,
    parent: str | None,
    name: str,
    ts: float,
    ms: float,
    attrs: Mapping[str, object] | None,
) -> str:
    """One ``repro-trace/1`` JSONL sink line (no trailing newline).

    Hand-assembled rather than ``json.dumps``: ids are hex strings and
    span names are code-owned dotted identifiers, so the fixed keys need
    no escaping — and serialization is the single biggest cost of a
    sink-enabled tracer on a busy server.  Attrs go through
    :func:`_format_attrs` when simple; anything else (and any name that
    would need escaping) falls back to ``json.dumps``.
    """
    if '"' in name or "\\" in name:
        return json.dumps(_span_json(trace, span, parent, name, ts, ms, attrs),
                          sort_keys=True)
    parent_lit = "null" if parent is None else f'"{parent}"'
    head = (
        f'{{"schema": "{TRACE_SCHEMA}", "trace": "{trace}", '
        f'"span": "{span}", "parent": {parent_lit}, "name": "{name}", '
        f'"ts": {ts!r}, "ms": {ms!r}'
    )
    if not attrs:
        return head + "}"
    formatted = _format_attrs(attrs)
    if formatted is None:
        formatted = json.dumps(dict(attrs), sort_keys=True)
    return head + f', "attrs": {formatted}}}'


@dataclass(slots=True)
class SpanRecord:
    """One finished span, as a typed view over the tuple storage.

    Not built on the hot path, and no longer the storage format either:
    finished spans live as raw 7-tuples in the buffer and the ring, with
    deferred span ids assigned when a chunk is materialized.  The class
    remains the stable typed surface for constructing/serializing spans
    in tests and tooling.
    """

    trace: str
    span: str
    parent: str | None
    name: str
    ts: float
    ms: float
    attrs: Mapping[str, object] = field(default_factory=dict)

    def to_json(self) -> dict:
        return _span_json(
            self.trace, self.span, self.parent, self.name,
            self.ts, self.ms, self.attrs,
        )

    def to_line(self) -> str:
        """The record as one JSONL sink line (no trailing newline)."""
        return _format_line(
            self.trace, self.span, self.parent, self.name,
            self.ts, self.ms, self.attrs,
        )


class _NoopHandle:
    """Shared do-nothing handle for the disabled-tracer fast path."""

    __slots__ = ()
    trace = None
    span = None
    name = ""

    def set(self, **attrs: object) -> None:  # pragma: no cover - trivial
        pass


_NOOP_HANDLE = _NoopHandle()


class _NoopScope:
    """Shared do-nothing context manager for the disabled-tracer path."""

    __slots__ = ()

    def __enter__(self) -> _NoopHandle:
        return _NOOP_HANDLE

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_SCOPE = _NoopScope()


class _TraceOnlyScope:
    """Scope for an *unsampled* request: carries a fresh trace id and
    propagates it through the context (response headers, access logs, WAL
    journaling all still see it), but records no spans — and anything
    downstream that asks for the active span gets none.

    ``span`` is the empty string on purpose: falsy, so span-gated call
    sites skip their records, while the context tuple stays well-formed
    for :func:`current_trace_id`.
    """

    __slots__ = ("trace", "_token")

    span = ""
    name = ""

    def __init__(self, trace: str) -> None:
        self.trace = trace

    def set(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_TraceOnlyScope":
        self._token = _context.set((self.trace, ""))
        return self

    def __exit__(self, *exc_info) -> bool:
        _context.reset(self._token)
        return False


class _SpanScope:
    """Hand-rolled context manager for one live span; doubles as the
    yielded handle (``trace``/``span``/``name``/``attrs``/``set``).

    A class (not ``@contextmanager``) because span entry/exit is the
    tracing hot path: the generator machinery alone costs more than the
    whole timed body of a short span, and a separate handle object would
    be one more allocation per span.
    """

    __slots__ = (
        "trace", "span", "name", "attrs",
        "_tracer", "_parent", "_token", "_ts", "_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace: str,
        span: str,
        parent: str | None,
        name: str,
        attrs: dict,
    ):
        self.trace = trace
        self.span = span
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self._parent = parent

    def set(self, **attrs: object) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanScope":
        self._token = _context.set((self.trace, self.span))
        tracer = self._tracer
        self._ts = tracer.wall()
        self._start = tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        elapsed = tracer.clock() - self._start
        _context.reset(self._token)
        attrs = self.attrs
        if exc_type is not None:
            attrs.setdefault("error", exc_type.__name__)
        tracer._append(
            (
                self.trace,
                self.span,
                self._parent,
                self.name,
                self._ts,
                elapsed * 1000.0,
                attrs or None,
            )
        )
        return False  # exceptions propagate; the span records the error


class Tracer:
    """Span factory + bounded ring + optional JSONL sink.

    ``enabled`` is the master switch; every public entry point bails out
    immediately when it is False.  ``out`` (a path) appends each finished
    span as one JSON line; serialization runs on a lazily started daemon
    writer thread fed a chunk of spans every ``_SINK_BUFFER_CAP`` spans /
    ``_SINK_FLUSH_SECONDS`` seconds — call :meth:`flush`/:meth:`close` to
    force the file current (both wait for the writer to drain).  The
    in-memory ring always keeps the most recent ``ring_size`` spans for
    :meth:`export` / :meth:`dump`.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        ring_size: int = _DEFAULT_RING,
        out: str | Path | None = None,
        sample: float = 1.0,
        clock: Callable[[], float] = time.perf_counter,
        wall: Callable[[], float] = time.time,
    ) -> None:
        self.enabled = bool(enabled)
        #: Head-sampling rate in [0, 1] consulted by :meth:`sampled` —
        #: per-request span detail on high-QPS paths (the serve loop)
        #: applies to this fraction of requests; trace ids themselves are
        #: always minted.  Rarer producers (training iterations, fold-in
        #: cycles) never consult it.
        self.sample = min(1.0, max(0.0, float(sample)))
        self.clock = clock
        self.wall = wall
        #: Finalized spans, oldest first, as the same 7-tuples the buffer
        #: holds (but with every span id assigned).
        self._ring: deque[tuple] = deque(maxlen=ring_size)
        self._sink_lock = threading.Lock()
        self._out_path = Path(out) if out is not None else None
        self._out_file = None
        #: Finished spans not yet materialized: raw 7-tuples of
        #: (trace, span|None, parent, name, ts, ms, attrs|None).  A None
        #: span id is assigned at materialization time (record() defers id
        #: generation; scopes hand theirs out as parents, so theirs is
        #: eager).
        self._buffer: list[tuple] = []
        self._last_flush = self.wall()
        #: Buffers handed off but not yet materialized, the condition that
        #: sequences producers/writer/flush around them, and the lazily
        #: started daemon writer (sink-enabled tracers only).  The writer
        #: thread only pays off when it can overlap with GIL-released
        #: windows (numpy kernels, socket waits) on another core; on a
        #: single-CPU host it is pure context-switch overhead, so chunks
        #: are processed inline there instead.
        self._chunks: deque[list[tuple]] = deque()
        self._chunk_cv = threading.Condition()
        self._unprocessed = 0
        self._writer: threading.Thread | None = None
        self._writer_stop = (os.cpu_count() or 1) <= 1
        #: Deferred span ids are "<8-hex tracer prefix><8-hex counter>" —
        #: as unique as the random kind, minted for the price of one
        #: increment (they are assigned in bulk, thousands per chunk).
        self._id_prefix = f"{_id_rand.getrandbits(32):08x}"
        self._id_counter = 0

    # ----------------------------------------------------------- context

    def current_trace_id(self) -> str | None:
        """The trace id active in this task/thread, if any."""
        if not self.enabled:
            return None
        ctx = _context.get()
        return ctx[0] if ctx else None

    def capture(self) -> SpanContext | None:
        """Snapshot the current position for a cross-task/thread hand-off."""
        if not self.enabled:
            return None
        ctx = _context.get()
        if ctx is None or not ctx[1]:
            return None
        return SpanContext(ctx[0], ctx[1], wall=self.wall(), mono=self.clock())

    def snapshot(self) -> tuple[str, str, float, float] | None:
        """Allocation-light :meth:`capture`: the same four fields as a
        plain ``(trace, span, wall, mono)`` tuple.  For per-request
        hand-offs on hot paths (the serve batcher), where a dataclass
        construction per request is measurable.  ``None`` inside an
        unsampled request (no active span), like :meth:`capture`."""
        if not self.enabled:
            return None
        ctx = _context.get()
        if ctx is None or not ctx[1]:
            return None
        return (ctx[0], ctx[1], self.wall(), self.clock())

    def sampled(self) -> bool:
        """Decide span detail for one new request (see ``sample``)."""
        if not self.enabled:
            return False
        return self.sample >= 1.0 or _id_rand.random() < self.sample

    def trace_only(self) -> "_TraceOnlyScope | _NoopScope":
        """A context scope for an unsampled request: mints and propagates
        a trace id (headers, logs, journaling) without recording spans."""
        if not self.enabled:
            return _NOOP_SCOPE
        return _TraceOnlyScope(_new_id())

    @contextmanager
    def attach(self, trace: str, parent: str | None = None) -> Iterator[None]:
        """Run the body as part of an existing trace.

        Used on the consuming side of a hand-off: spans opened inside
        join ``trace``, parented to ``parent`` (or to the trace root).
        """
        if not self.enabled or not trace:
            yield
            return
        token = _context.set((trace, parent or ""))
        try:
            yield
        finally:
            _context.reset(token)

    # ------------------------------------------------------------- spans

    def span(self, name: str, **attrs: object) -> _SpanScope | _NoopScope:
        """Open a span: times the body, links to the enclosing span.

        Starts a fresh trace when no span is active in this context.
        Exceptions propagate; the span is recorded with ``error`` attrs
        before re-raising so failed requests still show up in traces.
        """
        if not self.enabled:
            return _NOOP_SCOPE
        ctx = _context.get()
        if ctx is None:
            # Fresh trace: mint both ids from one PRNG draw — root spans
            # are per-request on the serve path, and two draws cost
            # measurably more than one split in half.
            both = f"{_id_rand.getrandbits(128):032x}"
            trace_id, span_id, parent = both[:16], both[16:], None
        else:
            trace_id, span_id, parent = ctx[0], _new_id(), ctx[1] or None
        # **attrs is already a fresh dict; the scope owns it from here.
        return _SpanScope(self, trace_id, span_id, parent, name, attrs)

    def record(
        self,
        name: str,
        *,
        trace: str | None = None,
        span: str | None = None,
        parent: str | None = None,
        ts: float | None = None,
        duration: float = 0.0,
        **attrs: object,
    ) -> None:
        """Record a span with explicit ids/timing (no context manager).

        The escape hatch for reconstructed timings — stages measured with
        a raw clock, queue waits whose start happened on another task —
        and for zero-duration point events.  ``duration`` is in seconds.
        Falls back to the ambient context (or a fresh trace) when
        ``trace`` is not given.  The span id is normally assigned lazily
        at flush time; pass ``span`` (from :func:`new_span_id`) when
        follow-up records must parent to this one.
        """
        if not self.enabled:
            return
        if trace is None:
            ctx = _context.get()
            if ctx is not None:
                trace = ctx[0]
                if parent is None:
                    parent = ctx[1] or None
            else:
                trace = _new_id()
        self._append(
            (
                trace,
                span,
                parent,
                name,
                self.wall() if ts is None else ts,
                duration * 1000.0,
                attrs or None,  # **attrs is already a fresh dict
            )
        )

    def event(self, name: str, **attrs: object) -> None:
        """A zero-duration point annotation on the current trace."""
        self.record(name, **attrs)

    # ------------------------------------------------------------- sinks

    def _append(self, entry: tuple) -> None:
        # The recording hot path appends one raw tuple and returns: no
        # lock, no allocation beyond the tuple, no I/O (list.append is
        # atomic under the GIL).  Materializing SpanRecords, assigning
        # deferred span ids, serializing JSON, and filing into the ring
        # all happen later — for sink-enabled tracers on a background
        # writer thread, which does its GIL-bound work inside the windows
        # where the serving loop holds no GIL (numpy kernels, socket
        # waits) instead of stealing loop time with inline flushes;
        # tools/bench_serve.py holds the net cost to a <5% budget.
        buffer = self._buffer
        buffer.append(entry)
        if (
            len(buffer) >= _SINK_BUFFER_CAP
            or entry[4] - self._last_flush >= _SINK_FLUSH_SECONDS
        ):
            self._hand_off()

    def _hand_off(self) -> None:
        """Move the hot buffer out of the recording thread's way.

        Sink-enabled tracers enqueue it for the background writer and
        return immediately; ring-only tracers (rare flushes, no
        serialization) just materialize inline.
        """
        if self._out_path is None:
            self.flush()
            return
        inline: list[tuple] | None = None
        with self._chunk_cv:
            buffer, self._buffer = self._buffer, []
            self._last_flush = self.wall()
            if not buffer:
                return
            if self._writer_stop:  # closed tracer: no writer to drain this
                inline = buffer
            else:
                if self._writer is None:
                    self._writer = threading.Thread(
                        target=self._writer_loop,
                        name="repro-trace-writer",
                        daemon=True,
                    )
                    self._writer.start()
                self._chunks.append(buffer)
                self._unprocessed += 1
                self._chunk_cv.notify_all()
        if inline is not None:
            self._process(inline)

    def _writer_loop(self) -> None:
        while True:
            with self._chunk_cv:
                while not self._chunks and not self._writer_stop:
                    self._chunk_cv.wait()
                if not self._chunks:
                    return
                chunk = self._chunks.popleft()
            try:
                self._process(chunk)
            finally:
                with self._chunk_cv:
                    self._unprocessed -= 1
                    self._chunk_cv.notify_all()

    def _process(self, buffer: list[tuple]) -> None:
        """Finalize one chunk (assign deferred span ids) into the ring
        and the JSONL sink.  Tuples in, tuples stored: SpanRecord objects
        are never built here — at thousands of spans per chunk, even one
        object construction per span is measurable."""
        with self._sink_lock:
            counter = self._id_counter
            prefix = self._id_prefix
            finalized = []
            for entry in buffer:
                if entry[1] is None:
                    trace, _span, parent, name, ts, ms, attrs = entry
                    entry = (
                        trace, f"{prefix}{counter:08x}", parent, name, ts, ms, attrs
                    )
                    counter += 1
                finalized.append(entry)
            self._id_counter = counter
            self._ring.extend(finalized)
            if self._out_path is None:
                return
            lines = "".join(_format_line(*entry) + "\n" for entry in finalized)
            if self._out_file is None:
                self._out_path.parent.mkdir(parents=True, exist_ok=True)
                self._out_file = self._out_path.open("a", encoding="utf-8")
            self._out_file.write(lines)
            self._out_file.flush()

    def flush(self) -> None:
        """Materialize every recorded span into the ring and the sink.

        Synchronous: on return the ring holds all spans recorded so far
        and the sink file (if any) is current — for sink-enabled tracers
        this waits for the background writer to drain.
        """
        if self._out_path is not None:
            self._hand_off()
            with self._chunk_cv:
                while self._unprocessed:
                    self._chunk_cv.wait()
            return
        with self._chunk_cv:
            buffer, self._buffer = self._buffer, []
            self._last_flush = self.wall()
        if buffer:
            self._process(buffer)

    def export(self) -> list[dict]:
        """The ring contents as ``repro-trace/1`` JSON objects (oldest first).

        Also flushes the sink, so the file is current whenever the ring
        is read.
        """
        self.flush()
        return [_span_json(*entry) for entry in list(self._ring)]

    def dump(self, path: str | Path) -> int:
        """Write the ring to ``path`` as JSONL; returns the span count."""
        payloads = self.export()
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as fh:
            for payload in payloads:
                fh.write(json.dumps(payload, sort_keys=True) + "\n")
        return len(payloads)

    def close(self) -> None:
        """Flush buffered spans, retire the writer, close the sink file."""
        self.flush()
        with self._chunk_cv:
            self._writer_stop = True
            self._chunk_cv.notify_all()
        writer = self._writer
        if writer is not None:
            writer.join(timeout=10.0)
            self._writer = None
        with self._sink_lock:
            if self._out_file is not None:
                self._out_file.close()
                self._out_file = None


# --------------------------------------------------------------- globals

_default_tracer = Tracer()  # disabled: the zero-overhead ambient default
_tracer_lock = threading.Lock()
_current_tracer = _default_tracer


def get_tracer() -> Tracer:
    """The tracer instrumented code records into (process-global)."""
    return _current_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the global tracer; returns the previous one."""
    global _current_tracer
    with _tracer_lock:
        previous = _current_tracer
        _current_tracer = tracer
        return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope the global tracer to a block (tests, benchmarks)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def configure_tracing(
    *,
    enabled: bool = True,
    out: str | Path | None = None,
    ring_size: int = _DEFAULT_RING,
    sample: float = 1.0,
) -> Tracer:
    """Install a fresh global tracer (the ``--trace-out`` entry point)."""
    tracer = Tracer(enabled=enabled, ring_size=ring_size, out=out, sample=sample)
    set_tracer(tracer)
    return tracer


def current_trace_id() -> str | None:
    """Module-level shorthand for ``get_tracer().current_trace_id()``."""
    return _current_tracer.current_trace_id()


# ------------------------------------------------------------- analysis
#
# Pure functions over exported span dicts, shared by the ``repro trace``
# CLI verb and the tests.  They accept the ``repro-trace/1`` payloads
# produced by Tracer.export()/dump() or parsed back from a JSONL file.


def _quantile(ordered: Sequence[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def summarize_spans(spans: Sequence[Mapping], *, outliers: int = 5) -> dict:
    """Aggregate a span list into the ``repro trace`` report payload.

    Returns a dict with:

    - ``stages``: per-name {count, total_ms, mean_ms, p50_ms, p95_ms,
      max_ms}, sorted by total time descending;
    - ``traces``: trace count and root-span count;
    - ``outliers``: the slowest root spans at or above their name's p95
      (trace id, name, ms) — the "which requests were bad" list;
    - ``critical_path``: for the slowest root span, the chain from root
      to leaf following the most expensive child at each level, each
      entry {name, ms, self_ms, trace, span}.
    """
    by_name: dict[str, list[float]] = {}
    by_span: dict[str, Mapping] = {}
    children: dict[str, list[Mapping]] = {}
    roots: list[Mapping] = []
    trace_ids: set[str] = set()
    for span in spans:
        by_name.setdefault(str(span["name"]), []).append(float(span["ms"]))
        by_span[str(span["span"])] = span
        trace_ids.add(str(span["trace"]))
        parent = span.get("parent")
        if parent:
            children.setdefault(str(parent), []).append(span)
        else:
            roots.append(span)

    stages = {}
    for name, values in by_name.items():
        ordered = sorted(values)
        stages[name] = {
            "count": len(ordered),
            "total_ms": sum(ordered),
            "mean_ms": sum(ordered) / len(ordered),
            "p50_ms": _quantile(ordered, 0.50),
            "p95_ms": _quantile(ordered, 0.95),
            "max_ms": ordered[-1],
        }
    stages = dict(
        sorted(stages.items(), key=lambda item: item[1]["total_ms"], reverse=True)
    )

    p95_by_name = {name: digest["p95_ms"] for name, digest in stages.items()}
    slow_roots = [
        root
        for root in roots
        if float(root["ms"]) >= p95_by_name.get(str(root["name"]), 0.0)
    ]
    slow_roots.sort(key=lambda span: float(span["ms"]), reverse=True)
    outlier_rows = [
        {"trace": span["trace"], "name": span["name"], "ms": float(span["ms"])}
        for span in slow_roots[:outliers]
    ]

    critical_path: list[dict] = []
    if roots:
        node = max(roots, key=lambda span: float(span["ms"]))
        while node is not None:
            kids = children.get(str(node["span"]), [])
            child_ms = sum(float(k["ms"]) for k in kids)
            critical_path.append(
                {
                    "name": node["name"],
                    "ms": float(node["ms"]),
                    "self_ms": max(0.0, float(node["ms"]) - child_ms),
                    "trace": node["trace"],
                    "span": node["span"],
                }
            )
            node = max(kids, key=lambda span: float(span["ms"])) if kids else None

    return {
        "schema": "repro-trace-summary/1",
        "spans": len(spans),
        "traces": {"count": len(trace_ids), "roots": len(roots)},
        "stages": stages,
        "outliers": outlier_rows,
        "critical_path": critical_path,
    }


def load_trace_file(path: str | Path) -> list[dict]:
    """Parse a ``repro-trace/1`` JSONL file into span dicts."""
    spans: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from None
            if not isinstance(payload, dict) or payload.get("schema") != TRACE_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: expected schema {TRACE_SCHEMA!r}, "
                    f"got {payload.get('schema') if isinstance(payload, dict) else payload!r}"
                )
            spans.append(payload)
    return spans
