"""Process-local metrics: counters, gauges, lightweight histograms.

A :class:`MetricsRegistry` is a named bag of instruments the instrumented
code updates as it runs and a snapshot consumer (``repro fit
--metrics-out``, tests, the CI schema check) reads at the end:

- :class:`Counter` — monotone event counts (``pool.rebuilds``);
- :class:`Gauge` — last-value-wins observations (``train.log_likelihood``);
- :class:`Histogram` — bounded-reservoir timing distributions reporting
  count/total/mean/p50/p95/max (``train.assign_seconds``);
- :class:`Info` — last-value-wins short *strings* for states a number
  cannot carry (``foldin.status``, ``foldin.last_error``).

``timer()`` and ``span()`` are context managers feeding histograms;
spans nest, composing their dotted name from the enclosing spans on the
same thread, so wall-time lands attributed to the stage that spent it.

Everything is thread-safe and *process-local*: worker processes spawned
by :class:`~repro.core.parallel.PoolAssigner` never touch the registry —
all pool bookkeeping happens in the parent, which is what makes the
counters trustworthy under worker crashes.  Instruments created through
a registry share that registry's re-entrant lock, so ``snapshot()`` is a
point-in-time freeze: a counter and the histogram fed on the same code
path can never export values from different moments.  Instruments
constructed standalone get a private lock.

Histograms can carry *exemplars* — the trace ids of the slowest recent
samples (see :mod:`repro.obs.trace`) — so a bad ``p95`` in ``/metrics``
points straight at a trace worth reading.  ``observe()`` picks up the
ambient trace id automatically; exemplars appear in summaries only when
tracing was active, keeping trace-free snapshots byte-compatible.

The wall clock is injectable (``MetricsRegistry(clock=...)``), so timing
behaviour is testable with a fake clock instead of ``time.sleep``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.obs.trace import current_trace_id as _current_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Info",
    "MetricsRegistry",
    "Span",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Reservoir size per histogram: enough for thousands of iterations of
#: quantile-faithful data while bounding memory for long-running services.
_DEFAULT_WINDOW = 4096

#: Exemplar slots per histogram: how many slowest-sample trace ids a
#: summary carries.  Small on purpose — exemplars are pointers, not data.
_EXEMPLAR_SLOTS = 3


def _instrument_lock(lock: threading.RLock | None) -> threading.RLock:
    # Re-entrant because a registry shares ONE lock across all of its
    # instruments and its own bookkeeping: summary() → quantile() and
    # snapshot() → summary() re-acquire it on the same thread.
    return lock if lock is not None else threading.RLock()


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("_lock", "_value")

    def __init__(self, *, lock: threading.RLock | None = None) -> None:
        self._lock = _instrument_lock(lock)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-value-wins observation."""

    __slots__ = ("_lock", "_value")

    def __init__(self, *, lock: threading.RLock | None = None) -> None:
        self._lock = _instrument_lock(lock)
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Info:
    """A last-value-wins short string (state labels, last-error text).

    Values are capped at ``max_chars`` so a pathological error message
    cannot bloat every metrics snapshot; ``None`` clears the value (the
    snapshot then reports ``null``).
    """

    __slots__ = ("_lock", "_value", "max_chars")

    def __init__(
        self, max_chars: int = 500, *, lock: threading.RLock | None = None
    ) -> None:
        self._lock = _instrument_lock(lock)
        self._value: str | None = None
        self.max_chars = max_chars

    def set(self, value: str | None) -> None:
        if value is not None:
            value = str(value)[: self.max_chars]
        with self._lock:
            self._value = value

    @property
    def value(self) -> str | None:
        return self._value


class Histogram:
    """A bounded reservoir of observations with cheap quantiles.

    Count, total, and max cover the full lifetime; quantiles are computed
    over the most recent ``window`` observations (a ring buffer), which is
    exact until the window overflows and recency-weighted after.

    When an observation happens inside an active trace (or ``trace=`` is
    passed explicitly), the histogram keeps the slowest few samples'
    trace ids as *exemplars*, surfaced by :meth:`summary`.
    """

    __slots__ = (
        "_lock", "_window", "_exemplars", "_exemplar_floor",
        "count", "total", "max",
    )

    def __init__(
        self,
        window: int = _DEFAULT_WINDOW,
        *,
        lock: threading.RLock | None = None,
    ) -> None:
        self._lock = _instrument_lock(lock)
        self._window: deque[float] = deque(maxlen=window)
        self._exemplars: list[tuple[float, str]] = []
        #: Smallest value currently held as an exemplar; -inf until the
        #: slots fill, so the common traced observation pays exactly one
        #: comparison instead of a min() scan.
        self._exemplar_floor = float("-inf")
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float, *, trace: str | None = None) -> None:
        value = float(value)
        if trace is None:
            trace = _current_trace_id()
        with self._lock:
            self._window.append(value)
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value
            if trace is not None and value > self._exemplar_floor:
                exemplars = self._exemplars
                if len(exemplars) < _EXEMPLAR_SLOTS:
                    exemplars.append((value, trace))
                    if len(exemplars) == _EXEMPLAR_SLOTS:
                        self._exemplar_floor = min(v for v, _ in exemplars)
                else:
                    low = min(range(_EXEMPLAR_SLOTS), key=lambda i: exemplars[i][0])
                    exemplars[low] = (value, trace)
                    self._exemplar_floor = min(v for v, _ in exemplars)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained window (0 when empty)."""
        with self._lock:
            if not self._window:
                return 0.0
            ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict:
        """The JSON-safe digest exported in metrics snapshots.

        The ``exemplars`` key — slowest traced samples, slowest first —
        is present only when tracing supplied trace ids, so trace-free
        runs keep the original digest shape.
        """
        with self._lock:
            count, total, maximum = self.count, self.total, self.max
            exemplars = sorted(self._exemplars, reverse=True)
            digest: dict = {
                "count": count,
                "total": total,
                "mean": total / count if count else 0.0,
                "p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "max": maximum,
            }
        if exemplars:
            digest["exemplars"] = [
                {"value": value, "trace": trace} for value, trace in exemplars
            ]
        return digest


class Span:
    """Handle yielded by :meth:`MetricsRegistry.span`; ``elapsed`` is set
    (in seconds) when the context exits."""

    __slots__ = ("name", "qualified", "elapsed")

    def __init__(self, name: str, qualified: str) -> None:
        self.name = name
        self.qualified = qualified
        self.elapsed: float = 0.0


class MetricsRegistry:
    """A named, thread-safe collection of counters, gauges, and histograms.

    ``clock`` powers :meth:`timer` and :meth:`span`; inject a fake for
    deterministic timing tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        # One re-entrant lock shared with every instrument this registry
        # creates: snapshot() holds it across the whole export, freezing
        # all instruments at a single moment.
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._infos: dict[str, Info] = {}
        self._local = threading.local()

    # ------------------------------------------------------------ lookups

    def counter(self, name: str) -> Counter:
        with self._lock:
            try:
                return self._counters[name]
            except KeyError:
                instrument = self._counters[name] = Counter(lock=self._lock)
                return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            try:
                return self._gauges[name]
            except KeyError:
                instrument = self._gauges[name] = Gauge(lock=self._lock)
                return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            try:
                return self._histograms[name]
            except KeyError:
                instrument = self._histograms[name] = Histogram(lock=self._lock)
                return instrument

    def info(self, name: str) -> Info:
        with self._lock:
            try:
                return self._infos[name]
            except KeyError:
                instrument = self._infos[name] = Info(lock=self._lock)
                return instrument

    # ------------------------------------------------------------- timing

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the body and observe the seconds into histogram ``name``."""
        start = self.clock()
        try:
            yield
        finally:
            self.histogram(name).observe(self.clock() - start)

    def _span_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Like :meth:`timer`, but nested spans compose dotted names.

        ``span("fit")`` containing ``span("assign")`` observes histograms
        ``fit`` and ``fit.assign`` — wall-time attributed to the stage
        that spent it.  Nesting is tracked per thread.
        """
        stack = self._span_stack()
        stack.append(name)
        handle = Span(name, ".".join(stack))
        start = self.clock()
        try:
            yield handle
        finally:
            handle.elapsed = self.clock() - start
            stack.pop()
            self.histogram(handle.qualified).observe(handle.elapsed)

    # ------------------------------------------------------------- export

    def snapshot(self) -> dict:
        """A JSON-safe, point-in-time view of every instrument.

        The registry lock is held across the whole export, and registry
        instruments share that lock, so concurrent writers are excluded
        for the duration: a counter and a histogram updated together on
        some code path always export values from the same moment.
        """
        with self._lock:
            snapshot = {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.summary() for name, h in sorted(self._histograms.items())
                },
            }
            if self._infos:
                # Only present when used, so snapshots from info-free runs
                # stay byte-compatible with the pre-info repro-metrics/1
                # shape.
                snapshot["info"] = {
                    name: i.value for name, i in sorted(self._infos.items())
                }
        return snapshot

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._infos.clear()


_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()
_current_registry = _default_registry


def get_registry() -> MetricsRegistry:
    """The registry instrumented code records into (process-global)."""
    return _current_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry; returns the previous one."""
    global _current_registry
    with _registry_lock:
        previous = _current_registry
        _current_registry = registry
        return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the global registry to a block (tests, isolated runs)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
