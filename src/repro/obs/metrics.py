"""Process-local metrics: counters, gauges, lightweight histograms.

A :class:`MetricsRegistry` is a named bag of instruments the instrumented
code updates as it runs and a snapshot consumer (``repro fit
--metrics-out``, tests, the CI schema check) reads at the end:

- :class:`Counter` — monotone event counts (``pool.rebuilds``);
- :class:`Gauge` — last-value-wins observations (``train.log_likelihood``);
- :class:`Histogram` — bounded-reservoir timing distributions reporting
  count/total/mean/p50/p95/max (``train.assign_seconds``);
- :class:`Info` — last-value-wins short *strings* for states a number
  cannot carry (``foldin.status``, ``foldin.last_error``).

``timer()`` and ``span()`` are context managers feeding histograms;
spans nest, composing their dotted name from the enclosing spans on the
same thread, so wall-time lands attributed to the stage that spent it.

Everything is thread-safe (per-instrument locks) and *process-local*:
worker processes spawned by :class:`~repro.core.parallel.PoolAssigner`
never touch the registry — all pool bookkeeping happens in the parent,
which is what makes the counters trustworthy under worker crashes.

The wall clock is injectable (``MetricsRegistry(clock=...)``), so timing
behaviour is testable with a fake clock instead of ``time.sleep``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable, Iterator
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Info",
    "MetricsRegistry",
    "Span",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Reservoir size per histogram: enough for thousands of iterations of
#: quantile-faithful data while bounding memory for long-running services.
_DEFAULT_WINDOW = 4096


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-value-wins observation."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Info:
    """A last-value-wins short string (state labels, last-error text).

    Values are capped at ``max_chars`` so a pathological error message
    cannot bloat every metrics snapshot; ``None`` clears the value (the
    snapshot then reports ``null``).
    """

    __slots__ = ("_lock", "_value", "max_chars")

    def __init__(self, max_chars: int = 500) -> None:
        self._lock = threading.Lock()
        self._value: str | None = None
        self.max_chars = max_chars

    def set(self, value: str | None) -> None:
        if value is not None:
            value = str(value)[: self.max_chars]
        with self._lock:
            self._value = value

    @property
    def value(self) -> str | None:
        return self._value


class Histogram:
    """A bounded reservoir of observations with cheap quantiles.

    Count, total, and max cover the full lifetime; quantiles are computed
    over the most recent ``window`` observations (a ring buffer), which is
    exact until the window overflows and recency-weighted after.
    """

    __slots__ = ("_lock", "_window", "count", "total", "max")

    def __init__(self, window: int = _DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._window.append(value)
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained window (0 when empty)."""
        with self._lock:
            if not self._window:
                return 0.0
            ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        """The JSON-safe digest exported in metrics snapshots."""
        with self._lock:
            count, total, maximum = self.count, self.total, self.max
        return {
            "count": count,
            "total": total,
            "mean": total / count if count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "max": maximum,
        }


class Span:
    """Handle yielded by :meth:`MetricsRegistry.span`; ``elapsed`` is set
    (in seconds) when the context exits."""

    __slots__ = ("name", "qualified", "elapsed")

    def __init__(self, name: str, qualified: str) -> None:
        self.name = name
        self.qualified = qualified
        self.elapsed: float = 0.0


class MetricsRegistry:
    """A named, thread-safe collection of counters, gauges, and histograms.

    ``clock`` powers :meth:`timer` and :meth:`span`; inject a fake for
    deterministic timing tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._infos: dict[str, Info] = {}
        self._local = threading.local()

    # ------------------------------------------------------------ lookups

    def counter(self, name: str) -> Counter:
        with self._lock:
            try:
                return self._counters[name]
            except KeyError:
                instrument = self._counters[name] = Counter()
                return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            try:
                return self._gauges[name]
            except KeyError:
                instrument = self._gauges[name] = Gauge()
                return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            try:
                return self._histograms[name]
            except KeyError:
                instrument = self._histograms[name] = Histogram()
                return instrument

    def info(self, name: str) -> Info:
        with self._lock:
            try:
                return self._infos[name]
            except KeyError:
                instrument = self._infos[name] = Info()
                return instrument

    # ------------------------------------------------------------- timing

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time the body and observe the seconds into histogram ``name``."""
        start = self.clock()
        try:
            yield
        finally:
            self.histogram(name).observe(self.clock() - start)

    def _span_stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Like :meth:`timer`, but nested spans compose dotted names.

        ``span("fit")`` containing ``span("assign")`` observes histograms
        ``fit`` and ``fit.assign`` — wall-time attributed to the stage
        that spent it.  Nesting is tracked per thread.
        """
        stack = self._span_stack()
        stack.append(name)
        handle = Span(name, ".".join(stack))
        start = self.clock()
        try:
            yield handle
        finally:
            handle.elapsed = self.clock() - start
            stack.pop()
            self.histogram(handle.qualified).observe(handle.elapsed)

    # ------------------------------------------------------------- export

    def snapshot(self) -> dict:
        """A JSON-safe view of every instrument (the metrics-file body)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            infos = dict(self._infos)
        snapshot = {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(histograms.items())},
        }
        if infos:
            # Only present when used, so snapshots from info-free runs stay
            # byte-compatible with the pre-info repro-metrics/1 shape.
            snapshot["info"] = {name: i.value for name, i in sorted(infos.items())}
        return snapshot

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._infos.clear()


_default_registry = MetricsRegistry()
_registry_lock = threading.Lock()
_current_registry = _default_registry


def get_registry() -> MetricsRegistry:
    """The registry instrumented code records into (process-global)."""
    return _current_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry; returns the previous one."""
    global _current_registry
    with _registry_lock:
        previous = _current_registry
        _current_registry = registry
        return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the global registry to a block (tests, isolated runs)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
