"""Training telemetry: the run record a fitted model carries with it.

:class:`~repro.core.model.TrainingTrace` answers *what* the trainer
converged to; :class:`TrainingTelemetry` answers *how the run went*:
where the wall-time was spent per stage, how assignments churned, which
checkpoints were written, and whether the worker pool degraded.  It is
attached to the fitted :class:`~repro.core.model.SkillModel`, survives
``save_model``/``load_model`` (stored in the model JSON), is dumped by
``repro fit --metrics-out``, and pretty-printed by ``repro inspect``.

Everything here is plain data with exact JSON round-trips — no clocks,
no registries — so it can cross process and storage boundaries freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "CheckpointEvent",
    "IterationRecord",
    "TelemetryBuilder",
    "TrainingTelemetry",
]

#: The per-iteration stage keys the hard trainer reports (seconds).
TRAINER_STAGES = ("table_build", "assign", "cell_fit", "checkpoint", "iteration")


@dataclass(frozen=True)
class CheckpointEvent:
    """One snapshot written during training."""

    iteration: int
    path: str
    num_bytes: int
    seconds: float

    def to_json(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "path": self.path,
            "num_bytes": self.num_bytes,
            "seconds": self.seconds,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "CheckpointEvent":
        return cls(
            iteration=int(payload["iteration"]),
            path=str(payload["path"]),
            num_bytes=int(payload["num_bytes"]),
            seconds=float(payload["seconds"]),
        )


@dataclass(frozen=True)
class IterationRecord:
    """Diagnostics for one completed training iteration.

    ``improvement``, ``unchanged_users``, and ``level_drift`` are ``None``
    on the first iteration (there is nothing to compare against).
    ``level_drift`` is the L1 distance between consecutive level
    histograms, normalized by the action count — 0 means assignments have
    stopped moving.
    """

    iteration: int
    log_likelihood: float
    improvement: float | None
    stage_seconds: Mapping[str, float]
    unchanged_users: int | None
    level_histogram: tuple[int, ...]
    level_drift: float | None

    def to_json(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "log_likelihood": self.log_likelihood,
            "improvement": self.improvement,
            "stage_seconds": dict(self.stage_seconds),
            "unchanged_users": self.unchanged_users,
            "level_histogram": list(self.level_histogram),
            "level_drift": self.level_drift,
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "IterationRecord":
        return cls(
            iteration=int(payload["iteration"]),
            log_likelihood=float(payload["log_likelihood"]),
            improvement=(
                None if payload.get("improvement") is None else float(payload["improvement"])
            ),
            stage_seconds={k: float(v) for k, v in payload.get("stage_seconds", {}).items()},
            unchanged_users=(
                None
                if payload.get("unchanged_users") is None
                else int(payload["unchanged_users"])
            ),
            level_histogram=tuple(int(v) for v in payload.get("level_histogram", ())),
            level_drift=(
                None if payload.get("level_drift") is None else float(payload["level_drift"])
            ),
        )


@dataclass(frozen=True)
class TrainingTelemetry:
    """The full observability record of one fit.

    ``log_likelihoods`` spans the *entire* trajectory (including
    iterations completed before a resume); ``iterations`` holds the
    per-iteration records of the iterations this process actually ran.
    """

    run_id: str
    log_likelihoods: tuple[float, ...]
    iterations: tuple[IterationRecord, ...]
    stage_seconds: Mapping[str, float]
    pool_events: Mapping[str, int]
    checkpoints: tuple[CheckpointEvent, ...]
    converged: bool
    total_seconds: float
    #: Process resource stats sampled at the end of the fit (peak RSS in
    #: bytes, GC pause totals; see :mod:`repro.obs.resource`).  Empty for
    #: artifacts that predate resource sampling.
    resources: Mapping[str, float] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        payload = {
            "run_id": self.run_id,
            "log_likelihoods": list(self.log_likelihoods),
            "iterations": [record.to_json() for record in self.iterations],
            "stage_seconds": dict(self.stage_seconds),
            "pool_events": dict(self.pool_events),
            "checkpoints": [event.to_json() for event in self.checkpoints],
            "converged": self.converged,
            "total_seconds": self.total_seconds,
        }
        if self.resources:
            # Only when sampled, so pre-resource payloads round-trip
            # byte-identically through load → save.
            payload["resources"] = dict(self.resources)
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "TrainingTelemetry":
        return cls(
            run_id=str(payload["run_id"]),
            log_likelihoods=tuple(float(v) for v in payload["log_likelihoods"]),
            iterations=tuple(
                IterationRecord.from_json(entry) for entry in payload.get("iterations", ())
            ),
            stage_seconds={
                k: float(v) for k, v in payload.get("stage_seconds", {}).items()
            },
            pool_events={k: int(v) for k, v in payload.get("pool_events", {}).items()},
            checkpoints=tuple(
                CheckpointEvent.from_json(entry) for entry in payload.get("checkpoints", ())
            ),
            converged=bool(payload["converged"]),
            total_seconds=float(payload["total_seconds"]),
            resources={
                k: float(v) for k, v in payload.get("resources", {}).items()
            },
        )

    # ------------------------------------------------------------- report

    def summary_lines(self) -> list[str]:
        """Markdown bullet lines for model cards and ``repro inspect``."""
        lines = [
            f"- run id: {self.run_id}; wall time {self.total_seconds:.2f}s over "
            f"{len(self.iterations)} instrumented iteration(s) "
            f"(converged: {self.converged})"
        ]
        if self.stage_seconds:
            total = sum(
                v for k, v in self.stage_seconds.items() if k != "iteration"
            ) or 1.0
            shares = ", ".join(
                f"{stage} {seconds:.3f}s ({seconds / total:.0%})"
                for stage, seconds in self.stage_seconds.items()
                if stage != "iteration"
            )
            lines.append(f"- stage wall-time: {shares}")
        if self.pool_events:
            lines.append(
                "- pool events: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.pool_events.items()))
            )
        if self.checkpoints:
            total_bytes = sum(event.num_bytes for event in self.checkpoints)
            lines.append(
                f"- checkpoints: {len(self.checkpoints)} written, "
                f"{total_bytes} bytes total, last at iteration "
                f"{self.checkpoints[-1].iteration}"
            )
        if self.log_likelihoods:
            lines.append(
                f"- log-likelihood: {self.log_likelihoods[0]:.1f} → "
                f"{self.log_likelihoods[-1]:.1f} over "
                f"{len(self.log_likelihoods)} iteration(s)"
            )
        if self.resources.get("peak_rss_bytes"):
            rss_mib = self.resources["peak_rss_bytes"] / (1024.0 * 1024.0)
            gc_note = ""
            if self.resources.get("gc_collections"):
                gc_note = (
                    f", {int(self.resources['gc_collections'])} GC pause(s) "
                    f"totalling {self.resources.get('gc_pause_seconds_total', 0.0):.3f}s"
                )
            lines.append(f"- resources: peak RSS {rss_mib:.1f} MiB{gc_note}")
        return lines

    def summary(self) -> str:
        return "\n".join(self.summary_lines())


@dataclass
class TelemetryBuilder:
    """Mutable accumulator the training loop feeds; ``build()`` freezes it."""

    run_id: str
    #: Stage keys reported even when they never ran (e.g. ``checkpoint``
    #: with checkpointing disabled), so metrics consumers see a stable set.
    stages: tuple[str, ...] = ()
    iterations: list[IterationRecord] = field(default_factory=list)
    checkpoints: list[CheckpointEvent] = field(default_factory=list)

    def record_iteration(self, record: IterationRecord) -> None:
        self.iterations.append(record)

    def record_checkpoint(self, event: CheckpointEvent) -> None:
        self.checkpoints.append(event)

    def build(
        self,
        *,
        log_likelihoods: tuple[float, ...],
        pool_events: Mapping[str, int],
        converged: bool,
        total_seconds: float,
        resources: Mapping[str, float] | None = None,
    ) -> TrainingTelemetry:
        stage_seconds: dict[str, float] = dict.fromkeys(self.stages, 0.0)
        for record in self.iterations:
            for stage, seconds in record.stage_seconds.items():
                stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
        return TrainingTelemetry(
            run_id=self.run_id,
            log_likelihoods=tuple(log_likelihoods),
            iterations=tuple(self.iterations),
            stage_seconds=stage_seconds,
            pool_events=dict(pool_events),
            checkpoints=tuple(self.checkpoints),
            converged=converged,
            total_seconds=total_seconds,
            resources=dict(resources) if resources else {},
        )
