"""Process resource sampling: peak RSS, GC pauses, open file descriptors.

The ROADMAP's million-user scaling work needs peak memory tracked by the
same observability stack that already owns timings, and a long-lived
server wants to know when GC pauses start eating its latency budget or a
descriptor leak creeps toward the rlimit.  This module feeds all three
into a :class:`~repro.obs.metrics.MetricsRegistry` as ``proc.*`` gauges,
counters, and histograms:

- ``proc.peak_rss_bytes``   (gauge)     lifetime peak resident set size;
- ``proc.open_fds``         (gauge)     currently open descriptors;
- ``proc.gc_collections``   (counter)   collections since hooks installed;
- ``proc.gc_pause_seconds`` (histogram) stop-the-world pause durations.

Everything is stdlib: peak RSS via ``resource.getrusage`` (normalised to
bytes — Linux reports KiB, macOS bytes), descriptors via
``/proc/self/fd`` with an ``os.listdir`` fallback chain, GC pauses via
``gc.callbacks``.  :func:`sample_resources` is the one-shot used at the
end of a fit (the numbers also land in fit telemetry);``ResourceSampler``
adds the install/uninstall lifecycle a server needs.
"""

from __future__ import annotations

import gc
import os
import sys
import time
from collections.abc import Callable

try:  # pragma: no cover - present on every POSIX we support
    import resource as _resource
except ImportError:  # pragma: no cover - windows
    _resource = None  # type: ignore[assignment]

from repro.obs.metrics import MetricsRegistry, get_registry

__all__ = ["ResourceSampler", "peak_rss_bytes", "open_fd_count", "sample_resources"]


def peak_rss_bytes() -> float:
    """Lifetime peak resident set size in bytes (0.0 when unavailable)."""
    if _resource is None:
        return 0.0
    peak = float(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform != "darwin":
        peak *= 1024.0
    return peak


def open_fd_count() -> int:
    """Open descriptors for this process (-1 when undeterminable)."""
    for fd_dir in ("/proc/self/fd", "/dev/fd"):
        try:
            return len(os.listdir(fd_dir))
        except OSError:
            continue
    return -1


class ResourceSampler:
    """Publishes process resource stats into a metrics registry.

    ``sample()`` refreshes the gauges and returns them as a plain dict
    (the shape embedded in fit telemetry).  ``install_gc_hooks()`` /
    ``uninstall_gc_hooks()`` bracket the period during which GC pauses
    are measured; the callback is registry-bound, so two samplers on two
    registries do not interfere.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._registry = registry
        self._clock = clock
        self._gc_start: float | None = None
        self._gc_pauses = 0
        self._gc_pause_total = 0.0
        self._installed = False

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # ---------------------------------------------------------- sampling

    def sample(self) -> dict[str, float]:
        """Refresh ``proc.*`` gauges; returns the sampled values."""
        registry = self.registry
        stats: dict[str, float] = {"peak_rss_bytes": peak_rss_bytes()}
        registry.gauge("proc.peak_rss_bytes").set(stats["peak_rss_bytes"])
        fds = open_fd_count()
        if fds >= 0:
            stats["open_fds"] = float(fds)
            registry.gauge("proc.open_fds").set(float(fds))
        stats["gc_collections"] = float(self._gc_pauses)
        stats["gc_pause_seconds_total"] = self._gc_pause_total
        return stats

    # ---------------------------------------------------------- gc hooks

    def _on_gc(self, phase: str, info: dict) -> None:
        # CPython's collector is stop-the-world per interpreter, so a
        # start/stop pair measured on one monotonic clock is a pause.
        if phase == "start":
            self._gc_start = self._clock()
        elif phase == "stop" and self._gc_start is not None:
            pause = self._clock() - self._gc_start
            self._gc_start = None
            self._gc_pauses += 1
            self._gc_pause_total += pause
            registry = self.registry
            registry.counter("proc.gc_collections").inc()
            registry.histogram("proc.gc_pause_seconds").observe(pause)

    def install_gc_hooks(self) -> None:
        if not self._installed:
            gc.callbacks.append(self._on_gc)
            self._installed = True
            # Surface the counter immediately so /metrics shows the
            # instrument (at zero) even before the first collection.
            self.registry.counter("proc.gc_collections").inc(0)

    def uninstall_gc_hooks(self) -> None:
        if self._installed:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:  # pragma: no cover - already removed
                pass
            self._installed = False


def sample_resources(registry: MetricsRegistry | None = None) -> dict[str, float]:
    """One-shot convenience: publish + return current resource stats."""
    return ResourceSampler(registry).sample()
