"""Structured logging for the library (observability layer).

Call sites obtain a component logger once::

    from repro.obs.logging import get_logger
    _log = get_logger("core.training")
    _log.info("iteration", extra={"obs": {"iteration": 3, "ll": -123.4}})

and never worry about formatting or destinations.  The ``obs`` extra is
the structured payload: the human formatter renders it as ``key=value``
pairs, the JSONL formatter emits it under ``"fields"``.

``configure_logging`` is the single switch (CLI flags or environment
variables) selecting level and output format.  Unconfigured, the base
``repro`` logger sits at WARNING and records propagate to the root
logger — quiet by default, and the instrumented code pays only a
disabled-logger check per call.

JSONL record schema (one object per line; ``tools/check_obs_output.py``
validates it):

========== ======================================================
key        meaning
========== ======================================================
ts         ISO-8601 UTC timestamp of the record
level      logging level name (``INFO`` …)
run        per-process run id (shared with the metrics snapshot)
component  dotted component under ``repro`` (e.g. ``core.training``)
event      the log message
elapsed_ms milliseconds since logging started in this process
fields     optional structured payload (the ``obs`` extra)
========== ======================================================
"""

from __future__ import annotations

import json
import logging
import os
import sys
import uuid
from datetime import datetime, timezone
from typing import IO

__all__ = [
    "LOG_RECORD_KEYS",
    "HumanFormatter",
    "JsonLinesFormatter",
    "configure_logging",
    "current_run_id",
    "get_logger",
    "reset_logging",
]

#: Keys every JSONL record is guaranteed to carry.
LOG_RECORD_KEYS = ("ts", "level", "run", "component", "event", "elapsed_ms")

_BASE_LOGGER = "repro"
_ENV_LEVEL = "REPRO_LOG_LEVEL"
_ENV_JSON = "REPRO_LOG_JSON"

_run_id: str = uuid.uuid4().hex[:12]
_installed_handler: logging.Handler | None = None

# The base logger exists from import time so unconfigured processes are
# quiet-but-functional: WARNING+ records propagate to the root logger.
logging.getLogger(_BASE_LOGGER).addHandler(logging.NullHandler())


def current_run_id() -> str:
    """The id stamped on every log record and metrics snapshot.

    Generated once per process; ``configure_logging(run_id=...)`` can pin
    it (e.g. to correlate distributed runs).
    """
    return _run_id


def get_logger(component: str) -> logging.Logger:
    """The logger for a dotted component name (e.g. ``"core.parallel"``).

    Loggers nest under the ``repro`` namespace so one ``configure_logging``
    call governs them all.
    """
    if component == _BASE_LOGGER or component.startswith(_BASE_LOGGER + "."):
        return logging.getLogger(component)
    return logging.getLogger(f"{_BASE_LOGGER}.{component}")


def _component_of(record: logging.LogRecord) -> str:
    name = record.name
    if name.startswith(_BASE_LOGGER + "."):
        return name[len(_BASE_LOGGER) + 1 :]
    return name


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record (see the module docstring for the schema)."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": datetime.fromtimestamp(record.created, tz=timezone.utc).isoformat(
                timespec="milliseconds"
            ),
            "level": record.levelname,
            "run": _run_id,
            "component": _component_of(record),
            "event": record.getMessage(),
            "elapsed_ms": round(record.relativeCreated, 3),
        }
        fields = getattr(record, "obs", None)
        if fields:
            payload["fields"] = fields
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, ensure_ascii=False, default=str)


class HumanFormatter(logging.Formatter):
    """Terminal-friendly rendering of the same records."""

    def format(self, record: logging.LogRecord) -> str:
        ts = datetime.fromtimestamp(record.created).strftime("%H:%M:%S.%f")[:-3]
        line = (
            f"{ts} {record.levelname:<7} [{_component_of(record)}] "
            f"{record.getMessage()}"
        )
        fields = getattr(record, "obs", None)
        if fields:
            line += " " + " ".join(f"{k}={v}" for k, v in fields.items())
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def _resolve_level(level: str | int | None) -> int:
    if level is None:
        level = os.environ.get(_ENV_LEVEL, "WARNING")
    if isinstance(level, int):
        return level
    resolved = logging.getLevelNamesMapping().get(str(level).upper())
    if resolved is None:
        # Imported lazily: repro.exceptions must stay importable without obs
        # and vice versa, so neither imports the other at module load.
        from repro.exceptions import ConfigurationError

        raise ConfigurationError(f"unknown log level {level!r}")
    return resolved


def configure_logging(
    level: str | int | None = None,
    *,
    json_lines: bool | None = None,
    stream: IO[str] | None = None,
    run_id: str | None = None,
) -> str:
    """Install the single handler governing all ``repro.*`` loggers.

    ``level`` and ``json_lines`` fall back to the ``REPRO_LOG_LEVEL`` and
    ``REPRO_LOG_JSON`` environment variables, then to ``WARNING`` and
    human-readable.  Records go to ``stream`` (default ``sys.stderr``) and
    stop propagating to the root logger.  Calling again reconfigures
    (replaces the previous handler) rather than stacking handlers.

    Returns the run id in effect, for correlation with metrics output.
    """
    global _run_id, _installed_handler
    if run_id is not None:
        _run_id = run_id
    if json_lines is None:
        json_lines = os.environ.get(_ENV_JSON, "").strip().lower() in ("1", "true", "yes")
    resolved = _resolve_level(level)

    base = logging.getLogger(_BASE_LOGGER)
    if _installed_handler is not None:
        base.removeHandler(_installed_handler)
        _installed_handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLinesFormatter() if json_lines else HumanFormatter())
    base.addHandler(handler)
    base.setLevel(resolved)
    base.propagate = False
    _installed_handler = handler
    return _run_id


def reset_logging() -> None:
    """Undo :func:`configure_logging` (used by tests for isolation)."""
    global _installed_handler
    base = logging.getLogger(_BASE_LOGGER)
    if _installed_handler is not None:
        base.removeHandler(_installed_handler)
        _installed_handler.close()
        _installed_handler = None
    base.setLevel(logging.NOTSET)
    base.propagate = True
