"""Observability layer: structured logging, metrics, training telemetry.

This package is deliberately a *leaf*: it imports nothing from the rest of
the library, so every layer — ``repro.core`` hot paths included — can
instrument itself without creating cycles.  Three pieces:

- :mod:`repro.obs.logging` — a ``get_logger()`` factory whose records
  carry a per-process run id and component name, rendered either
  human-readable or as JSON lines (``configure_logging``).
- :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters, gauges, and lightweight histograms, plus ``timer()``/``span()``
  context managers that attribute wall-time to named stages.
- :mod:`repro.obs.telemetry` — the :class:`TrainingTelemetry` record a
  fitted :class:`~repro.core.model.SkillModel` carries: per-iteration
  log-likelihoods, per-stage timings, pool events, checkpoint events.
- :mod:`repro.obs.trace` — a context-propagated :class:`Tracer` whose
  spans carry trace/span ids and attributes across the serve and
  training pipelines, exported as ``repro-trace/1`` JSONL.
- :mod:`repro.obs.resource` — a :class:`ResourceSampler` publishing
  peak-RSS, GC-pause, and open-fd stats as ``proc.*`` instruments.

Everything is opt-in and cheap when idle: the default logger sits at
WARNING with no sink configured, and metric updates are dictionary
lookups plus a lock — nothing here touches the per-action inner loops.
"""

from repro.obs.logging import (
    HumanFormatter,
    JsonLinesFormatter,
    configure_logging,
    current_run_id,
    get_logger,
    reset_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.resource import ResourceSampler, sample_resources
from repro.obs.telemetry import (
    CheckpointEvent,
    IterationRecord,
    TelemetryBuilder,
    TrainingTelemetry,
)
from repro.obs.trace import (
    Tracer,
    configure_tracing,
    current_trace_id,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "HumanFormatter",
    "JsonLinesFormatter",
    "configure_logging",
    "current_run_id",
    "get_logger",
    "reset_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "CheckpointEvent",
    "IterationRecord",
    "TelemetryBuilder",
    "TrainingTelemetry",
    "Tracer",
    "configure_tracing",
    "current_trace_id",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "ResourceSampler",
    "sample_resources",
]
