"""Out-of-core synthetic corpus generation, straight into an action store.

:func:`repro.synth.generator.generate_synthetic` materializes every action
as a Python object — the right shape for the paper-scale experiments, a
wall at the ROADMAP's 1M-user / 100M-action scale.  This module runs the
same three-step recipe (equal per-level item pools, Poisson sequence
lengths, at-level-with-``p``/easier-otherwise item choice, stochastic
level-ups) but simulates users in vectorized blocks and streams each
block into a :class:`~repro.data.store.StoreWriter`, so peak memory is
one block (~tens of MB), never the corpus.

Item generation is shared with the in-RAM path (``_generate_items``), so
catalogs and ground-truth difficulties agree exactly for a given config.
Sequences draw from a *different* seed stream (``"stream"`` rather than
``"sequences"``) because the vectorized simulation consumes randomness in
a different order — the corpora are statistically identical twins, not
byte-identical ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.features import FeatureSet
from repro.data.items import ItemCatalog
from repro.data.store import ActionStore, StoreWriter
from repro.exceptions import ConfigurationError
from repro.synth.generator import SyntheticConfig, _generate_items, synthetic_feature_set
from repro.synth.seeds import rng_for

__all__ = ["SyntheticStoreResult", "generate_synthetic_store"]


@dataclass(frozen=True)
class SyntheticStoreResult:
    """What the streaming generator hands back.

    Unlike :class:`~repro.synth.base.SimulatedDataset` there is no
    ``true_skills`` map — per-action ground-truth levels for 100M actions
    would defeat the out-of-core point.
    """

    store: ActionStore
    catalog: ItemCatalog
    feature_set: FeatureSet
    true_difficulty: dict[int, float]


def generate_synthetic_store(
    config: SyntheticConfig | None = None,
    path: str | Path = "synthetic.store",
    *,
    users_per_shard: int = 4096,
    block_users: int = 8192,
) -> SyntheticStoreResult:
    """Generate the synthetic recipe at ``config`` scale into a store at
    ``path`` without ever holding more than one user block in RAM."""
    config = config or SyntheticConfig()
    if block_users < 1:
        raise ConfigurationError("block_users must be >= 1")
    catalog, true_difficulty, _pools = _generate_items(config)
    per_level = config.num_items // config.num_levels
    num_levels = config.num_levels
    rng = rng_for(config.seed, "synthetic", "stream")

    if config.start_level_weights is None:
        start_probs = None
    else:
        weights = np.asarray(config.start_level_weights, dtype=np.float64)
        start_probs = weights / weights.sum()
    jump_weights = np.asarray(config.level_up_jump_weights, dtype=np.float64)
    jump_probs = jump_weights / jump_weights.sum()
    jump_sizes = np.arange(1, len(jump_probs) + 1, dtype=np.int64)

    writer = StoreWriter(path, users_per_shard=users_per_shard)
    # Synthetic item ids are 0..num_items-1 in pool order, so registering
    # them up front makes store code == item id (no per-action interning).
    writer.register_items(range(config.num_items))

    for block_start in range(0, config.num_users, block_users):
        block = min(block_users, config.num_users - block_start)
        lengths = np.maximum(1, rng.poisson(config.mean_sequence_length, size=block))
        if start_probs is None:
            levels = rng.integers(1, num_levels + 1, size=block)  # step 3b
        else:
            levels = rng.choice(num_levels, p=start_probs, size=block) + 1
        levels = levels.astype(np.int64)
        max_len = int(lengths.max())
        items = np.zeros((block, max_len), dtype=np.int64)
        for step in range(max_len):
            active = np.flatnonzero(lengths > step)
            if not len(active):
                break
            level = levels[active]
            # Step 3c: at-level with probability p; a level-1 user has no
            # easier pool and stays at level.  Draw both branches' source
            # levels vectorized (the easier draw needs level >= 2, which
            # at_level guarantees for the branch that uses it).
            at_level = (level == 1) | (rng.random(len(active)) < config.at_level_prob)
            easier = rng.integers(1, np.maximum(level, 2))
            src = np.where(at_level, level, easier)
            # Pools are contiguous id ranges, so an item draw is an offset
            # into the source level's block.
            offsets = rng.integers(0, per_level, size=len(active))
            items[active, step] = (src - 1) * per_level + offsets
            # Step 3d: only an at-level selection can improve the skill.
            up = at_level & (level < num_levels) & (rng.random(len(active)) < config.level_up_prob)
            if np.any(up):
                jumps = jump_sizes[rng.choice(len(jump_sizes), p=jump_probs, size=int(up.sum()))]
                levels[active[up]] = np.minimum(level[up] + jumps, num_levels)
        for k in range(block):
            length = int(lengths[k])
            writer.add_user(
                block_start + k,
                np.arange(length, dtype=np.float64),
                item_codes=items[k, :length],
                presorted=True,
            )

    store = writer.finalize()
    return SyntheticStoreResult(
        store=store,
        catalog=catalog,
        feature_set=synthetic_feature_set(),
        true_difficulty=true_difficulty,
    )
