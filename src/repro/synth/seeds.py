"""Deterministic random-number management for the data simulators.

Every generator in :mod:`repro.synth` takes a single integer ``seed`` and
derives all of its randomness from it through :class:`numpy.random.
SeedSequence` spawning, so that:

- the same seed always produces byte-identical datasets,
- two generators given different purposes ("items" vs "sequences") never
  share a stream even under the same seed, and
- adding a new consumer of randomness does not perturb existing ones.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["rng_for"]


def rng_for(seed: int, *purpose: str) -> np.random.Generator:
    """A generator keyed by ``seed`` and a purpose path.

    ``rng_for(7, "items")`` and ``rng_for(7, "sequences", "user-42")`` are
    independent streams; each is reproducible in isolation.
    """
    keys = [zlib.crc32(part.encode("utf-8")) for part in purpose]
    return np.random.default_rng(np.random.SeedSequence([seed, *keys]))
