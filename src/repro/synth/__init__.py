"""Data generators: the paper's Synthetic recipe plus simulators for its
four real domains (language, cooking, beer, film).

Real counterparts are proprietary or no longer distributed; each simulator
reproduces the corresponding domain's feature schema and the specific
phenomena the paper analyses (see each module's docstring and DESIGN.md's
substitution table).
"""

from repro.synth.base import SimulatedDataset, monotone_skill_path, sample_sequence_length
from repro.synth.seeds import rng_for
from repro.synth.generator import SyntheticConfig, generate_synthetic, synthetic_feature_set
from repro.synth.stream import SyntheticStoreResult, generate_synthetic_store
from repro.synth.language import (
    CORRECTION_RULES,
    LanguageConfig,
    generate_language,
    language_feature_set,
)
from repro.synth.cooking import CookingConfig, cooking_feature_set, generate_cooking
from repro.synth.beer import BEER_STYLES, BeerConfig, beer_feature_set, generate_beer
from repro.synth.film import GENRES, FilmConfig, film_feature_set, generate_film
from repro.synth.forgetting import ForgettingDataConfig, generate_forgetting

__all__ = [
    "SimulatedDataset",
    "monotone_skill_path",
    "sample_sequence_length",
    "rng_for",
    "SyntheticConfig",
    "generate_synthetic",
    "synthetic_feature_set",
    "SyntheticStoreResult",
    "generate_synthetic_store",
    "CORRECTION_RULES",
    "LanguageConfig",
    "generate_language",
    "language_feature_set",
    "CookingConfig",
    "cooking_feature_set",
    "generate_cooking",
    "BEER_STYLES",
    "BeerConfig",
    "beer_feature_set",
    "generate_beer",
    "GENRES",
    "FilmConfig",
    "film_feature_set",
    "generate_film",
    "ForgettingDataConfig",
    "generate_forgetting",
]
