"""Simulated Lang-8 language-learning domain.

The paper's Language dataset (NAIST Lang-8 Learner Corpora) is
distribution-restricted, so we simulate a corpus with the same structure
and the same skill signal the paper reports (Section VI-A/C, Figure 4,
Table II):

- Every action is one user posting an English article; **each article is a
  distinct item selected exactly once** (by its author), which is why the
  paper excludes this domain from item prediction and never filters it.
- Item features mirror the paper's:

  - ``sentences`` — sentence count, Poisson; the paper found *no* skill
    trend here (means ≈ 10.8 / 11.6 / 10.3 across levels), so we hold the
    mean flat on purpose: a good model should learn nothing from it.
  - ``corrections`` — mean corrections per corrector, gamma; decreases
    with skill (paper means ≈ 5.06 / 4.85 / 2.64).
  - ``corrected_ratio`` — fraction of corrected sentences, gamma;
    decreases with skill.
  - ``rule`` — a categorical correction rule extracted from the article's
    edits; novice rules (capitalization "i"→"I", missing periods) fade as
    skill grows and advanced rules (article usage "a"→"the", annotator
    parentheses) grow — exactly the dominance contrast of Table II.

The simulator is the only one whose catalog grows with the log (one item
per action), exercising the extreme-sparsity path of the library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.data.actions import Action, ActionLog, ActionSequence
from repro.data.items import Item, ItemCatalog
from repro.exceptions import ConfigurationError
from repro.synth.base import SimulatedDataset, sample_sequence_length
from repro.synth.seeds import rng_for

__all__ = ["LanguageConfig", "generate_language", "language_feature_set", "CORRECTION_RULES"]

#: Correction rules as (before, after, novice_weight, expert_weight).
#: ``ε`` marks an insertion/deletion, as in the paper's Table II.
#: Novice-dominated rules carry high first weights; expert-dominated rules
#: high second weights; fillers are flat.
CORRECTION_RULES: tuple[tuple[str, str, float, float], ...] = (
    # --- novice-dominated (capitalization, punctuation, basic articles)
    ('"i"', '"I"', 10.0, 1.0),
    ("ε", '"I"', 7.0, 1.0),
    ('"english"', '"English"', 6.0, 0.8),
    ("ε", '"a"', 6.0, 1.5),
    ("ε", '"."', 5.5, 1.2),
    ("ε", '"my"', 4.0, 1.0),
    ('"."', "ε", 4.0, 1.2),
    ("ε", '"English"', 3.5, 0.8),
    ('","', "ε", 3.5, 1.3),
    ('"i"', "ε", 3.0, 0.7),
    # --- expert-dominated (article nuance, annotator comments in brackets)
    ("ε", '"the"', 2.0, 9.0),
    ("ε", '"("', 0.8, 6.5),
    ("ε", '")"', 0.8, 6.5),
    ('"the"', "ε", 1.2, 6.0),
    ("ε", '"of"', 1.0, 5.0),
    ('"of"', "ε", 0.8, 3.5),
    ("ε", '"["', 0.4, 2.8),
    ("ε", '"]"', 0.4, 2.8),
    ('"a"', '"the"', 1.0, 3.0),
    ("ε", '"/"', 0.3, 2.0),
    # --- skill-neutral filler rules
    ('"is"', '"was"', 2.0, 2.0),
    ('"go"', '"went"', 2.0, 2.0),
    ('"very"', "ε", 1.5, 1.5),
    ('"much"', '"many"', 1.5, 1.5),
    ('"in"', '"on"', 2.5, 2.5),
    ('"at"', '"in"', 2.0, 2.0),
)


@dataclass(frozen=True)
class LanguageConfig:
    """Simulation knobs; the defaults produce the paper's qualitative shape.

    ``correction_means`` are the per-level means of the
    corrections-per-corrector feature (length must equal ``num_levels``);
    the defaults are the values the paper learned.  ``sentence_mean`` is
    deliberately level-independent.
    """

    num_users: int = 800
    num_levels: int = 3
    mean_sequence_length: float = 12.0
    sentence_mean: float = 11.0
    correction_means: tuple[float, ...] = (5.06, 4.85, 2.64)
    corrected_ratio_means: tuple[float, ...] = (0.80, 0.62, 0.38)
    level_up_prob: float = 0.12
    start_at_bottom_prob: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ConfigurationError("need at least one user")
        if len(self.correction_means) != self.num_levels:
            raise ConfigurationError("correction_means must have one entry per level")
        if len(self.corrected_ratio_means) != self.num_levels:
            raise ConfigurationError("corrected_ratio_means must have one entry per level")
        if any(m <= 0 for m in self.correction_means + self.corrected_ratio_means):
            raise ConfigurationError("gamma feature means must be positive")


def language_feature_set() -> FeatureSet:
    """Feature schema of simulated articles.

    No ID feature: every article is written once, so the item id carries
    zero generalizable signal (the paper excludes Language from the
    ID-based prediction tasks for the same reason).
    """
    return FeatureSet(
        [
            FeatureSpec("sentences", FeatureKind.COUNT),
            FeatureSpec("corrections", FeatureKind.POSITIVE),
            FeatureSpec("corrected_ratio", FeatureKind.POSITIVE),
            FeatureSpec("rule", FeatureKind.CATEGORICAL, vocabulary=_rule_names()),
        ]
    )


def _rule_names() -> tuple[str, ...]:
    return tuple(f"{before}→{after}" for before, after, _, _ in CORRECTION_RULES)


def _rule_probs(config: LanguageConfig) -> np.ndarray:
    """Per-level rule distributions, shape ``(num_levels, num_rules)``.

    Weights interpolate linearly from the novice weight at level 1 to the
    expert weight at level S.
    """
    rules = np.asarray(
        [(novice, expert) for _, _, novice, expert in CORRECTION_RULES], dtype=np.float64
    )
    probs = np.empty((config.num_levels, len(rules)))
    for level in range(1, config.num_levels + 1):
        frac = 0.0 if config.num_levels == 1 else (level - 1) / (config.num_levels - 1)
        weights = rules[:, 0] * (1.0 - frac) + rules[:, 1] * frac
        probs[level - 1] = weights / weights.sum()
    return probs


def generate_language(config: LanguageConfig | None = None) -> SimulatedDataset:
    """Simulate learners posting articles; one fresh item per action."""
    config = config or LanguageConfig()
    rng = rng_for(config.seed, "language")
    rule_probs = _rule_probs(config)
    gamma_shape = 4.0  # moderate spread around the per-level means

    items: list[Item] = []
    sequences: list[ActionSequence] = []
    true_skills: dict[str, np.ndarray] = {}
    true_difficulty: dict[str, float] = {}
    article_counter = 0
    for u in range(config.num_users):
        user = f"learner{u}"
        length = sample_sequence_length(rng, config.mean_sequence_length)
        level = 1 if rng.random() < config.start_at_bottom_prob else int(
            rng.integers(1, config.num_levels + 1)
        )
        actions = []
        levels = np.empty(length, dtype=np.int64)
        for n in range(length):
            levels[n] = level
            article_id = f"article{article_counter}"
            article_counter += 1
            sentences = int(rng.poisson(config.sentence_mean))
            corrections = float(
                rng.gamma(gamma_shape, config.correction_means[level - 1] / gamma_shape)
            )
            ratio = float(
                rng.gamma(gamma_shape, config.corrected_ratio_means[level - 1] / gamma_shape)
            )
            rule = _rule_names()[int(rng.choice(len(CORRECTION_RULES), p=rule_probs[level - 1]))]
            items.append(
                Item(
                    id=article_id,
                    features={
                        "sentences": sentences,
                        "corrections": max(corrections, 1e-6),
                        "corrected_ratio": max(ratio, 1e-6),
                        "rule": rule,
                    },
                    metadata={"author": user, "true_level": level},
                )
            )
            # An article "written at" level s effectively has difficulty s:
            # only a level-s author produces it.
            true_difficulty[article_id] = float(level)
            actions.append(Action(time=float(n), user=user, item=article_id))
            if level < config.num_levels and rng.random() < config.level_up_prob:
                level += 1
        sequences.append(ActionSequence(user, actions, presorted=True))
        true_skills[user] = levels

    return SimulatedDataset(
        name="language",
        log=ActionLog(sequences),
        catalog=ItemCatalog(items),
        feature_set=language_feature_set(),
        true_skills=true_skills,
        true_difficulty=true_difficulty,
    )
