"""Synthetic dataset with skill decay (for the forgetting extension).

Extends the paper's synthetic recipe (Section VI-A) with the phenomenon
its discussion section raises: skills fade over idle periods.  Users act
at irregular times (exponential inter-arrival gaps); before each action,
the skill drops one level with probability ``1 − exp(−gap / half_life)``
(Ebbinghaus-shaped), then the usual within-capacity selection and
step-up-on-success dynamics apply.

Ground truth therefore contains genuine level *decreases*, which the base
monotone model cannot represent — exactly the failure mode
:mod:`repro.core.forgetting` exists to fix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.actions import Action, ActionLog, ActionSequence
from repro.exceptions import ConfigurationError
from repro.synth.base import SimulatedDataset, sample_sequence_length
from repro.synth.generator import SyntheticConfig, _generate_items, synthetic_feature_set
from repro.synth.seeds import rng_for

__all__ = ["ForgettingDataConfig", "generate_forgetting"]


@dataclass(frozen=True)
class ForgettingDataConfig:
    """Knobs of the decaying-skill generator.

    ``base`` supplies the item catalog and selection dynamics;
    ``mean_gap``/``long_gap_prob``/``long_gap_scale`` shape the action
    times (mostly short gaps with occasional long breaks, where forgetting
    bites); ``half_life`` is the true decay constant.
    """

    #: Decay must stay an occasional correction, not the dominant drift:
    #: if forgetting outpaces levelling up, the population drains to level
    #: 1 and *any* progression model inverts.  The defaults keep expected
    #: ups above expected drops (≈ 0.08 vs ≈ 0.05 per action).
    base: SyntheticConfig = SyntheticConfig(
        num_users=300, num_items=1500, seed=41, level_up_prob=0.15
    )
    mean_gap: float = 0.2
    long_gap_prob: float = 0.05
    long_gap_scale: float = 40.0
    half_life: float = 20.0

    def __post_init__(self) -> None:
        if self.mean_gap <= 0 or self.long_gap_scale <= 0:
            raise ConfigurationError("gap scales must be positive")
        if not 0 <= self.long_gap_prob <= 1:
            raise ConfigurationError("long_gap_prob must be in [0, 1]")
        if self.half_life <= 0:
            raise ConfigurationError("half_life must be positive")


def generate_forgetting(config: ForgettingDataConfig | None = None) -> SimulatedDataset:
    """Generate action sequences whose true skill can decay over gaps."""
    config = config or ForgettingDataConfig()
    base = config.base
    catalog, true_difficulty, pools = _generate_items(base)
    rng = rng_for(base.seed, "forgetting", "sequences")

    sequences = []
    true_skills: dict[int, np.ndarray] = {}
    for user in range(base.num_users):
        length = sample_sequence_length(rng, base.mean_sequence_length)
        level = int(rng.integers(1, base.num_levels + 1))
        actions = []
        levels = np.empty(length, dtype=np.int64)
        now = 0.0
        for n in range(length):
            if n > 0:
                # Mostly steady practice, occasionally a long break.
                if rng.random() < config.long_gap_prob:
                    gap = rng.exponential(config.long_gap_scale)
                else:
                    gap = rng.exponential(config.mean_gap)
                now += gap
                # Ebbinghaus decay over the idle gap.
                forget_prob = 1.0 - np.exp(-gap / config.half_life)
                if level > 1 and rng.random() < forget_prob:
                    level -= 1
            levels[n] = level
            at_level = level == 1 or rng.random() < base.at_level_prob
            if at_level:
                pool = pools[level - 1]
            else:
                easier = int(rng.integers(1, level))
                pool = pools[easier - 1]
            item_id = int(pool[rng.integers(len(pool))])
            actions.append(Action(time=now, user=user, item=item_id))
            if at_level and level < base.num_levels and rng.random() < base.level_up_prob:
                level += 1
        sequences.append(ActionSequence(user, actions, presorted=True))
        true_skills[user] = levels

    return SimulatedDataset(
        name="forgetting",
        log=ActionLog(sequences),
        catalog=catalog,
        feature_set=synthetic_feature_set(),
        true_skills=true_skills,
        true_difficulty=true_difficulty,
    )
