"""Shared building blocks for the domain simulators.

Every simulator produces a :class:`SimulatedDataset`: an action log, an
item catalog, the feature set to model it with, and the *ground truth* the
generator used (per-action true skill, per-item true difficulty) so
experiments can score estimates against it.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.features import FeatureSet
from repro.data.actions import ActionLog
from repro.data.items import ItemCatalog
from repro.exceptions import ConfigurationError

__all__ = ["SimulatedDataset", "sample_sequence_length", "monotone_skill_path"]


@dataclass(frozen=True)
class SimulatedDataset:
    """A generated domain: data plus the ground truth behind it.

    ``true_skills`` maps user → 1-based true level per action (aligned with
    the user's sequence).  ``true_difficulty`` maps item → the real-valued
    difficulty the generator assigned.  Real datasets have neither; the
    simulators always do, which is what makes Tables VI-IX measurable.
    """

    name: str
    log: ActionLog
    catalog: ItemCatalog
    feature_set: FeatureSet
    true_skills: Mapping[Hashable, np.ndarray] = field(default_factory=dict)
    true_difficulty: Mapping[Hashable, float] = field(default_factory=dict)

    def true_skill_array(self) -> np.ndarray:
        """All true per-action levels concatenated in log order."""
        parts = [self.true_skills[seq.user] for seq in self.log]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])


def sample_sequence_length(
    rng: np.random.Generator, mean: float, minimum: int = 1
) -> int:
    """Sequence length ``~ Poisson(mean)``, floored at ``minimum``.

    The paper draws ``|A_u| ~ Poisson(50)`` (Section VI-A step 3a).
    """
    if mean <= 0:
        raise ConfigurationError("mean sequence length must be positive")
    return max(minimum, int(rng.poisson(mean)))


def monotone_skill_path(
    rng: np.random.Generator,
    length: int,
    num_levels: int,
    *,
    start_level: int | None = None,
    level_up_prob: float = 0.1,
) -> np.ndarray:
    """A 1-based, monotone, step-by-one skill path of ``length`` actions.

    ``start_level=None`` draws the initial level uniformly from ``1..S``
    (paper step 3b).  Each action thereafter levels up with probability
    ``level_up_prob`` while below the cap.  Domain simulators that couple
    level-ups to *what* was selected (the paper's step 3d) implement their
    own loop and only use this for background users.
    """
    if num_levels < 1:
        raise ConfigurationError("num_levels must be >= 1")
    if not 0 <= level_up_prob <= 1:
        raise ConfigurationError("level_up_prob must be in [0, 1]")
    level = int(rng.integers(1, num_levels + 1)) if start_level is None else int(start_level)
    if not 1 <= level <= num_levels:
        raise ConfigurationError(f"start_level {level} outside 1..{num_levels}")
    path = np.empty(length, dtype=np.int64)
    for n in range(length):
        path[n] = level
        if level < num_levels and rng.random() < level_up_prob:
            level += 1
    return path
