"""The paper's synthetic dataset (Section VI-A, "Synthetic").

The generative recipe, verbatim from the paper:

1. Three feature distributions (categorical, gamma, Poisson) get distinct
   parameters per skill level: the categorical for level ``s`` boosts the
   categories congruent to ``s`` (mod ``S``); the gamma and Poisson means
   grow with ``s``.
2. The same number of items is generated per level; an item for level
   ``s`` draws its three features from that level's distributions and has
   ground-truth difficulty ``d_i = s``.
3. Each user's sequence: length ``~ Poisson(50)``; initial skill uniform
   on ``1..S``; each action picks an item at the current level with
   probability ``p = 0.5`` and from the easier pools otherwise; an
   at-level action levels the user up with probability ``0.1``.

``Synthetic_dense`` (Tables VIII/IX) is the same recipe with 5× fewer
items, i.e. each item selected ~5× more often.  Use
:meth:`SyntheticConfig.dense` for it.

Sizes default to a laptop-friendly scale; :meth:`SyntheticConfig.paper_scale`
restores the paper's 10,000 users × 50,000 items.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.data.actions import Action, ActionLog, ActionSequence
from repro.data.items import Item, ItemCatalog
from repro.exceptions import ConfigurationError
from repro.synth.base import SimulatedDataset, sample_sequence_length
from repro.synth.seeds import rng_for

__all__ = ["SyntheticConfig", "generate_synthetic", "synthetic_feature_set"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator.

    ``categorical_size`` is ``C_f`` of the categorical feature;
    ``categorical_peak_weight`` is how much more likely a level's own
    categories are than the rest (the paper only says "higher").
    ``gamma_shape``/``gamma_scale_per_level`` and ``poisson_base``/
    ``poisson_per_level`` control how separable levels are: the defaults
    give substantial overlap between adjacent levels so that no single
    feature solves the task — matching the paper's finding that each added
    feature helps (Table VI).
    """

    num_users: int = 1000
    num_items: int = 5000
    num_levels: int = 5
    mean_sequence_length: float = 50.0
    at_level_prob: float = 0.5
    level_up_prob: float = 0.1
    categorical_size: int = 10
    categorical_peak_weight: float = 4.0
    gamma_shape: float = 5.0
    gamma_scale_per_level: float = 0.4
    poisson_base: float = 2.0
    poisson_per_level: float = 3.0
    #: Optional initial-skill distribution over levels 1..S.  ``None``
    #: means uniform (the paper's step 3b); a skewed vector creates the
    #: imbalanced skill populations Section V-B.2 motivates the empirical
    #: difficulty prior with.
    start_level_weights: tuple[float, ...] | None = None
    #: Distribution over jump sizes 1..k when a level-up fires.  The
    #: paper's recipe is step-by-one, i.e. ``(1.0,)``; heavier tails
    #: exercise the skip-level progression extension (Section IV-A's
    #: pointer to Shin et al.).
    level_up_jump_weights: tuple[float, ...] = (1.0,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_items < 1:
            raise ConfigurationError("need at least one user and one item")
        if self.num_levels < 2:
            raise ConfigurationError("the synthetic recipe needs >= 2 skill levels")
        if self.num_items % self.num_levels != 0:
            raise ConfigurationError(
                f"num_items ({self.num_items}) must be divisible by "
                f"num_levels ({self.num_levels}) — the paper generates equal pools"
            )
        if not 0 <= self.at_level_prob <= 1 or not 0 <= self.level_up_prob <= 1:
            raise ConfigurationError("probabilities must be in [0, 1]")
        if self.categorical_size < self.num_levels:
            raise ConfigurationError("categorical_size must be >= num_levels")
        jump_weights = tuple(float(w) for w in self.level_up_jump_weights)
        if not jump_weights or any(w < 0 for w in jump_weights) or sum(jump_weights) <= 0:
            raise ConfigurationError(
                "level_up_jump_weights must be non-empty, non-negative, not all zero"
            )
        object.__setattr__(self, "level_up_jump_weights", jump_weights)
        if self.start_level_weights is not None:
            weights = tuple(float(w) for w in self.start_level_weights)
            if len(weights) != self.num_levels:
                raise ConfigurationError(
                    "start_level_weights needs one weight per level"
                )
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ConfigurationError("start_level_weights must be non-negative, not all zero")
            object.__setattr__(self, "start_level_weights", weights)

    @classmethod
    def paper_scale(cls, **overrides) -> "SyntheticConfig":
        """The paper's Synthetic: 10,000 users, 50,000 items, S=5."""
        return cls(num_users=10_000, num_items=50_000, **overrides)

    def dense(self) -> "SyntheticConfig":
        """The Synthetic_dense variant: one fifth as many items.

        Everything else — including the seed — is unchanged, mirroring the
        paper's "the only difference ... is the number of items".
        """
        return replace(self, num_items=self.num_items // 5)


def synthetic_feature_set(*, include_id: bool = True) -> FeatureSet:
    """Feature schema of the synthetic items.

    ``include_id=False`` drops the item-id feature, used when composing the
    ablation feature sets of Table VI by hand.
    """
    specs = [
        FeatureSpec("category", FeatureKind.CATEGORICAL),
        FeatureSpec("intensity", FeatureKind.POSITIVE),  # gamma-distributed
        FeatureSpec("steps", FeatureKind.COUNT),  # Poisson-distributed
    ]
    feature_set = FeatureSet(specs)
    return feature_set.with_id_feature() if include_id else feature_set


def _categorical_probs(config: SyntheticConfig, level: int) -> np.ndarray:
    """Level ``level``'s categorical feature distribution (paper step 1)."""
    weights = np.ones(config.categorical_size, dtype=np.float64)
    own = np.arange(config.categorical_size) % config.num_levels == (level - 1)
    weights[own] = config.categorical_peak_weight
    return weights / weights.sum()


def _generate_items(config: SyntheticConfig) -> tuple[ItemCatalog, dict[int, float], list[np.ndarray]]:
    """Paper step 2: equal item pools per level, features from that level."""
    rng = rng_for(config.seed, "synthetic", "items")
    per_level = config.num_items // config.num_levels
    items = []
    true_difficulty: dict[int, float] = {}
    pools: list[np.ndarray] = []
    next_id = 0
    for level in range(1, config.num_levels + 1):
        categories = rng.choice(
            config.categorical_size, size=per_level, p=_categorical_probs(config, level)
        )
        intensities = rng.gamma(
            shape=config.gamma_shape,
            scale=config.gamma_scale_per_level * level,
            size=per_level,
        )
        intensities = np.maximum(intensities, 1e-9)  # gamma support is strictly positive
        steps = rng.poisson(
            lam=config.poisson_base + config.poisson_per_level * level, size=per_level
        )
        pool = np.arange(next_id, next_id + per_level, dtype=np.int64)
        pools.append(pool)
        for k in range(per_level):
            item_id = next_id + k
            items.append(
                Item(
                    id=item_id,
                    features={
                        "category": int(categories[k]),
                        "intensity": float(intensities[k]),
                        "steps": int(steps[k]),
                    },
                    metadata={"difficulty": float(level)},
                )
            )
            true_difficulty[item_id] = float(level)
        next_id += per_level
    return ItemCatalog(items), true_difficulty, pools


def generate_synthetic(config: SyntheticConfig | None = None) -> SimulatedDataset:
    """Run the full three-step recipe and return data plus ground truth."""
    config = config or SyntheticConfig()
    catalog, true_difficulty, pools = _generate_items(config)
    rng = rng_for(config.seed, "synthetic", "sequences")

    if config.start_level_weights is None:
        start_probs = None
    else:
        weights = np.asarray(config.start_level_weights, dtype=np.float64)
        start_probs = weights / weights.sum()
    jump_weights = np.asarray(config.level_up_jump_weights, dtype=np.float64)
    jump_probs = jump_weights / jump_weights.sum()
    jump_sizes = np.arange(1, len(jump_probs) + 1)

    sequences = []
    true_skills: dict[int, np.ndarray] = {}
    for user in range(config.num_users):
        length = sample_sequence_length(rng, config.mean_sequence_length)
        if start_probs is None:
            level = int(rng.integers(1, config.num_levels + 1))  # step 3b
        else:
            level = int(rng.choice(config.num_levels, p=start_probs)) + 1
        actions = []
        levels = np.empty(length, dtype=np.int64)
        for n in range(length):
            levels[n] = level
            # Step 3c: at-level item with p, otherwise from the easier pools.
            # A level-1 user has no easier pool and stays at level.
            at_level = level == 1 or rng.random() < config.at_level_prob
            if at_level:
                pool = pools[level - 1]
            else:
                easier_level = int(rng.integers(1, level))
                pool = pools[easier_level - 1]
            item_id = int(pool[rng.integers(len(pool))])
            actions.append(Action(time=float(n), user=user, item=item_id))
            # Step 3d: only an at-level selection can improve the skill.
            if at_level and level < config.num_levels and rng.random() < config.level_up_prob:
                jump = int(jump_sizes[rng.choice(len(jump_sizes), p=jump_probs)])
                level = min(level + jump, config.num_levels)
        sequences.append(ActionSequence(user, actions, presorted=True))
        true_skills[user] = levels

    return SimulatedDataset(
        name="synthetic",
        log=ActionLog(sequences),
        catalog=catalog,
        feature_set=synthetic_feature_set(),
        true_skills=true_skills,
        true_difficulty=true_difficulty,
    )
