"""Simulated Rakuten Recipe cooking domain.

The paper's Cooking dataset (cook-report actions on Rakuten Recipe) is
license-gated; this simulator reproduces its schema and the two phenomena
the paper reports for it:

- **Complexity grows with skill** (Figure 5): cooking-time class and step
  count shift upward from level 2 to level 4+.
- **Novice overreach** (Section VI-C): the lowest-level users select
  recipes that look like *medium*-level recipes surprisingly often —
  beginners cannot judge difficulty yet.  The ``novice_overreach``
  probability injects exactly this violation of the within-capacity
  assumption, so the paper's observation ("the distributions for the
  lowest skill level turned out to have shapes similar to those for the
  medium skill level") is reproducible, and switching the knob to ``0``
  shows the clean monotone shape.

Each recipe has: id, category, cooking-time class, cost class, main
ingredient (all categorical), and ingredient/step counts (Poisson) — the
same feature inventory the paper models, with categorical distributions
for the first five and Poisson for the counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.data.actions import Action, ActionLog, ActionSequence
from repro.data.items import Item, ItemCatalog
from repro.exceptions import ConfigurationError
from repro.synth.base import SimulatedDataset, sample_sequence_length
from repro.synth.seeds import rng_for

__all__ = ["CookingConfig", "generate_cooking", "cooking_feature_set"]

CATEGORIES = (
    "rice", "noodles", "soup", "salad", "meat", "fish",
    "vegetable", "dessert", "bread", "bento", "hotpot", "sauce",
)
TIME_CLASSES = ("~15min", "~30min", "~60min", "60min+")
COST_CLASSES = ("~300yen", "~500yen", "~1000yen", "1000yen+")
INGREDIENTS = (
    "egg", "chicken", "pork", "beef", "tofu", "rice", "onion", "carrot",
    "potato", "cabbage", "salmon", "shrimp", "mushroom", "cheese",
    "flour", "miso", "soy-sauce", "dashi", "cream", "chocolate",
)


@dataclass(frozen=True)
class CookingConfig:
    """Simulation knobs; paper-shaped ratios at laptop scale.

    The paper's Cooking dataset has ≈19 actions/user and ≈3 actions/item —
    the sparsest real domain, which is where the multi-faceted model's
    advantage is largest (Tables X/XI discussion).
    """

    num_users: int = 600
    num_items: int = 3000
    num_levels: int = 5
    mean_sequence_length: float = 19.0
    level_up_prob: float = 0.2
    at_level_prob: float = 0.8
    novice_overreach: float = 0.5
    start_at_bottom_prob: float = 0.5
    popularity_exponent: float = 0.9
    #: Emit a per-action satisfaction rating in [0, 5]: high when the
    #: recipe was within the cook's ability, dropping with the overreach
    #: gap (d − s).  This is the signal Section VII's satisfaction
    #: modelling discussion asks for; the skill model itself never uses it
    #: unless trained through repro.core.satisfaction.
    emit_ratings: bool = True
    rating_noise: float = 0.4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_items < 1:
            raise ConfigurationError("need at least one user and one item")
        if self.num_levels < 2:
            raise ConfigurationError("need >= 2 skill levels")
        if not 0 <= self.novice_overreach <= 1:
            raise ConfigurationError("novice_overreach must be in [0, 1]")
        if not 0 <= self.start_at_bottom_prob <= 1:
            raise ConfigurationError("start_at_bottom_prob must be in [0, 1]")
        if self.popularity_exponent < 0:
            raise ConfigurationError("popularity_exponent must be >= 0")


def cooking_feature_set() -> FeatureSet:
    """Feature schema of recipes (paper Section VI-A, Cooking)."""
    return FeatureSet(
        [
            FeatureSpec("category", FeatureKind.CATEGORICAL, vocabulary=CATEGORIES),
            FeatureSpec("time_class", FeatureKind.CATEGORICAL, vocabulary=TIME_CLASSES),
            FeatureSpec("cost_class", FeatureKind.CATEGORICAL, vocabulary=COST_CLASSES),
            FeatureSpec("main_ingredient", FeatureKind.CATEGORICAL, vocabulary=INGREDIENTS),
            FeatureSpec("num_ingredients", FeatureKind.COUNT),
            FeatureSpec("num_steps", FeatureKind.COUNT),
        ]
    ).with_id_feature()


def _recipe_complexity_to_classes(
    rng: np.random.Generator, complexity: float, num_levels: int
) -> tuple[str, str]:
    """Map a recipe's latent complexity to noisy time/cost classes."""
    frac = (complexity - 1.0) / max(num_levels - 1.0, 1.0)
    time_idx = int(np.clip(round(frac * (len(TIME_CLASSES) - 1) + rng.normal(0, 0.6)), 0, 3))
    cost_idx = int(np.clip(round(frac * (len(COST_CLASSES) - 1) + rng.normal(0, 0.8)), 0, 3))
    return TIME_CLASSES[time_idx], COST_CLASSES[cost_idx]


def _generate_recipes(config: CookingConfig) -> tuple[ItemCatalog, dict[str, float], list[np.ndarray]]:
    rng = rng_for(config.seed, "cooking", "recipes")
    per_level = np.full(config.num_levels, config.num_items // config.num_levels)
    per_level[: config.num_items % config.num_levels] += 1

    items = []
    true_difficulty: dict[str, float] = {}
    pools: list[np.ndarray] = []
    counter = 0
    for level in range(1, config.num_levels + 1):
        count = int(per_level[level - 1])
        pool = []
        for _ in range(count):
            recipe_id = f"recipe{counter}"
            counter += 1
            complexity = float(np.clip(level + rng.normal(0, 0.4), 1.0, config.num_levels))
            time_class, cost_class = _recipe_complexity_to_classes(
                rng, complexity, config.num_levels
            )
            items.append(
                Item(
                    id=recipe_id,
                    features={
                        "category": CATEGORIES[int(rng.integers(len(CATEGORIES)))],
                        "time_class": time_class,
                        "cost_class": cost_class,
                        "main_ingredient": INGREDIENTS[int(rng.integers(len(INGREDIENTS)))],
                        "num_ingredients": int(rng.poisson(2.0 + 1.5 * complexity)),
                        "num_steps": int(rng.poisson(1.5 + 2.0 * complexity)),
                    },
                    metadata={"difficulty": complexity},
                )
            )
            true_difficulty[recipe_id] = complexity
            pool.append(recipe_id)
        pools.append(np.asarray(pool, dtype=object))
    return ItemCatalog(items), true_difficulty, pools


def _zipf_cdf(rng: np.random.Generator, size: int, exponent: float) -> np.ndarray:
    """CDF of a Zipf-like popularity over ``size`` items in random order.

    Real recipe sites are heavily head-skewed: a few recipes draw most of
    the cook reports.  Without this skew, item-ID ranking could never beat
    random guessing (every item in a pool would be equally likely), which
    is not how the paper's Tables X/XI behave.
    """
    weights = 1.0 / np.arange(1, size + 1, dtype=np.float64) ** exponent
    rng.shuffle(weights)
    return np.cumsum(weights)


def _pick(rng: np.random.Generator, cdf: np.ndarray) -> int:
    idx = int(np.searchsorted(cdf, rng.random() * cdf[-1], side="right"))
    return min(idx, len(cdf) - 1)


def generate_cooking(config: CookingConfig | None = None) -> SimulatedDataset:
    """Simulate cook-report sequences with the novice-overreach violation."""
    config = config or CookingConfig()
    catalog, true_difficulty, pools = _generate_recipes(config)
    rng = rng_for(config.seed, "cooking", "sequences")
    pool_cdfs = [
        _zipf_cdf(rng, len(pool), config.popularity_exponent) for pool in pools
    ]
    medium = (config.num_levels + 1) // 2 + 1  # "too complex" target for novices

    sequences = []
    true_skills: dict[str, np.ndarray] = {}
    for u in range(config.num_users):
        user = f"cook{u}"
        length = sample_sequence_length(rng, config.mean_sequence_length)
        # Most cooks enter the data inexperienced; the rest start anywhere.
        if rng.random() < config.start_at_bottom_prob:
            level = 1
        else:
            level = int(rng.integers(1, config.num_levels + 1))
        actions = []
        levels = np.empty(length, dtype=np.int64)
        for n in range(length):
            levels[n] = level
            if level == 1 and rng.random() < config.novice_overreach:
                # Beginners misjudge difficulty: pick a medium-complexity
                # recipe instead of an easy one (paper Section VI-C).
                pool_level = min(medium, config.num_levels)
                at_level = False
            elif level == 1 or rng.random() < config.at_level_prob:
                pool_level = level
                at_level = True
            else:
                pool_level = int(rng.integers(1, level))
                at_level = False
            pool = pools[pool_level - 1]
            recipe_id = str(pool[_pick(rng, pool_cdfs[pool_level - 1])])
            if config.emit_ratings:
                # Satisfaction: cooking within ability goes well; attempting
                # a recipe beyond one's level goes badly in proportion.
                overreach = max(0.0, true_difficulty[recipe_id] - level)
                rating = float(
                    np.clip(4.2 - 1.3 * overreach + rng.normal(0, config.rating_noise), 0, 5)
                )
            else:
                rating = None
            actions.append(Action(time=float(n), user=user, item=recipe_id, rating=rating))
            if at_level and level < config.num_levels and rng.random() < config.level_up_prob:
                level += 1
        sequences.append(ActionSequence(user, actions, presorted=True))
        true_skills[user] = levels

    return SimulatedDataset(
        name="cooking",
        log=ActionLog(sequences),
        catalog=catalog,
        feature_set=cooking_feature_set(),
        true_skills=true_skills,
        true_difficulty=true_difficulty,
    )
