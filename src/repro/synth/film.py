"""Simulated MovieLens film domain with the lastness confounder.

The paper's Film analysis (Section VI-C, Tables IV/V) hinges on a temporal
confounder it calls the **lastness effect**: people preferentially watch
*recently released* movies, so new movies appear disproportionately at the
late positions of user sequences, and a naive progression model mistakes
release-date drift for skill.  The paper's fix is preprocessing: drop every
movie released after the earliest action in the data, so any movie could
have been selected at any time.

This simulator makes that whole story reproducible:

- Movies have a release year (1930–2009), a genre, a director, and a lead
  actor.  A fraction are *classics* — old, auteur-directed films with high
  appreciation difficulty; the rest are *light* entertainment (low
  difficulty) or mid-range *regular* films.
- Users act in calendar time (1995–2012).  Selection weight multiplies a
  **recency kernel** over ``(now − release)`` — the lastness effect — with
  a **capacity kernel** over ``(difficulty − skill)``.
- Ratings are generated like the beer domain's, so the film data also
  feeds the rating-prediction task.

With the recency kernel active, the top items per learned level drift by
release year (Table IV's shape); after
:func:`repro.analysis.preprocessing.remove_lastness` the drift collapses
and the difficulty signal dominates (Table V's shape).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.data.actions import Action, ActionLog, ActionSequence
from repro.data.items import Item, ItemCatalog
from repro.exceptions import ConfigurationError
from repro.synth.base import SimulatedDataset
from repro.synth.seeds import rng_for

__all__ = ["FilmConfig", "generate_film", "film_feature_set", "GENRES"]

GENRES = (
    "action", "adventure", "animation", "comedy", "crime", "documentary",
    "drama", "fantasy", "film-noir", "horror", "musical", "mystery",
    "romance", "sci-fi", "thriller", "war", "western",
)
#: Genres that classics skew toward vs light entertainment.
_CLASSIC_GENRES = ("drama", "film-noir", "mystery", "war", "crime", "romance", "musical")
_LIGHT_GENRES = ("action", "adventure", "comedy", "sci-fi", "fantasy", "animation")


@dataclass(frozen=True)
class FilmConfig:
    """Simulation knobs for the film domain.

    ``lastness_tau`` is the e-folding time (in years) of the recency
    kernel; smaller means a stronger lastness effect.  ``lastness_floor``
    keeps old movies selectable at a base rate.  Setting
    ``lastness_tau=inf`` disables the confounder entirely (useful in
    tests).
    """

    num_users: int = 500
    num_items: int = 800
    num_levels: int = 5
    mean_sequence_length: float = 60.0
    classic_fraction: float = 0.25
    num_directors: int = 120
    num_actors: int = 240
    first_release_year: float = 1930.0
    last_release_year: float = 2009.0
    first_action_year: float = 1995.0
    last_action_year: float = 2012.0
    lastness_tau: float = 2.5
    lastness_floor: float = 0.08
    skill_affinity: float = 1.0
    level_up_prob: float = 0.05
    rating_noise: float = 0.4
    start_at_bottom_prob: float = 0.5
    popularity_exponent: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_items < 1:
            raise ConfigurationError("counts must be positive")
        if self.num_levels < 2:
            raise ConfigurationError("need >= 2 skill levels")
        if not 0 <= self.classic_fraction <= 1:
            raise ConfigurationError("classic_fraction must be in [0, 1]")
        if self.first_release_year >= self.last_release_year:
            raise ConfigurationError("release year window is empty")
        if self.first_action_year >= self.last_action_year:
            raise ConfigurationError("action year window is empty")
        if self.lastness_tau <= 0:
            raise ConfigurationError("lastness_tau must be positive (use inf to disable)")


def film_feature_set() -> FeatureSet:
    """Feature schema of movies: all categorical, as in the paper."""
    return FeatureSet(
        [
            FeatureSpec("genre", FeatureKind.CATEGORICAL, vocabulary=GENRES),
            FeatureSpec("director", FeatureKind.CATEGORICAL),
            FeatureSpec("actor", FeatureKind.CATEGORICAL),
        ]
    ).with_id_feature()


def _generate_movies(config: FilmConfig):
    rng = rng_for(config.seed, "film", "movies")
    # A small set of auteur directors make mostly classics, giving the
    # director feature real signal about difficulty.
    num_auteurs = max(1, config.num_directors // 8)
    items = []
    years = np.empty(config.num_items)
    difficulties = np.empty(config.num_items)
    true_difficulty: dict[str, float] = {}
    for k in range(config.num_items):
        is_classic = rng.random() < config.classic_fraction
        if is_classic:
            # Classics skew old: quadratic pull toward the early years.
            frac = rng.random() ** 2
            difficulty = float(np.clip(rng.normal(4.3, 0.5), 1.0, config.num_levels))
            genre = _CLASSIC_GENRES[int(rng.integers(len(_CLASSIC_GENRES)))]
            director = f"director{int(rng.integers(num_auteurs))}"
        else:
            frac = 1.0 - rng.random() ** 2  # light films skew recent
            if rng.random() < 0.6:
                difficulty = float(np.clip(rng.normal(1.6, 0.5), 1.0, config.num_levels))
                genre = _LIGHT_GENRES[int(rng.integers(len(_LIGHT_GENRES)))]
            else:
                difficulty = float(np.clip(rng.normal(3.0, 0.7), 1.0, config.num_levels))
                genre = GENRES[int(rng.integers(len(GENRES)))]
            director = f"director{int(rng.integers(num_auteurs, config.num_directors))}"
        year = config.first_release_year + frac * (
            config.last_release_year - config.first_release_year
        )
        movie_id = f"movie{k}"
        items.append(
            Item(
                id=movie_id,
                features={
                    "genre": genre,
                    "director": director,
                    "actor": f"actor{int(rng.integers(config.num_actors))}",
                },
                metadata={
                    "year": float(year),
                    "difficulty": difficulty,
                    "classic": bool(is_classic),
                    "quality": float(rng.normal(0, 0.3)),
                },
            )
        )
        years[k] = year
        difficulties[k] = difficulty
        true_difficulty[movie_id] = difficulty
    return ItemCatalog(items), true_difficulty, years, difficulties


def generate_film(config: FilmConfig | None = None) -> SimulatedDataset:
    """Simulate movie-watching sequences in calendar time."""
    config = config or FilmConfig()
    catalog, true_difficulty, years, difficulties = _generate_movies(config)
    movie_ids = list(catalog.ids)
    qualities = np.asarray([catalog[i].metadata["quality"] for i in movie_ids])
    rng = rng_for(config.seed, "film", "sequences")

    # Head-skewed popularity: blockbusters draw most views; without the
    # skew, ID-based ranking could not beat random guessing.
    popularity = 1.0 / np.arange(1, config.num_items + 1, dtype=np.float64) ** (
        config.popularity_exponent
    )
    rng.shuffle(popularity)
    # Capacity kernel per level (independent of time), computed once.
    capacity = np.empty((config.num_levels, config.num_items))
    for level in range(1, config.num_levels + 1):
        gap = difficulties - level
        capacity[level - 1] = popularity * np.where(
            gap > 0,
            np.exp(-config.skill_affinity * 2.0 * gap),
            np.exp(config.skill_affinity * 0.4 * gap),
        )

    sequences = []
    true_skills: dict[str, np.ndarray] = {}
    for u in range(config.num_users):
        user = f"viewer{u}"
        length = max(2, int(rng.poisson(config.mean_sequence_length)))
        start = rng.uniform(config.first_action_year, config.last_action_year - 1.0)
        span = rng.uniform(1.0, config.last_action_year - start)
        times = np.sort(start + rng.random(length) * span)
        if rng.random() < config.start_at_bottom_prob:
            level = 1  # most viewers enter the platform as casual fans
        else:
            level = int(rng.integers(1, config.num_levels + 1))
        actions = []
        levels = np.empty(length, dtype=np.int64)
        for n in range(length):
            now = float(times[n])
            levels[n] = level
            released = years <= now
            age = now - years
            if np.isinf(config.lastness_tau):
                recency = np.ones_like(age)
            else:
                recency = np.exp(-age / config.lastness_tau) + config.lastness_floor
            weights = np.where(released, recency * capacity[level - 1], 0.0)
            total = weights.sum()
            if total <= 0:  # nothing released yet: fall back to the oldest film
                idx = int(np.argmin(years))
            else:
                cdf = np.cumsum(weights)
                idx = int(np.searchsorted(cdf, rng.random() * cdf[-1], side="right"))
                idx = min(idx, config.num_items - 1)
            match = -0.25 * abs(float(difficulties[idx]) - level)
            rating = float(
                np.clip(3.4 + float(qualities[idx]) + match + rng.normal(0, config.rating_noise), 0, 5)
            )
            actions.append(Action(time=now, user=user, item=movie_ids[idx], rating=rating))
            if level < config.num_levels and rng.random() < config.level_up_prob:
                level += 1
        sequences.append(ActionSequence(user, actions, presorted=True))
        true_skills[user] = levels

    return SimulatedDataset(
        name="film",
        log=ActionLog(sequences),
        catalog=catalog,
        feature_set=film_feature_set(),
        true_skills=true_skills,
        true_difficulty=true_difficulty,
    )
