"""Simulated RateBeer beer-review domain.

The original RateBeer dump (McAuley & Leskovec) is no longer distributed;
this simulator reproduces its schema and the domain facts the paper's
analysis surfaces (Figure 6, Table III, Table XII):

- Beers carry a brewer, a **style**, and an **ABV** (gamma-distributed).
- Styles have an appreciation difficulty: pale lagers and mild ales are
  entry-level; imperial stouts, double IPAs, sours and barley wines are
  acquired tastes.  ABV correlates with style difficulty, which is why the
  paper's learned per-level ABV means climb (5.85% at level 1 → 7.46% at
  level 5).
- Users progress from lagers toward hops and strength; each review carries
  a rating in ``[0, 5]`` combining a user bias, a beer quality, a
  skill–difficulty match bonus, and noise — the signal Table XII's FFM
  models exploit.

The paper's Beer dataset is its *densest*: ≈437 actions per user. The
default config keeps that long-sequence character at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import FeatureKind, FeatureSet, FeatureSpec
from repro.data.actions import Action, ActionLog, ActionSequence
from repro.data.items import Item, ItemCatalog
from repro.exceptions import ConfigurationError
from repro.synth.base import SimulatedDataset, sample_sequence_length
from repro.synth.seeds import rng_for

__all__ = ["BeerConfig", "generate_beer", "beer_feature_set", "BEER_STYLES"]

#: (style name, appreciation difficulty in [1, 5], mean ABV %).
#: Difficulties follow the paper's Table III: lagers novice-dominated,
#: imperial/sour/hoppy styles expert-dominated.
BEER_STYLES: tuple[tuple[str, float, float], ...] = (
    ("Pale Lager", 1.0, 4.6),
    ("Premium Lager", 1.3, 5.0),
    ("American Dark Lager", 1.5, 5.0),
    ("Malt Liquor", 1.4, 6.2),
    ("Vienna", 1.8, 5.0),
    ("Wheat Ale", 1.9, 4.8),
    ("Amber Ale", 2.0, 5.2),
    ("German Hefeweizen", 2.1, 5.2),
    ("Premium Bitter/ESB", 2.2, 5.4),
    ("Porter", 2.5, 5.8),
    ("Brown Ale", 2.6, 5.4),
    ("Stout", 3.0, 6.0),
    ("Belgian Ale", 3.2, 6.4),
    ("Saison", 3.8, 6.2),
    ("India Pale Ale (IPA)", 4.0, 6.6),
    ("Spice/Herb/Vegetable", 3.9, 6.0),
    ("Black IPA", 4.3, 7.0),
    ("American Strong Ale", 4.4, 8.2),
    ("Belgian Strong Ale", 4.4, 8.6),
    ("Sour Ale/Wild Ale", 4.6, 6.4),
    ("Barley Wine", 4.7, 10.2),
    ("Imperial Stout", 4.9, 9.6),
    ("Imperial/Double IPA", 5.0, 8.8),
)


@dataclass(frozen=True)
class BeerConfig:
    """Simulation knobs for the beer domain."""

    num_users: int = 300
    num_items: int = 900
    num_brewers: int = 80
    num_levels: int = 5
    mean_sequence_length: float = 120.0
    level_up_prob: float = 0.03
    skill_affinity: float = 2.5
    rating_noise: float = 0.35
    start_at_bottom_prob: float = 0.5
    popularity_exponent: float = 0.8
    match_weight: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_items < 1 or self.num_brewers < 1:
            raise ConfigurationError("counts must be positive")
        if self.num_levels < 2:
            raise ConfigurationError("need >= 2 skill levels")
        if self.skill_affinity < 0:
            raise ConfigurationError("skill_affinity must be >= 0")


def beer_feature_set() -> FeatureSet:
    """Feature schema of beers: id/brewer/style categorical, ABV gamma."""
    return FeatureSet(
        [
            FeatureSpec("brewer", FeatureKind.CATEGORICAL),
            FeatureSpec(
                "style",
                FeatureKind.CATEGORICAL,
                vocabulary=tuple(name for name, _, _ in BEER_STYLES),
            ),
            FeatureSpec("abv", FeatureKind.POSITIVE),
        ]
    ).with_id_feature()


def _generate_beers(config: BeerConfig) -> tuple[ItemCatalog, dict[str, float], np.ndarray]:
    """Catalog of beers; returns per-beer ground-truth difficulty array."""
    rng = rng_for(config.seed, "beer", "items")
    items = []
    difficulties = np.empty(config.num_items, dtype=np.float64)
    true_difficulty: dict[str, float] = {}
    for k in range(config.num_items):
        style_idx = int(rng.integers(len(BEER_STYLES)))
        style, style_difficulty, mean_abv = BEER_STYLES[style_idx]
        # ABV scatters around the style's mean; gamma keeps it positive.
        abv = float(rng.gamma(shape=30.0, scale=mean_abv / 30.0))
        difficulty = float(
            np.clip(style_difficulty + rng.normal(0, 0.3), 1.0, config.num_levels)
        )
        beer_id = f"beer{k}"
        items.append(
            Item(
                id=beer_id,
                features={
                    "brewer": f"brewer{int(rng.integers(config.num_brewers))}",
                    "style": style,
                    "abv": abv,
                },
                metadata={"difficulty": difficulty, "quality": float(rng.normal(0, 0.3))},
            )
        )
        difficulties[k] = difficulty
        true_difficulty[beer_id] = difficulty
    return ItemCatalog(items), true_difficulty, difficulties


def _selection_weights(
    difficulties: np.ndarray, level: int, affinity: float, num_levels: int
) -> np.ndarray:
    """Within-capacity selection: beers above the user's level are strongly
    penalized; among reachable beers, weight peaks near the user's level
    (skilled users still drink easy beers, just less exclusively)."""
    gap = difficulties - level
    weights = np.where(
        gap > 0,
        np.exp(-affinity * 2.0 * gap),  # beyond capacity: steep penalty
        np.exp(affinity * 0.5 * gap),  # easier than capacity: mild decay
    )
    total = weights.sum()
    if total <= 0:  # pathological affinity; fall back to uniform
        return np.full(len(difficulties), 1.0 / len(difficulties))
    return weights / total


def _rating(
    rng: np.random.Generator,
    user_bias: float,
    quality: float,
    level: int,
    difficulty: float,
    noise: float,
    match_weight: float,
) -> float:
    """Rating in [0, 5]: global base + biases + skill–difficulty match.

    Users enjoy beers near their capability; a beer far above one's level
    rates poorly (can't appreciate it), far below mildly poorly (bored).
    This interaction is what makes skill/difficulty features informative
    for the FFM in Table XII.
    """
    match = -match_weight * abs(difficulty - level)
    raw = 3.6 + user_bias + quality + match + rng.normal(0, noise)
    return float(np.clip(raw, 0.0, 5.0))


def generate_beer(config: BeerConfig | None = None) -> SimulatedDataset:
    """Simulate review sequences with ratings."""
    config = config or BeerConfig()
    catalog, true_difficulty, difficulties = _generate_beers(config)
    beer_ids = list(catalog.ids)
    qualities = np.asarray([catalog[i].metadata["quality"] for i in beer_ids])
    rng = rng_for(config.seed, "beer", "sequences")

    # Head-skewed popularity (review sites concentrate on a few beers);
    # without it, ID-based ranking could not beat random guessing.
    popularity = 1.0 / np.arange(1, config.num_items + 1, dtype=np.float64) ** (
        config.popularity_exponent
    )
    rng.shuffle(popularity)
    # Selection weights depend only on the user's level, so precompute one
    # CDF per level and sample by inverse transform — O(log |I|) per action.
    level_cdfs = [
        np.cumsum(
            popularity
            * _selection_weights(difficulties, level, config.skill_affinity, config.num_levels)
        )
        for level in range(1, config.num_levels + 1)
    ]

    sequences = []
    true_skills: dict[str, np.ndarray] = {}
    for u in range(config.num_users):
        user = f"taster{u}"
        length = sample_sequence_length(rng, config.mean_sequence_length)
        if rng.random() < config.start_at_bottom_prob:
            level = 1  # most tasters enter the site as novices
        else:
            level = int(rng.integers(1, config.num_levels + 1))
        user_bias = float(rng.normal(0, 0.25))
        actions = []
        levels = np.empty(length, dtype=np.int64)
        for n in range(length):
            levels[n] = level
            cdf = level_cdfs[level - 1]
            idx = int(np.searchsorted(cdf, rng.random() * cdf[-1], side="right"))
            idx = min(idx, len(beer_ids) - 1)
            rating = _rating(
                rng,
                user_bias,
                float(qualities[idx]),
                level,
                float(difficulties[idx]),
                config.rating_noise,
                config.match_weight,
            )
            actions.append(Action(time=float(n), user=user, item=beer_ids[idx], rating=rating))
            if level < config.num_levels and rng.random() < config.level_up_prob:
                level += 1
        sequences.append(ActionSequence(user, actions, presorted=True))
        true_skills[user] = levels

    return SimulatedDataset(
        name="beer",
        log=ActionLog(sequences),
        catalog=catalog,
        feature_set=beer_feature_set(),
        true_skills=true_skills,
        true_difficulty=true_difficulty,
    )
